"""Figure 9 — mean/median/max arithmetic error of the three methods.

Runs the error-free and single-bit-flip campaigns for every method and
tile size of the active scale and prints the same error statistics the
paper plots, asserting the qualitative ordering (unprotected >> online
>= offline with faults; everything ~0 without faults).
"""

from repro.experiments.figure9 import format_figure9, run_figure9


def test_figure9_campaign(benchmark, scale):
    result = benchmark.pedantic(run_figure9, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_figure9(result))

    for tile in scale.tile_sizes:
        # Error-free: all three methods numerically match the reference.
        for method in ("no-abft", "online-abft", "offline-abft"):
            assert result.row(tile, "error-free", method).mean_error < 1e-3

        # Single bit-flip: the unprotected worst case dwarfs the protected
        # ones, and the offline method (rollback) is at least as accurate
        # as the online method (on-the-fly correction residue).
        unprotected = result.row(tile, "single-bit-flip", "no-abft")
        online = result.row(tile, "single-bit-flip", "online-abft")
        offline = result.row(tile, "single-bit-flip", "offline-abft")
        assert online.max_error <= unprotected.max_error
        assert offline.max_error <= unprotected.max_error
        assert offline.median_error <= online.median_error + 1e-12

        # No false positives in the error-free campaigns.
        assert result.row(tile, "error-free", "online-abft").false_positive_rate == 0.0
        assert result.row(tile, "error-free", "offline-abft").false_positive_rate == 0.0
