#!/usr/bin/env python
"""Weak-scaling benchmark of the distributed (simulated-MPI) ABFT runner.

Reproduces the shape of the paper's Section 5.2 experiment: the
per-rank block is held **fixed** while the rank count grows (1, 2, 4,
8), so the work per rank is constant and the paper's "intrinsically
parallel" claim predicts a flat per-rank ABFT overhead — every rank
verifies its own block with its own checksum vectors, no global
reduction ever happens.

For every rank count the benchmark times

* the **zero-copy runner** (`DistributedStencilRunner`): persistent
  per-rank padded buffer pairs, halo payloads ingested in place into
  the front buffer's ghost slabs, backend-fused partial-axis refresh +
  sweep + per-rank checksums, protected and unprotected; and
* the **legacy path** (the pre-buffer-pair execution shape, re-created
  here as a baseline): per rank per iteration one ``stack_with_halos``
  concatenate, one ``pad_array`` block and one freshly allocated
  ``sweep_padded`` output — three full-block allocations — plus an
  unfused ``OnlineABFT.process`` that recomputes the checksum from
  scratch.

It also verifies the zero-allocation property with ``tracemalloc``
(the zero-copy runner must perform **zero** full-block allocations per
rank per iteration; the legacy path measures ~3), records the
``SimChannel`` message/byte traffic per tag, and checks the
distributed results stay bit-identical to the serial protected run —
including under fault injection.  Everything is written to
``BENCH_weak_scaling.json``.

Usage::

    python benchmarks/bench_weak_scaling.py             # full comparison
    python benchmarks/bench_weak_scaling.py --smoke     # CI gate: exit 1 if
                                                        # the runner allocates
                                                        # a full block per
                                                        # step, diverges from
                                                        # serial, or loses to
                                                        # the legacy path on
                                                        # the 4-rank run
    python benchmarks/bench_weak_scaling.py --block 256 512 --iters 10
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import sys
import time
import tracemalloc
from typing import Dict, List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.core.online import OnlineABFT
from repro.parallel.decomposition import partition_extent
from repro.parallel.halo import (
    boundary_strip,
    stack_with_halos,
    synthesize_ghost,
)
from repro.parallel.simmpi import DistributedStencilRunner, SimChannel
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion
from repro.stencil.shift import pad_array
from repro.stencil.sweep import sweep_padded

DEFAULT_JSON = "BENCH_weak_scaling.json"
DEFAULT_RANKS = (1, 2, 4, 8)

#: Fixed transient footprint of one protected step (checksum vectors,
#: interpolation strips, detection buffers) plus a per-rank term for the
#: halo strips in flight — measured ~90 KB flat + <10 KB per rank on
#: 256x1024 blocks.  The allocation accounting subtracts this allowance
#: so small benchmark blocks are not mislabelled as full-block
#: temporaries; it is kept tight so the legacy path's three-block
#: transient is not swallowed either.
ALLOC_FLAT_ALLOWANCE = 128 * 1024
ALLOC_PER_RANK_ALLOWANCE = 16 * 1024


# --------------------------------------------------------------------------
# The legacy (seed) execution shape, kept here as the benchmark baseline.
# --------------------------------------------------------------------------
class _LegacyRank:
    def __init__(self, rank, interior, constant, protector, lo, hi):
        self.rank = rank
        self.interior = interior
        self.constant = constant
        self.protector = protector
        self.lo_neighbor = lo
        self.hi_neighbor = hi


class LegacyDistributedRunner:
    """The pre-buffer-pair distributed path: reassemble, pad, sweep, verify.

    Per rank per iteration this allocates three full blocks — the
    ``stack_with_halos`` concatenate, the ``pad_array`` ghost block and
    a fresh ``sweep_padded`` output — and verifies through the unfused
    ``OnlineABFT.process`` (checksum recomputed from the new block).
    It reproduces the seed ``DistributedStencilRunner`` semantics
    bit for bit and exists only as the benchmark baseline.
    """

    def __init__(self, grid, n_ranks: int, protect: bool, **abft_kwargs) -> None:
        self.spec = grid.spec
        self.boundary = grid.boundary
        self.radius = grid.spec.radius()
        self.iteration = grid.iteration
        self.channel = SimChannel()
        self.n_ranks = int(n_ranks)
        axis_bc = self.boundary.axis(0)
        bounds = partition_extent(grid.shape[0], self.n_ranks)
        self.ranks: List[_LegacyRank] = []
        for r, (start, stop) in enumerate(bounds):
            block = np.array(grid.u[start:stop], copy=True)
            const = None
            if grid.constant is not None:
                const = np.array(grid.constant[start:stop], copy=True)
            if axis_bc.is_periodic:
                lo, hi = (r - 1) % self.n_ranks, (r + 1) % self.n_ranks
            else:
                lo = r - 1 if r > 0 else None
                hi = r + 1 if r < self.n_ranks - 1 else None
            protector = None
            if protect:
                protector = OnlineABFT(
                    self.spec, self.boundary, block.shape,
                    dtype=grid.dtype, constant=const, **abft_kwargs,
                )
            self.ranks.append(_LegacyRank(r, block, const, protector, lo, hi))

    def step(self) -> None:
        width = self.radius[0]
        if width > 0:
            for rank in self.ranks:
                if rank.lo_neighbor is not None:
                    strip = boundary_strip(rank.interior, 0, "low", width)
                    self.channel.send(rank.rank, rank.lo_neighbor, "to_hi", strip)
                if rank.hi_neighbor is not None:
                    strip = boundary_strip(rank.interior, 0, "high", width)
                    self.channel.send(rank.rank, rank.hi_neighbor, "to_lo", strip)
        self.iteration += 1
        axis_bc = self.boundary.axis(0)
        for rank in self.ranks:
            if width > 0:
                if rank.lo_neighbor is not None:
                    lo_ghost = self.channel.recv(rank.lo_neighbor, rank.rank, "to_lo")
                else:
                    lo_ghost = synthesize_ghost(rank.interior, 0, "low", width, axis_bc)
                if rank.hi_neighbor is not None:
                    hi_ghost = self.channel.recv(rank.hi_neighbor, rank.rank, "to_hi")
                else:
                    hi_ghost = synthesize_ghost(rank.interior, 0, "high", width, axis_bc)
                extended = stack_with_halos(lo_ghost, rank.interior, hi_ghost, 0)
            else:
                extended = rank.interior
            pad_radius = list(self.radius)
            pad_radius[0] = 0
            padded = pad_array(extended, tuple(pad_radius), self.boundary)
            rank.interior = sweep_padded(
                padded, self.spec, self.radius, rank.interior.shape,
                constant=rank.constant,
            )
            if rank.protector is not None:
                rank.protector.process(rank.interior, padded, self.iteration)

    def run(self, iterations: int) -> None:
        for _ in range(iterations):
            self.step()

    def gather(self) -> np.ndarray:
        return np.concatenate([rank.interior for rank in self.ranks], axis=0)


# --------------------------------------------------------------------------
# Measurement helpers
# --------------------------------------------------------------------------
def build_grid(block: Tuple[int, int], n_ranks: int) -> Grid2D:
    rng = np.random.default_rng(42)
    shape = (block[0] * n_ranks, block[1])
    initial = (rng.random(shape) * 100.0).astype(np.float32)
    return Grid2D(initial, five_point_diffusion(0.2), BoundaryCondition.clamp())


def make_runner(kind: str, block, n_ranks: int, protect: bool):
    grid = build_grid(block, n_ranks)
    if kind == "zero_copy":
        return DistributedStencilRunner(
            grid, n_ranks=n_ranks, protect=protect, epsilon=1e-5
        )
    return LegacyDistributedRunner(grid, n_ranks, protect, epsilon=1e-5)


#: Timed sub-chunks per repeat: the four runs (zero-copy/legacy x
#: unprotected/protected) advance in alternating slices of the timed
#: loop rather than as four long back-to-back legs, so CPU-frequency /
#: throttle drift on any timescale longer than one chunk (~50-100 ms)
#: hits every leg of a repeat equally and cancels out of the ratios.
TIMING_CHUNKS = 4


def time_rank_count(
    block, n_ranks: int, iters: int, repeats: int
) -> Dict[str, Dict[str, object]]:
    """Chunk-interleaved timings of both runners at one rank count.

    Every repeat builds all four runners — zero-copy
    unprotected/protected and legacy unprotected/protected — warms each
    with one untimed iteration (scratch buffers, first checksums), then
    cycles through them ``TIMING_CHUNKS`` times, timing a slice of each
    runner's loop per visit.  Process CPU time is used throughout: the
    simulated runner is strictly sequential (ranks are stepped in a
    loop by one process), so CPU time *is* the work performed and
    excludes scheduler steal on shared or oversubscribed runners.

    The derived metrics are **medians of per-repeat ratios**: the ABFT
    overhead pairs protected with unprotected, the legacy comparison
    pairs the two protected runs.  A slow system phase (steal, thermal
    throttling, cpufreq steps) spans the interleaved chunks of every
    leg equally, so it cancels out of the ratios instead of
    masquerading as protection cost or as a runner regression.
    """
    configs = [
        (kind, protect)
        for kind in ("zero_copy", "legacy")
        for protect in (False, True)
    ]
    samples = {
        kind: {"unprot": [], "prot": [], "overheads": []}
        for kind in ("zero_copy", "legacy")
    }
    speedups: List[float] = []
    chunk_iters = max(1, iters // TIMING_CHUNKS)
    for _ in range(repeats):
        runners = {}
        for key in configs:
            runner = make_runner(key[0], block, n_ranks, key[1])
            runner.run(1)
            runners[key] = runner
        elapsed = {key: 0.0 for key in configs}
        for _ in range(TIMING_CHUNKS):
            for key in configs:
                start = time.process_time()
                runners[key].run(chunk_iters)
                elapsed[key] += time.process_time() - start
        total_iters = chunk_iters * TIMING_CHUNKS
        for kind in ("zero_copy", "legacy"):
            u_ms = elapsed[(kind, False)] / total_iters * 1000.0
            p_ms = elapsed[(kind, True)] / total_iters * 1000.0
            samples[kind]["unprot"].append(u_ms)
            samples[kind]["prot"].append(p_ms)
            samples[kind]["overheads"].append((p_ms / u_ms - 1.0) * 100.0)
        speedups.append(
            samples["legacy"]["prot"][-1] / samples["zero_copy"]["prot"][-1]
        )
    result: Dict[str, Dict[str, object]] = {}
    for kind, data in samples.items():
        result[kind] = {
            "unprotected": {
                "ms_per_iter": statistics.median(data["unprot"]),
                "ms_per_iter_best": min(data["unprot"]),
            },
            "protected": {
                "ms_per_iter": statistics.median(data["prot"]),
                "ms_per_iter_best": min(data["prot"]),
            },
            "abft_overhead_pct": statistics.median(data["overheads"]),
        }
    result["zero_copy"]["protected_speedup_vs_legacy"] = statistics.median(
        speedups
    )
    return result


def measure_traffic(kind: str, block, n_ranks: int, iters: int) -> Dict[str, object]:
    """Per-tag SimChannel message/byte accounting, normalised per iteration."""
    runner = make_runner(kind, block, n_ranks, protect=True)
    runner.run(iters)
    traffic = runner.channel.traffic()
    traffic["messages_per_iter"] = traffic["messages_sent"] / iters
    traffic["bytes_per_iter"] = traffic["bytes_sent"] / iters
    return traffic


def measure_allocations(
    kind: str, block, n_ranks: int, iters: int = 5
) -> Dict[str, object]:
    """Tracemalloc profile of the distributed hot loop.

    Measures the *peak* allocation growth across ``iters`` protected
    steps after warm-up.  Any full-block temporary alive at any instant
    (the legacy concatenate/pad/sweep triple) raises the peak by at
    least one block worth of bytes; the zero-copy rank lifecycle only
    allocates O(strip) halo payloads and O(edge) checksum vectors.
    """
    runner = make_runner(kind, block, n_ranks, protect=True)
    runner.run(2)
    block_bytes = int(runner.ranks[0].interior.nbytes)
    tracemalloc.start()
    # One traced warm step absorbs steady-state churn (the legacy path
    # re-allocates every rank's interior each step, replacing blocks
    # that predate tracing); the peak delta beyond this point is the
    # genuinely transient footprint of a step.
    runner.run(1)
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    runner.run(iters)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_delta = max(0, int(peak) - int(baseline))
    allowance = ALLOC_FLAT_ALLOWANCE + ALLOC_PER_RANK_ALLOWANCE * n_ranks
    block_scale = max(0, peak_delta - allowance)
    return {
        "block_bytes": block_bytes,
        "peak_alloc_bytes": peak_delta,
        "full_block_allocs": int(round(block_scale / block_bytes)),
        "zero_full_block_allocs": bool(block_scale < block_bytes // 2),
    }


def check_equivalence() -> Dict[str, bool]:
    """Distributed-vs-serial bit equality, fault-free and under injection."""
    from repro.faults.bitflip import flip_bit_in_array

    results: Dict[str, bool] = {}
    for name, bc in (("clamp", BoundaryCondition.clamp()),
                     ("periodic", BoundaryCondition.periodic())):
        rng = np.random.default_rng(7)
        initial = (rng.random((96, 64)) * 100.0).astype(np.float32)
        grid = Grid2D(initial, five_point_diffusion(0.2), bc)
        serial = grid.copy()
        runner = DistributedStencilRunner(grid, n_ranks=4, protect=True, epsilon=1e-5)
        runner.run(8)
        protector = OnlineABFT.for_grid(serial, epsilon=1e-5)
        for _ in range(8):
            protector.step(serial)
        results[f"gather_matches_serial_{name}"] = bool(
            np.array_equal(runner.gather(), serial.u)
        )

    # Injection: same global flip on both paths, bitwise-equal repair.
    # The row-checksum correction sums only non-distributed axes, so a
    # rank computes exactly the numbers the serial protector computes
    # and the repair is bitwise identical; column/average corrections
    # involve sums over the distributed axis (rank-local vs global
    # extent) and agree only to 1 ULP.
    rng = np.random.default_rng(11)
    initial = (rng.random((96, 64)) * 100.0).astype(np.float32)
    grid = Grid2D(initial, five_point_diffusion(0.2), BoundaryCondition.clamp())
    serial = grid.copy()
    target = (70, 20)
    runner = DistributedStencilRunner(
        grid, n_ranks=4, protect=True, epsilon=1e-5, correction_strategy="row"
    )
    target_rank, target_local = runner.rank_of_global_index(target)

    def inject_rank(run, iteration, rank):
        if iteration == 4 and rank.rank == target_rank:
            flip_bit_in_array(rank.interior, target_local, 26)

    runner.run(8, inject=inject_rank)
    protector = OnlineABFT.for_grid(
        serial, epsilon=1e-5, correction_strategy="row"
    )

    def inject_serial(g, iteration):
        if iteration == 4:
            flip_bit_in_array(g.u, target, 26)

    for _ in range(8):
        protector.step(serial, inject=inject_serial)
    dist_sha = hashlib.sha256(np.ascontiguousarray(runner.gather()).tobytes()).hexdigest()
    serial_sha = hashlib.sha256(np.ascontiguousarray(serial.u).tobytes()).hexdigest()
    results["injection_matches_serial"] = bool(
        dist_sha == serial_sha
        and runner.total_detected() == protector.total_detections
        and runner.total_corrected() == protector.total_corrections
    )
    return results


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--block", type=int, nargs=2, default=[256, 1024],
        metavar=("BX", "BY"),
        help="fixed per-rank block shape (weak scaling holds this constant)",
    )
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=list(DEFAULT_RANKS),
        help="rank counts to sweep",
    )
    parser.add_argument("--iters", type=int, default=20, help="timed iterations")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (median)")
    parser.add_argument(
        "--json", default=DEFAULT_JSON,
        help=f"machine-readable results file (default: {DEFAULT_JSON})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI mode: small block, fewer iterations; exit non-zero if the "
            "zero-copy runner performs any full-block allocation per step, "
            "diverges from the serial protected run (fault-free or under "
            "injection), or is >5%% slower than the legacy path on the "
            "4-rank protected run"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.block = [min(args.block[0], 128), min(args.block[1], 512)]
        args.iters = min(args.iters, 8)
        args.repeats = max(args.repeats, 3)

    block = tuple(args.block)
    block_bytes = block[0] * block[1] * 4
    report = {
        "config": {
            "block": list(block),
            "block_bytes": block_bytes,
            "ranks": args.ranks,
            "iters": args.iters,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "smoke": bool(args.smoke),
        },
        "metric_definitions": {
            "ms_per_iter": (
                "median per-iteration process CPU time of one whole "
                "distributed step (all ranks, stepped sequentially in the "
                "simulation, so CPU time equals work done and excludes "
                "scheduler steal; one untimed warm-up iteration first, "
                "then the four runs advance in interleaved timed chunks "
                "so frequency/throttle drift hits every run equally)"
            ),
            "ms_per_iter_best": (
                "fastest repeat (informational; the --smoke speed gate is "
                "decided by protected_speedup_vs_legacy, the median of "
                "per-repeat protected-run ratios)"
            ),
            "abft_overhead_pct": (
                "median over repeats of the per-pair ratio 100 * "
                "(protected - unprotected) / unprotected, where each "
                "repeat advances both runs (same runner kind) in "
                "interleaved timed chunks; pairing makes scheduler and "
                "cpufreq noise hit both sides, so it cancels out of the "
                "overhead.  The paper's weak-scaling claim is that this "
                "stays flat as ranks grow (the per-rank block is fixed)"
            ),
            "full_block_allocs": (
                "round((tracemalloc peak growth - allowance) / block bytes) "
                "across 5 protected steps; the legacy path concatenates, "
                "pads and sweeps into three fresh full blocks per rank per "
                "iteration, the zero-copy path must measure 0"
            ),
            "traffic": (
                "SimChannel totals for the timed run, plus per-tag "
                "message/byte breakdown ('to_lo'/'to_hi' halo strips) and "
                "per-iteration rates"
            ),
        },
        "scaling": {},
        "equivalence": {},
        "gates": {},
    }

    print(
        f"Weak scaling: fixed {block[0]}x{block[1]} float32 block per rank, "
        f"ranks {args.ranks} ({args.iters} iters, median of {args.repeats})"
    )
    print()
    print("Distributed-vs-serial equivalence (bitwise, incl. injection):")
    equivalence = check_equivalence()
    report["equivalence"] = equivalence
    for name, ok in equivalence.items():
        print(f"  {name:32s} {'ok' if ok else 'FAIL'}")
    equiv_ok = all(equivalence.values())
    print()

    header = (
        f"{'ranks':>5s}  {'runner':>9s} {'sweep ms':>9s} {'abft ms':>9s} "
        f"{'overhead':>9s} {'peak alloc':>11s} {'blk allocs':>10s}"
    )
    print(header)
    print("-" * len(header))
    max_ranks = max(args.ranks)
    for n_ranks in args.ranks:
        # Hold the timed-loop *duration* roughly constant across rank
        # counts (one distributed step costs ~n_ranks block sweeps, so
        # small rank counts run proportionally more iterations) — short
        # timed loops are disproportionately vulnerable to noise spikes,
        # which would show up as overhead jitter at 1 rank.
        iters_n = args.iters * max(1, max_ranks // n_ranks)
        row: Dict[str, object] = time_rank_count(
            block, n_ranks, iters_n, args.repeats
        )
        row["iters"] = iters_n
        for kind in ("zero_copy", "legacy"):
            alloc = measure_allocations(kind, block, n_ranks)
            row[kind]["alloc"] = alloc
            timing = row[kind]
            print(
                f"{n_ranks:5d}  {kind:>9s} "
                f"{timing['unprotected']['ms_per_iter']:9.3f} "
                f"{timing['protected']['ms_per_iter']:9.3f} "
                f"{timing['abft_overhead_pct']:8.1f}% "
                f"{alloc['peak_alloc_bytes']:11d} "
                f"{alloc['full_block_allocs']:10d}"
            )
        row["traffic"] = measure_traffic("zero_copy", block, n_ranks, args.iters)
        report["scaling"][str(n_ranks)] = row
    print()

    scaling = report["scaling"]

    # -- allocation gate ------------------------------------------------------
    alloc_ok = all(
        scaling[str(n)]["zero_copy"]["alloc"]["zero_full_block_allocs"]
        for n in args.ranks
    )
    report["gates"]["zero_copy_zero_full_block_allocs"] = alloc_ok
    if alloc_ok:
        worst = max(
            scaling[str(n)]["zero_copy"]["alloc"]["peak_alloc_bytes"]
            for n in args.ranks
        )
        print(
            f"zero-copy runner performs zero full-block allocations per rank "
            f"per iteration at every rank count (worst peak transient "
            f"{worst / 1e3:.1f} KB vs {block_bytes / 1e6:.2f} MB block)"
        )
    else:
        print("FAIL: zero-copy runner allocated full-block temporaries")

    # -- speed gate (4-rank protected run, new vs legacy) ---------------------
    speed_fail = False
    gate_ranks = "4" if "4" in scaling else str(args.ranks[-1])
    speedup = scaling[gate_ranks]["zero_copy"]["protected_speedup_vs_legacy"]
    # The recorded gate matches the smoke exit criterion exactly (>5%
    # slower fails; the 0.95-1.0 band is a WARN that stays green), so
    # the uploaded artifact never reports a failure CI tolerated.
    report["gates"]["zero_copy_beats_legacy_protected"] = speedup > 0.95
    report["gates"]["zero_copy_protected_speedup_vs_legacy"] = speedup
    if speedup > 1.0:
        print(
            f"zero-copy runner beats the legacy path on the {gate_ranks}-rank "
            f"protected run: {speedup:.2f}x (median of {args.repeats} "
            f"back-to-back pairs)"
        )
    elif speedup > 0.95:
        print(
            f"WARN: zero-copy runner did not beat the legacy path on the "
            f"{gate_ranks}-rank protected run ({speedup:.2f}x) but is within "
            f"the 5% noise band — not failing the gate"
        )
    else:
        print(
            f"FAIL: zero-copy runner is >5% slower than the legacy path on "
            f"the {gate_ranks}-rank protected run ({speedup:.2f}x)"
        )
        speed_fail = True

    # -- overhead flatness (the paper's weak-scaling claim) -------------------
    overheads = {
        n: scaling[str(n)]["zero_copy"]["abft_overhead_pct"] for n in args.ranks
    }
    delta = overheads[max(args.ranks)] - overheads[min(args.ranks)]
    spread = max(overheads.values()) - min(overheads.values())
    flat = abs(delta) <= 2.0
    report["gates"]["abft_overhead_flat_min_to_max_ranks"] = flat
    report["gates"]["abft_overhead_delta_pts"] = delta
    report["gates"]["abft_overhead_spread_pts"] = spread
    trend = ", ".join(f"{n}r {pct:.1f}%" for n, pct in overheads.items())
    if flat:
        print(
            f"per-rank ABFT overhead flat under weak scaling: {trend} "
            f"({min(args.ranks)}->{max(args.ranks)} ranks delta "
            f"{delta:+.1f} pts, within ±2)"
        )
    else:
        # Advisory on shared CI runners: overhead is a ratio of two noisy
        # timings; the committed full-run snapshot is the gated artefact.
        print(
            f"note: ABFT overhead {min(args.ranks)}->{max(args.ranks)} ranks "
            f"delta {delta:+.1f} pts exceeds ±2 ({trend}) — timing noise on "
            f"shared runners; advisory only"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nmachine-readable results written to {args.json}")

    if args.smoke:
        if not equiv_ok:
            return 1
        if not alloc_ok:
            return 1
        if speed_fail:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
