#!/usr/bin/env python
"""Throughput benchmark of the high-throughput campaign engine.

Compares the :class:`~repro.faults.engine.CampaignEngine` (persistent
workers, in-place grid reset, batched stacked execution) against the
legacy serial loop (:func:`~repro.faults.campaign.run_campaign`: fresh
grid + fresh protector per run) on the paper's 64x64x8 online-ABFT
bit-flip campaign — the configuration behind Figures 8-10 and Table 1.

Four properties are measured and (in ``--smoke`` mode) gated:

* **Record equivalence** — engine records are bitwise-identical to the
  legacy loop for identical seeds (every field except the elapsed-time
  measurement), across all three methods, both scenarios, and both the
  serial and process executors.
* **Throughput** — runs/second, engine vs legacy.  Both legs advance in
  interleaved timed chunks within each repeat (a chunk of legacy runs,
  then a chunk of engine runs, several times over), so CPU-frequency /
  throttle drift on any timescale longer than one chunk hits both legs
  equally and cancels out of the per-repeat ratio; the reported speedup
  is the median of per-repeat ratios.  Wall-clock time is used because
  the engine's process executor does its work in pool workers, which
  parent-process CPU time cannot see.
* **Stacked vs replay** — runs/second of the two run strategies on one
  serial-executor engine with ``strategy`` forced, same interleaved
  chunking.  On the numba backend (CI's JIT matrix job) the stacked leg
  drives the generated batched ``bstep``/``bstep_cs`` kernels and must
  beat per-run replay; without numba the section is informational.
* **Allocation profile** — tracemalloc peak growth per run after
  warm-up.  The legacy loop allocates a fresh padded buffer pair, a
  protector and full-domain error temporaries per run; the engine's
  steady state must stay below half a domain per run (its per-step
  transients are checksum vectors and detection masks, amortised over
  the whole batch).

Everything is written to ``BENCH_campaign.json``.

Usage::

    python benchmarks/bench_campaign.py            # full comparison
    python benchmarks/bench_campaign.py --smoke    # CI gate: exit 1 on
                                                   # inequivalent records,
                                                   # full-domain per-run
                                                   # allocations, or an
                                                   # engine slower than
                                                   # the smoke threshold
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
import tracemalloc
from typing import Dict, List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.backends import get_backend
from repro.experiments.common import make_hotspot_app, make_protector_factory
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.engine import CampaignEngine
from repro.parallel.executor import resolve_workers

DEFAULT_JSON = "BENCH_campaign.json"

#: The gated configuration: the paper's small tile, online ABFT, one
#: random bit-flip per run (Table 1 / Figure 8 geometry at a
#: quick-scale iteration count).
GATE_TILE = (64, 64, 8)

#: Interleaved timed chunks per repeat (see module docstring).
TIMING_CHUNKS = 4

#: Fixed transient allowance of one batch (records, fault plans,
#: checksum vectors, detection masks) before peak growth counts towards
#: full-domain allocations.
ALLOC_FLAT_ALLOWANCE = 192 * 1024

#: Committed-snapshot throughput requirement (the PR's acceptance
#: criterion) and the laxer CI exit threshold: shared runners time-slice
#: unpredictably, so CI only fails on a clearly missing speedup while
#: the committed full run documents the real margin.
SPEEDUP_REQUIRED = 1.5
SPEEDUP_SMOKE_FLOOR = 1.15


# --------------------------------------------------------------------------
# Record equivalence
# --------------------------------------------------------------------------
def _record_key(record) -> Tuple:
    """Every deterministic field of a run record (elapsed time excluded)."""
    return (
        record.run_index,
        record.arithmetic_error,
        record.errors_detected,
        record.errors_corrected,
        record.errors_uncorrected,
        record.rollbacks,
        record.recomputed_iterations,
        tuple((p.iteration, p.index, p.bit) for p in record.faults),
    )


def check_equivalence(smoke: bool) -> Dict[str, bool]:
    """Engine records vs legacy records, bitwise, per method x scenario.

    Uses a small tile so the check stays cheap; the equivalence is a
    property of the execution strategy, not of the domain size.
    """
    app = make_hotspot_app((16, 16, 4))
    iterations = 10 if smoke else 16
    repetitions = 6 if smoke else 10
    reference = app.reference_solution(iterations)
    workers = min(2, resolve_workers(None))
    results: Dict[str, bool] = {}
    engines = {
        "serial": CampaignEngine(executor="serial", batch_size=4),
        "process": CampaignEngine(executor="process", workers=workers, batch_size=4),
    }
    try:
        for method in ("no-abft", "online-abft", "offline-abft"):
            factory = make_protector_factory(method, period=4)
            for scenario, inject in (
                ("error-free", False), ("single-bit-flip", True)
            ):
                config = CampaignConfig(
                    iterations=iterations,
                    repetitions=repetitions,
                    inject=inject,
                    seed=11,
                )
                legacy = run_campaign(
                    app.build_grid, factory, config, reference=reference
                )
                want = [_record_key(r) for r in legacy.records]
                for kind, engine in engines.items():
                    got = engine.run(
                        app.build_grid, factory, config, reference=reference
                    )
                    results[f"{method}_{scenario}_{kind}"] = bool(
                        [_record_key(r) for r in got.records] == want
                    )
    finally:
        for engine in engines.values():
            engine.shutdown()
    return results


# --------------------------------------------------------------------------
# Chaos resilience
# --------------------------------------------------------------------------
def check_chaos_resilience(chaos_mode: str) -> Dict[str, object]:
    """Campaign under an injected worker failure vs an undisturbed run.

    The chaos engine marks one batch so the pool worker that picks it up
    kills or hangs itself mid-campaign; the engine must detect the loss,
    restart the pool, re-dispatch the batch, and still produce records
    bitwise-identical (all fields except elapsed time) to an engine that
    was never disturbed.  ``worker_restarts`` proves the failure was
    actually injected and survived, rather than silently skipped.
    """
    app = make_hotspot_app((16, 16, 4))
    iterations, repetitions = 10, 24
    reference = app.reference_solution(iterations)
    factory = make_protector_factory("online-abft")
    config = CampaignConfig(
        iterations=iterations, repetitions=repetitions, inject=True, seed=7
    )
    workers = min(2, resolve_workers(None))
    common = dict(executor="process", workers=workers, batch_size=4)

    # chaos="off" pins an undisturbed baseline even when REPRO_CHAOS is
    # exported (the CI smoke step sets it for the whole job).
    with CampaignEngine(chaos="off", **common) as engine:
        baseline = engine.run(app.build_grid, factory, config, reference=reference)
        baseline_restarts = engine.worker_restarts

    with CampaignEngine(
        chaos=chaos_mode, worker_timeout=15.0, **common
    ) as engine:
        disturbed = engine.run(app.build_grid, factory, config, reference=reference)
        restarts = engine.worker_restarts

    identical = bool(
        [_record_key(r) for r in disturbed.records]
        == [_record_key(r) for r in baseline.records]
    )
    return {
        "chaos_mode": chaos_mode,
        "records_identical_to_undisturbed": identical,
        "worker_restarts": restarts,
        "baseline_worker_restarts": baseline_restarts,
        "failure_was_injected_and_survived": bool(restarts >= 1),
        "repetitions": repetitions,
    }


# --------------------------------------------------------------------------
# Throughput
# --------------------------------------------------------------------------
def time_throughput(
    iterations: int, chunk_runs: int, repeats: int, workers: int
) -> Dict[str, object]:
    """Chunk-interleaved runs/second of the engine vs the legacy loop.

    One warm-up chunk per leg (builds the engine's worker pool and
    per-worker campaign state, pays the legacy loop's lazy costs), then
    ``TIMING_CHUNKS`` interleaved timed chunks per repeat.
    """
    app = make_hotspot_app(GATE_TILE)
    reference = app.reference_solution(iterations)
    factory = make_protector_factory("online-abft")

    def legacy_chunk(seed: int) -> float:
        config = CampaignConfig(
            iterations=iterations, repetitions=chunk_runs, inject=True, seed=seed
        )
        start = time.perf_counter()
        run_campaign(app.build_grid, factory, config, reference=reference)
        return time.perf_counter() - start

    engine = CampaignEngine(executor="process", workers=workers)
    try:
        def engine_chunk(seed: int) -> float:
            config = CampaignConfig(
                iterations=iterations, repetitions=chunk_runs, inject=True,
                seed=seed,
            )
            start = time.perf_counter()
            engine.run(app.build_grid, factory, config, reference=reference)
            return time.perf_counter() - start

        # Warm-up: pool spawn, worker state construction, legacy lazies.
        legacy_chunk(900)
        engine_chunk(900)

        legacy_rps: List[float] = []
        engine_rps: List[float] = []
        ratios: List[float] = []
        seed = 0
        for _ in range(repeats):
            t_legacy = 0.0
            t_engine = 0.0
            for _ in range(TIMING_CHUNKS):
                t_legacy += legacy_chunk(seed)
                t_engine += engine_chunk(seed)
                seed += chunk_runs
            total_runs = chunk_runs * TIMING_CHUNKS
            legacy_rps.append(total_runs / t_legacy)
            engine_rps.append(total_runs / t_engine)
            ratios.append(t_legacy / t_engine)
    finally:
        engine.shutdown()

    return {
        "legacy_runs_per_second": statistics.median(legacy_rps),
        "engine_runs_per_second": statistics.median(engine_rps),
        "engine_speedup_vs_legacy": statistics.median(ratios),
        "per_repeat_speedups": [round(r, 4) for r in ratios],
        "runs_per_repeat": chunk_runs * TIMING_CHUNKS,
    }


# --------------------------------------------------------------------------
# Stacked vs replay (same engine, strategy forced)
# --------------------------------------------------------------------------
def time_stacked_vs_replay(
    iterations: int, chunk_runs: int, repeats: int
) -> Dict[str, object]:
    """Chunk-interleaved runs/second of the stacked vs the replay strategy.

    Both legs run on the *same* serial-executor engine (same persistent
    worker state, same pre-drawn plans), differing only in the forced
    ``strategy`` — so the ratio isolates the batched-kernel fast path
    from every other engine win.  The numba backend is selected when
    available (the CI matrix's JIT job, where the stacked leg drives the
    generated ``bstep_cs`` kernels); otherwise the default interpreted
    backend is measured and ``numba_available`` records that the gated
    configuration was not reachable.
    """
    from repro.backends import set_default_backend
    from repro.backends.numba_backend import NUMBA_AVAILABLE

    if NUMBA_AVAILABLE:
        set_default_backend("numba")
    try:
        backend_name = get_backend().name
        app = make_hotspot_app(GATE_TILE)
        reference = app.reference_solution(iterations)
        factory = make_protector_factory("online-abft")

        engine = CampaignEngine(executor="serial")
        try:
            def chunk(seed: int, strategy: str) -> float:
                config = CampaignConfig(
                    iterations=iterations, repetitions=chunk_runs,
                    inject=True, seed=seed,
                )
                start = time.perf_counter()
                result = engine.run(
                    app.build_grid, factory, config, reference=reference,
                    strategy=strategy,
                )
                elapsed = time.perf_counter() - start
                assert result.strategy_counts() == {strategy: chunk_runs}
                return elapsed

            # Warm-up: worker state, kernel compilation/disk-cache loads.
            chunk(900, "replay")
            chunk(900, "stacked")

            stacked_rps: List[float] = []
            replay_rps: List[float] = []
            ratios: List[float] = []
            seed = 0
            for _ in range(repeats):
                t_stacked = 0.0
                t_replay = 0.0
                for _ in range(TIMING_CHUNKS):
                    t_replay += chunk(seed, "replay")
                    t_stacked += chunk(seed, "stacked")
                    seed += chunk_runs
                total_runs = chunk_runs * TIMING_CHUNKS
                stacked_rps.append(total_runs / t_stacked)
                replay_rps.append(total_runs / t_replay)
                ratios.append(t_replay / t_stacked)
        finally:
            engine.shutdown()
    finally:
        if NUMBA_AVAILABLE:
            set_default_backend(None)

    return {
        "backend": backend_name,
        "numba_available": bool(NUMBA_AVAILABLE),
        "stacked_runs_per_second": statistics.median(stacked_rps),
        "replay_runs_per_second": statistics.median(replay_rps),
        "stacked_speedup_vs_replay": statistics.median(ratios),
        "per_repeat_speedups": [round(r, 4) for r in ratios],
        "runs_per_repeat": chunk_runs * TIMING_CHUNKS,
    }


# --------------------------------------------------------------------------
# Allocation profile
# --------------------------------------------------------------------------
def measure_allocations(iterations: int, repetitions: int) -> Dict[str, object]:
    """Tracemalloc peak growth per run, engine steady state vs legacy.

    The engine is exercised in-process (serial executor) so tracemalloc
    sees the worker-side stacked execution — the same code path the pool
    workers run.  One untimed campaign first builds the persistent state
    (buffers, scratches); the traced campaign's peak growth is then the
    genuinely per-batch transient footprint.
    """
    app = make_hotspot_app(GATE_TILE)
    reference = app.reference_solution(iterations)
    factory = make_protector_factory("online-abft")
    config = CampaignConfig(
        iterations=iterations, repetitions=repetitions, inject=True, seed=3
    )
    domain_bytes = int(np.prod(GATE_TILE)) * 4

    engine = CampaignEngine(executor="serial", batch_size=repetitions)
    try:
        engine.run(app.build_grid, factory, config, reference=reference)
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        engine.run(app.build_grid, factory, config, reference=reference)
        _, engine_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    finally:
        engine.shutdown()
    engine_delta = max(0, int(engine_peak) - int(baseline))
    engine_per_run = max(0, engine_delta - ALLOC_FLAT_ALLOWANCE) / repetitions

    run_campaign(app.build_grid, factory, config, reference=reference)
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    run_campaign(app.build_grid, factory, config, reference=reference)
    _, legacy_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    legacy_delta = max(0, int(legacy_peak) - int(baseline))
    legacy_per_run = max(0, legacy_delta - ALLOC_FLAT_ALLOWANCE) / repetitions

    return {
        "domain_bytes": domain_bytes,
        "engine_peak_alloc_bytes": engine_delta,
        "engine_alloc_bytes_per_run": int(engine_per_run),
        "engine_full_domain_allocs_per_run": int(round(engine_per_run / domain_bytes)),
        "engine_zero_full_domain_allocs_per_run": bool(
            engine_per_run < domain_bytes / 2
        ),
        "legacy_peak_alloc_bytes": legacy_delta,
        "legacy_alloc_bytes_per_run": int(legacy_per_run),
        "legacy_full_domain_allocs_per_run": int(round(legacy_per_run / domain_bytes)),
    }


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--iters", type=int, default=32,
        help="stencil iterations per campaign run",
    )
    parser.add_argument(
        "--chunk-runs", type=int, default=8,
        help="campaign runs per interleaved timed chunk",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (median)"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes (default: resolve_workers)",
    )
    parser.add_argument(
        "--json", default=DEFAULT_JSON,
        help=f"machine-readable results file (default: {DEFAULT_JSON})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI mode: fewer runs; exit non-zero if engine records differ "
            "from the legacy loop, the engine allocates a full domain per "
            f"run after warm-up, or the speedup falls below "
            f"{SPEEDUP_SMOKE_FLOOR}x"
        ),
    )
    parser.add_argument(
        "--chaos-smoke", action="store_true",
        help=(
            "CI chaos gate: run one small process-executor campaign with "
            "an injected worker failure (mode from REPRO_CHAOS, default "
            "worker-kill) next to an undisturbed one; exit non-zero "
            "unless the pool was restarted at least once and the records "
            "are bitwise-identical.  Runs only this check"
        ),
    )
    args = parser.parse_args(argv)

    if args.chaos_smoke:
        mode = os.environ.get("REPRO_CHAOS") or "worker-kill"
        print(f"Chaos smoke: campaign engine under {mode} (process executor)")
        chaos = check_chaos_resilience(mode)
        survived = chaos["failure_was_injected_and_survived"]
        identical = chaos["records_identical_to_undisturbed"]
        print(
            f"  worker-pool restarts : {chaos['worker_restarts']} "
            f"{'ok' if survived else 'FAIL (failure never injected)'}"
        )
        print(
            f"  records vs undisturbed: "
            f"{'bitwise-identical ok' if identical else 'DIFFER FAIL'}"
        )
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({"chaos": chaos}, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return 0 if (survived and identical) else 1

    if args.smoke:
        args.iters = min(args.iters, 16)
        args.chunk_runs = min(args.chunk_runs, 6)
        args.repeats = min(args.repeats, 3)
    workers = resolve_workers(args.workers)

    report = {
        "config": {
            "tile": list(GATE_TILE),
            "method": "online-abft",
            "scenario": "single-bit-flip",
            "iterations": args.iters,
            "chunk_runs": args.chunk_runs,
            "timing_chunks": TIMING_CHUNKS,
            "repeats": args.repeats,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "backend": get_backend().name,
            "smoke": bool(args.smoke),
        },
        "metric_definitions": {
            "engine_speedup_vs_legacy": (
                "median over repeats of (legacy chunk time / engine chunk "
                "time); within every repeat the two legs advance in "
                f"{TIMING_CHUNKS} interleaved timed chunks of "
                "chunk_runs campaign runs each, so frequency/throttle "
                "drift spans both legs equally and cancels out of the "
                "ratio.  Wall clock (perf_counter), because the engine's "
                "process executor works in pool children invisible to "
                "parent CPU time"
            ),
            "runs_per_second": (
                "median per-repeat throughput of one leg (chunk_runs * "
                "timing_chunks runs / summed chunk time)"
            ),
            "record_equivalence": (
                "engine records bitwise-equal to the legacy serial loop "
                "(all fields except elapsed_seconds) for identical seeds, "
                "per method x scenario x executor"
            ),
            "stacked_speedup_vs_replay": (
                "median over repeats of (replay chunk time / stacked chunk "
                "time) on one serial-executor engine with the strategy "
                "forced per run() call; same interleaved-chunk scheme as "
                "engine_speedup_vs_legacy.  Measured on the numba backend "
                "when importable (the batched bstep_cs kernels), else on "
                "the default backend with numba_available=false"
            ),
            "alloc_bytes_per_run": (
                "tracemalloc peak growth of a traced steady-state "
                "campaign, minus a fixed batch allowance "
                f"({ALLOC_FLAT_ALLOWANCE} B for records/plans/checksums), "
                "divided by the runs; the engine leg runs in-process "
                "(serial executor, the same worker code path) because "
                "tracemalloc cannot see pool children.  The legacy loop "
                "allocates a padded buffer pair + protector + error "
                "temporaries per run; the engine must stay below half a "
                "domain per run"
            ),
        },
        "equivalence": {},
        "throughput": {},
        "stacked_numba": {},
        "allocations": {},
        "gates": {},
    }

    print(
        f"Campaign engine benchmark: {GATE_TILE[0]}x{GATE_TILE[1]}x"
        f"{GATE_TILE[2]} online-abft bit-flip campaign, {args.iters} "
        f"iterations/run, {args.chunk_runs} runs/chunk x {TIMING_CHUNKS} "
        f"chunks, median of {args.repeats} repeats, process executor "
        f"({workers} worker{'s' if workers != 1 else ''})"
    )
    print()

    print("Record equivalence (engine vs legacy, bitwise):")
    equivalence = check_equivalence(args.smoke)
    report["equivalence"] = equivalence
    for name, ok in sorted(equivalence.items()):
        print(f"  {name:42s} {'ok' if ok else 'FAIL'}")
    equiv_ok = all(equivalence.values())
    print()

    throughput = time_throughput(
        args.iters, args.chunk_runs, args.repeats, workers
    )
    report["throughput"] = throughput
    speedup = throughput["engine_speedup_vs_legacy"]
    print(
        f"throughput: engine {throughput['engine_runs_per_second']:.1f} "
        f"runs/s vs legacy {throughput['legacy_runs_per_second']:.1f} "
        f"runs/s -> {speedup:.2f}x (per-repeat "
        f"{[f'{r:.2f}' for r in throughput['per_repeat_speedups']]})"
    )

    stacked = time_stacked_vs_replay(args.iters, args.chunk_runs, args.repeats)
    report["stacked_numba"] = stacked
    stacked_speedup = stacked["stacked_speedup_vs_replay"]
    print(
        f"stacked vs replay ({stacked['backend']} backend"
        f"{'' if stacked['numba_available'] else ', numba unavailable'}): "
        f"stacked {stacked['stacked_runs_per_second']:.1f} runs/s vs "
        f"replay {stacked['replay_runs_per_second']:.1f} runs/s -> "
        f"{stacked_speedup:.2f}x (per-repeat "
        f"{[f'{r:.2f}' for r in stacked['per_repeat_speedups']]})"
    )

    allocations = measure_allocations(args.iters, max(8, args.chunk_runs))
    report["allocations"] = allocations
    print(
        f"allocations: engine {allocations['engine_alloc_bytes_per_run']} "
        f"B/run ({allocations['engine_full_domain_allocs_per_run']} full "
        f"domains) vs legacy {allocations['legacy_alloc_bytes_per_run']} "
        f"B/run ({allocations['legacy_full_domain_allocs_per_run']} full "
        f"domains of {allocations['domain_bytes']} B)"
    )
    print()

    alloc_ok = allocations["engine_zero_full_domain_allocs_per_run"]
    speed_floor = SPEEDUP_SMOKE_FLOOR if args.smoke else SPEEDUP_REQUIRED
    speed_ok = speedup >= speed_floor
    # The 1.5x stacked-vs-replay criterion names the numba backend's
    # batched kernels; when numba is not importable the section is
    # informational and the gate passes vacuously.
    stacked_gated = bool(stacked["numba_available"])
    stacked_ok = (not stacked_gated) or stacked_speedup >= speed_floor
    report["gates"] = {
        "record_equivalence": equiv_ok,
        "engine_zero_full_domain_allocs_per_run": bool(alloc_ok),
        "engine_speedup_vs_legacy": speedup,
        "speedup_floor_applied": speed_floor,
        "speedup_passes_floor": bool(speed_ok),
        "speedup_meets_committed_requirement": bool(
            speedup >= SPEEDUP_REQUIRED
        ),
        "stacked_numba_speedup_vs_replay": stacked_speedup,
        "stacked_numba_gate_applied": stacked_gated,
        "stacked_numba_passes_floor": bool(stacked_ok),
        "stacked_numba_meets_committed_requirement": bool(
            stacked_gated and stacked_speedup >= SPEEDUP_REQUIRED
        ),
    }

    if equiv_ok:
        print("engine records bitwise-identical to the legacy serial loop")
    else:
        print("FAIL: engine records differ from the legacy loop")
    if alloc_ok:
        print("engine performs zero full-domain allocations per run after warm-up")
    else:
        print("FAIL: engine allocated full-domain temporaries per run")
    if not stacked_gated:
        print(
            f"stacked vs replay measured on the {stacked['backend']} "
            f"backend (numba unavailable here; the {SPEEDUP_REQUIRED}x "
            f"kernel gate applies in the numba CI job)"
        )
    elif stacked_speedup >= SPEEDUP_REQUIRED:
        print(
            f"numba stacked beats replay by {stacked_speedup:.2f}x "
            f"(requirement {SPEEDUP_REQUIRED}x)"
        )
    elif stacked_ok:
        print(
            f"WARN: numba stacked speedup {stacked_speedup:.2f}x is below "
            f"the committed {SPEEDUP_REQUIRED}x requirement but above the "
            f"smoke floor {speed_floor}x — shared-runner noise band"
        )
    else:
        print(
            f"FAIL: numba stacked speedup {stacked_speedup:.2f}x below "
            f"the {speed_floor}x floor"
        )
    if speedup >= SPEEDUP_REQUIRED:
        print(f"engine beats the legacy loop by {speedup:.2f}x (requirement {SPEEDUP_REQUIRED}x)")
    elif speed_ok:
        print(
            f"WARN: engine speedup {speedup:.2f}x is below the committed "
            f"{SPEEDUP_REQUIRED}x requirement but above the smoke floor "
            f"{speed_floor}x — shared-runner noise band"
        )
    else:
        print(
            f"FAIL: engine speedup {speedup:.2f}x below the "
            f"{speed_floor}x floor"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nmachine-readable results written to {args.json}")

    if args.smoke and not (equiv_ok and alloc_ok and speed_ok and stacked_ok):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
