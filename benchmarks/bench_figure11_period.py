"""Figure 11 — Offline ABFT execution time vs. detection period Δ.

Sweeps the detection/checkpoint period in the error-free and
single-bit-flip scenarios and prints both curves.
"""

from repro.experiments.figure11 import format_figure11, run_figure11


def test_figure11_period_sweep(benchmark, scale):
    result = benchmark.pedantic(run_figure11, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_figure11(result))

    tile = scale.primary_tile()
    error_free = result.curve(tile, "error-free")
    faulty = result.curve(tile, "single-bit-flip")
    assert len(error_free) >= 3

    # Qualitative shape: detecting/checkpointing every iteration is the
    # most expensive error-free configuration (left edge of the curve).
    per_iteration = error_free[0]
    cheapest = min(error_free, key=lambda p: p.mean_time)
    assert per_iteration.period == 1
    assert cheapest.mean_time <= per_iteration.mean_time

    # In the faulty scenario rollbacks happen, and the recomputation window
    # grows with the period, so large periods do not keep getting cheaper.
    assert any(p.rollbacks > 0 for p in faulty)
