"""Figure 11 — Offline ABFT execution time vs. detection period Δ.

Sweeps the detection/checkpoint period in the error-free and
single-bit-flip scenarios and prints both curves.  Every (period,
scenario) campaign runs on the shared :class:`CampaignEngine` (the
same execution strategy as the figure 10 / sensitivity benchmarks).

A second benchmark sweeps the same periods with temporal blocking: the
``OfflineABFT(track_strips=False)`` protector advances in fused
``multi_step(min(period, remaining))`` windows (checksum carry — only
the window-closing traversal folds checksums), and the per-period
blocked-vs-single-step overhead curve is emitted as machine-readable
JSON (``BENCH_figure11_blocking.json``) after asserting the two legs
produce bitwise-identical campaign records.
"""

import json
import os

from repro.experiments.common import make_hotspot_app, make_protector_factory
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.faults.campaign import CampaignConfig
from repro.faults.engine import CampaignEngine

BLOCKING_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_figure11_blocking.json",
)


def test_figure11_period_sweep(benchmark, scale):
    result = benchmark.pedantic(run_figure11, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_figure11(result))

    tile = scale.primary_tile()
    error_free = result.curve(tile, "error-free")
    faulty = result.curve(tile, "single-bit-flip")
    assert len(error_free) >= 3

    # Qualitative shape: detecting/checkpointing every iteration is the
    # most expensive error-free configuration (left edge of the curve).
    per_iteration = error_free[0]
    cheapest = min(error_free, key=lambda p: p.mean_time)
    assert per_iteration.period == 1
    assert cheapest.mean_time <= per_iteration.mean_time

    # In the faulty scenario rollbacks happen, and the recomputation window
    # grows with the period, so large periods do not keep getting cheaper.
    assert any(p.rollbacks > 0 for p in faulty)


def _record_key(record):
    """Every deterministic field of a run record (elapsed time excluded)."""
    return (
        record.run_index,
        record.arithmetic_error,
        record.errors_detected,
        record.errors_corrected,
        record.errors_uncorrected,
        record.rollbacks,
        record.recomputed_iterations,
        tuple((p.iteration, p.index, p.bit) for p in record.faults),
    )


def test_figure11_blocking_overhead_json(scale):
    """Blocked-vs-single-step overhead per detection period, as JSON.

    For every detection period the error-free offline campaign runs
    twice on the engine — single-step (``block_steps=1``) and temporally
    blocked (detection-period-aligned windows) — from identical seeds.
    The records must be bitwise identical; the per-period overhead curve
    (how much the single-step loop costs relative to the blocked one)
    lands in ``BENCH_figure11_blocking.json``.
    """
    tile = scale.primary_tile()
    iterations = scale.iterations[tile]
    repetitions = scale.repetitions[tile]
    app = make_hotspot_app(tile)
    reference = app.reference_solution(iterations)
    periods = [p for p in scale.detection_periods if p <= iterations]
    assert periods

    curve = []
    with CampaignEngine() as eng:
        for period in periods:
            row = {"period": period}
            keys = {}
            for label, block in (("single_step", 1), ("blocked", None)):
                factory = make_protector_factory(
                    "offline-abft",
                    epsilon=scale.epsilon,
                    period=period,
                    track_strips=False,
                    block_steps=block,
                )
                config = CampaignConfig(
                    iterations=iterations,
                    repetitions=repetitions,
                    inject=False,
                    seed=700 + period,
                )
                campaign = eng.run(
                    app.build_grid, factory, config, reference=reference
                )
                stats = campaign.time_stats()
                row[label] = {
                    "mean_time": stats.mean,
                    "std_time": stats.std,
                    "min_time": stats.minimum,
                }
                keys[label] = [_record_key(r) for r in campaign.records]
            # Checksum carry preserves the trajectory bit for bit: every
            # deterministic record field must match across the two legs.
            assert keys["single_step"] == keys["blocked"]
            single = row["single_step"]["mean_time"]
            blocked = row["blocked"]["mean_time"]
            row["single_step_overhead_pct"] = 100.0 * (single / blocked - 1.0)
            row["blocked_speedup"] = single / blocked
            curve.append(row)

    payload = {
        "tile": list(tile),
        "iterations": iterations,
        "repetitions": repetitions,
        "scale": scale.name,
        "scenario": "error-free",
        "records_bit_identical": True,
        "curve": curve,
        "metric_definitions": {
            "single_step_overhead_pct": (
                "100 * (single-step mean_time / blocked mean_time - 1): "
                "the cost of driving the offline protector one sweep at "
                "a time instead of in detection-period-aligned blocked "
                "windows"
            ),
        },
    }
    with open(BLOCKING_JSON, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nblocking overhead curve written to {BLOCKING_JSON}")
    for row in curve:
        print(
            f"  period {row['period']:3d}: blocked {row['blocked']['mean_time']*1e3:8.3f} ms  "
            f"single-step {row['single_step']['mean_time']*1e3:8.3f} ms  "
            f"({row['blocked_speedup']:.2f}x)"
        )
