"""Ablation: exact α/β boundary-correction terms vs. the simplified form.

The paper's Equations (8)-(9) drop the α/β terms, which is only exact
for symmetric-weight stencils (or periodic boundaries). This ablation
runs an *asymmetric* upwind-advection stencil with clamp boundaries and
shows that the simplified interpolation produces spurious detections
while the exact strip-based interpolation stays silent — at essentially
the same cost.
"""

import pytest

from repro.apps.advection import AdvectionConfig, build_advection_grid
from repro.core.offline import OfflineABFT

ITERATIONS = 24
PERIOD = 8


def _run_offline(track_strips: bool):
    grid = build_advection_grid(AdvectionConfig(nx=64, ny=64, boundary="clamp"))
    protector = OfflineABFT.for_grid(
        grid, epsilon=1e-5, period=PERIOD, track_strips=track_strips
    )
    run = protector.run(grid, ITERATIONS)
    return run, protector


@pytest.mark.parametrize("track_strips", [True, False],
                         ids=["exact-alpha-beta", "simplified-eq8-9"])
def test_ablation_boundary_terms_cost(benchmark, track_strips):
    benchmark.group = "ablation-boundary-terms"
    run, protector = benchmark.pedantic(
        _run_offline, args=(track_strips,), rounds=1, iterations=1
    )
    if track_strips:
        # Exact interpolation: clean run, no spurious detections, no rollbacks.
        assert run.total_detected == 0
        assert protector.total_rollbacks == 0
    else:
        # Dropping the α/β terms mispredicts the checksum of an asymmetric
        # stencil with clamp boundaries: spurious detections appear.
        assert run.total_detected > 0


def test_exact_terms_false_positive_free_on_asymmetric_stencil(benchmark):
    run, protector = benchmark.pedantic(
        _run_offline, args=(True,), rounds=1, iterations=1
    )
    print(f"\nexact α/β: detections={run.total_detected}, rollbacks={protector.total_rollbacks}")
    assert run.total_detected == 0
