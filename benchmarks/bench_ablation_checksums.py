"""Ablation: checksum-computation choices of the online protector.

Two design choices from Section 3.2 of the paper are quantified:

* lazy (verify one checksum, compute the second only on detection,
  the paper's recommendation) vs. eager (compute both every iteration);
* float32 checksum accumulation (the paper's fused kernel) vs. the
  float64 accumulation this library defaults to for false-positive
  headroom.
"""

import numpy as np
import pytest

from repro.core.online import OnlineABFT
from repro.experiments.common import make_hotspot_app

TILE = (48, 48, 8)
ITERATIONS = 8


def _run(protector_kwargs):
    app = make_hotspot_app(TILE)
    grid = app.build_grid()
    protector = OnlineABFT.for_grid(grid, epsilon=1e-5, **protector_kwargs)
    protector.run(grid, 2)  # warm-up
    return grid, protector


@pytest.mark.parametrize(
    "label, kwargs",
    [
        ("lazy-single-checksum", {"eager_row_checksum": False}),
        ("eager-both-checksums", {"eager_row_checksum": True}),
    ],
)
def test_ablation_checksum_count(benchmark, label, kwargs):
    grid, protector = _run(kwargs)
    benchmark.group = "ablation-checksum-count"
    benchmark.name = label
    benchmark(lambda: protector.step(grid))


@pytest.mark.parametrize(
    "label, kwargs",
    [
        ("float64-accumulation", {"checksum_dtype": np.float64}),
        ("float32-accumulation", {"checksum_dtype": None}),
    ],
)
def test_ablation_checksum_dtype_cost(benchmark, label, kwargs):
    grid, protector = _run(kwargs)
    benchmark.group = "ablation-checksum-dtype"
    benchmark.name = label
    benchmark(lambda: protector.step(grid))


def test_ablation_checksum_dtype_margin(benchmark):
    """float64 accumulation buys orders of magnitude of false-positive margin."""

    def margins():
        out = {}
        for label, dtype in (("float32", None), ("float64", np.float64)):
            app = make_hotspot_app(TILE)
            grid = app.build_grid()
            protector = OnlineABFT.for_grid(grid, epsilon=1e-5, checksum_dtype=dtype)
            worst = 0.0
            for _ in range(ITERATIONS):
                report = protector.step(grid)
                worst = max(worst, report.max_relative_error)
            out[label] = worst
        return out

    result = benchmark.pedantic(margins, rounds=1, iterations=1)
    print(f"\nworst clean-run relative discrepancy: {result}")
    assert result["float64"] < result["float32"]
    assert result["float64"] < 1e-7   # huge margin below the 1e-5 threshold
    assert result["float32"] < 1e-5   # the paper's operating point still holds
