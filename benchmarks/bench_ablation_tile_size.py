"""Ablation: ABFT overhead and detection margin vs. tile size.

Section 5.1 of the paper argues for applying the scheme per (small) tile
because the floating-point discrepancy of the checksum comparison grows
with the reduction length. This ablation measures, for a range of tile
sizes, (a) the per-iteration cost of the protected sweep and (b) the
worst clean-run relative discrepancy — i.e. how much margin remains
below the detection threshold.
"""

import pytest

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.experiments.common import make_hotspot_app

TILE_SIZES = [(16, 16, 8), (32, 32, 8), (64, 64, 8), (128, 128, 8)]


def _stepper(tile, protected: bool):
    app = make_hotspot_app(tile)
    grid = app.build_grid()
    protector = (
        OnlineABFT.for_grid(grid, epsilon=1e-5) if protected else NoProtection()
    )
    protector.run(grid, 2)
    return grid, protector


@pytest.mark.parametrize("tile", TILE_SIZES, ids=lambda t: "x".join(map(str, t)))
def test_protected_step_cost_vs_tile_size(benchmark, tile):
    grid, protector = _stepper(tile, protected=True)
    benchmark.group = "ablation-tile-size-protected"
    benchmark(lambda: protector.step(grid))


@pytest.mark.parametrize("tile", TILE_SIZES, ids=lambda t: "x".join(map(str, t)))
def test_unprotected_step_cost_vs_tile_size(benchmark, tile):
    grid, protector = _stepper(tile, protected=False)
    benchmark.group = "ablation-tile-size-unprotected"
    benchmark(lambda: protector.step(grid))


def test_detection_margin_shrinks_with_tile_size(benchmark):
    """The clean-run discrepancy grows with the reduction length, which is
    why the paper recommends small tiles (or, here, float64 accumulation)."""

    def margins():
        out = {}
        for tile in TILE_SIZES:
            app = make_hotspot_app(tile)
            grid = app.build_grid()
            protector = OnlineABFT.for_grid(grid, epsilon=1e-5, checksum_dtype=None)
            worst = 0.0
            for _ in range(6):
                report = protector.step(grid)
                worst = max(worst, report.max_relative_error)
            out[tile] = worst
        return out

    result = benchmark.pedantic(margins, rounds=1, iterations=1)
    print("\nworst clean-run discrepancy per tile size (float32 checksums):")
    for tile, value in result.items():
        print(f"  {'x'.join(map(str, tile)):>12}: {value:.3e}")
    assert result[TILE_SIZES[-1]] >= result[TILE_SIZES[0]]
    # All configurations stay below the paper's threshold (no false positives).
    assert all(v < 1e-5 for v in result.values())
