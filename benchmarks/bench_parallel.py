"""Parallel-execution benchmarks.

Quantifies the cost of the per-tile protected execution (the paper's
"intrinsically parallel, no extra synchronisation" property) and
contrasts the ABFT overhead with the triple-modular-redundancy baseline
the paper dismisses as prohibitively expensive.
"""

import pytest

from repro.baselines.tmr import TMRProtector
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.experiments.common import make_hotspot_app
from repro.parallel.executor import (
    ProcessPoolTileExecutor,
    SerialExecutor,
    ThreadPoolTileExecutor,
    resolve_workers,
)
from repro.parallel.runner import TiledStencilRunner

TILE = (64, 64, 8)


def _runner(executor, protected=True):
    app = make_hotspot_app(TILE)
    grid = app.build_grid()
    if protected:
        runner = TiledStencilRunner.with_online_abft(
            grid, "layers", executor=executor, epsilon=1e-5
        )
    else:
        runner = TiledStencilRunner(grid, "layers", executor=executor)
    runner.run(2)  # warm-up
    return runner


def test_tiled_serial_step(benchmark):
    runner = _runner(SerialExecutor())
    benchmark.group = "parallel-step"
    benchmark.name = "per-layer-abft-serial"
    benchmark(lambda: runner.step())


def test_tiled_threads_step(benchmark):
    workers = resolve_workers(None)
    executor = ThreadPoolTileExecutor(workers=workers)
    runner = _runner(executor)
    benchmark.group = "parallel-step"
    benchmark.name = f"per-layer-abft-{workers}threads"
    try:
        benchmark(lambda: runner.step())
    finally:
        executor.shutdown()


def test_tiled_processes_step(benchmark):
    workers = resolve_workers(None)
    executor = ProcessPoolTileExecutor(workers=workers)
    runner = _runner(executor)
    benchmark.group = "parallel-step"
    benchmark.name = f"per-layer-abft-{workers}procs-shm"
    try:
        benchmark(lambda: runner.step())
    finally:
        runner.shutdown()


def test_tiled_unprotected_step(benchmark):
    runner = _runner(SerialExecutor(), protected=False)
    benchmark.group = "parallel-step"
    benchmark.name = "per-layer-unprotected"
    benchmark(lambda: runner.step())


@pytest.mark.parametrize(
    "label, factory",
    [
        ("no-abft", lambda grid: NoProtection()),
        ("online-abft", lambda grid: OnlineABFT.for_grid(grid, epsilon=1e-5)),
        ("tmr", lambda grid: TMRProtector()),
    ],
)
def test_redundancy_cost_comparison(benchmark, label, factory):
    """ABFT vs TMR: the motivation of Sections 1-2 in one benchmark group."""
    app = make_hotspot_app(TILE)
    grid = app.build_grid()
    protector = factory(grid)
    protector.run(grid, 2)
    benchmark.group = "redundancy-comparison"
    benchmark.name = label
    benchmark(lambda: protector.step(grid))
