"""Figure 10 — impact of the bit-flip position on the final error.

Sweeps the injected bit position for the three methods and prints the
per-bit error distribution, asserting the qualitative structure of the
paper's three panels.
"""

from repro.experiments.figure10 import format_figure10, run_figure10
from repro.faults.bitflip import bit_field


def test_figure10_bit_position_sweep(benchmark, scale):
    result = benchmark.pedantic(run_figure10, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_figure10(result))

    exponent_bits = [b for b in scale.bit_positions if bit_field(b, "float32") == "exponent"]
    low_fraction_bits = [b for b in scale.bit_positions if b <= 10]
    high_exponent = [b for b in exponent_bits if b >= 26]

    # Panel (a): unprotected exponent flips are catastrophic.
    assert any(result.cell("no-abft", b).median_error > 1.0 for b in high_exponent)

    # Panel (b): online ABFT detects every high-exponent flip and reduces
    # the error by orders of magnitude relative to no protection.
    for b in high_exponent:
        online = result.cell("online-abft", b)
        unprotected = result.cell("no-abft", b)
        assert online.detection_rate == 1.0
        assert online.median_error <= unprotected.median_error

    # Panels (b)/(c): flips in the lowest fraction bits are below the
    # detection threshold for both ABFT variants (and harmless).
    for b in low_fraction_bits:
        assert result.cell("online-abft", b).detection_rate == 0.0
        assert result.cell("no-abft", b).median_error < 1e-2

    # Panel (c): offline ABFT erases every detected error completely.
    for b in high_exponent:
        offline = result.cell("offline-abft", b)
        assert offline.detection_rate == 1.0
        assert offline.median_error < 1e-10
