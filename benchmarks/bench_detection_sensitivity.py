"""Detection-sensitivity comparison: ABFT vs spatial-interpolation detector.

Backs the paper's Section 2 claim that the proposed detector catches
much smaller corruptions than data-analytics detectors, without false
positives.
"""

from repro.experiments.sensitivity import format_sensitivity, run_sensitivity


def test_detection_sensitivity(benchmark, scale):
    result = benchmark.pedantic(
        run_sensitivity,
        kwargs={"scale": scale, "runs_per_magnitude": 6},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sensitivity(result))

    # The ABFT detector never fires on clean runs.
    assert result.false_positive_rates["abft-online"] == 0.0
    # It reliably detects relative perturbations of 1e-2 and 1e-3.
    for point in result.curve("abft-online"):
        if point.magnitude >= 1e-3:
            assert point.detection_rate == 1.0
