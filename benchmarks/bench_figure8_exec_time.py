"""Figure 8 — mean execution time of No-ABFT / Online / Offline.

Two granularities are measured:

* per-iteration micro-benchmarks (``test_step_*``): the steady-state cost
  of one protected sweep for each method on the larger benchmark tile —
  this is the number behind the paper's "<8% overhead" claim, measured
  by pytest-benchmark with proper warm-up and repetition;
* the full Figure 8 campaign (``test_figure8_campaign``): error-free and
  single-bit-flip scenarios for every method and tile size, printed as
  the same series the paper plots.
"""

import pytest

from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.experiments.common import make_hotspot_app
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.metrics.timing import overhead_percent


def _steady_state_stepper(method: str, tile):
    """Build a (grid, protector) pair that has already taken a few steps."""
    app = make_hotspot_app(tile)
    grid = app.build_grid()
    if method == "no-abft":
        protector = NoProtection()
    elif method == "online-abft":
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
    else:
        protector = OfflineABFT.for_grid(grid, epsilon=1e-5, period=16)
    protector.run(grid, 3)  # warm-up: caches, lazy initial checksums
    return grid, protector


@pytest.mark.parametrize("method", ["no-abft", "online-abft", "offline-abft"])
def test_step_cost_per_method(benchmark, bench_tile, method):
    grid, protector = _steady_state_stepper(method, bench_tile)
    benchmark.group = f"figure8-step-{'x'.join(str(v) for v in bench_tile)}"
    benchmark.name = method
    benchmark(lambda: protector.step(grid))


def test_online_overhead_shrinks_with_tile_size(benchmark):
    """The headline "<8% overhead" claim is a large-tile statement: the ABFT
    work is O(boundary) per sweep while the sweep is O(volume), so the
    relative overhead must shrink as tiles grow. In pure NumPy the small
    tiles are dominated by Python dispatch, so we assert the trend (and a
    loose absolute bound at the larger size) rather than the paper's
    compiled-code 8%; the paper-scale 512x512x8 measurement is recorded in
    EXPERIMENTS.md."""
    import time

    def measure(method, tile, iterations=8):
        grid, protector = _steady_state_stepper(method, tile)
        start = time.perf_counter()
        protector.run(grid, iterations)
        return time.perf_counter() - start

    def overheads():
        out = {}
        for tile in [(32, 32, 8), (128, 128, 8)]:
            baseline = min(measure("no-abft", tile) for _ in range(3))
            online = min(measure("online-abft", tile) for _ in range(3))
            out[tile] = overhead_percent(online, baseline)
        return out

    result = benchmark.pedantic(overheads, rounds=1, iterations=1)
    print("\nOnline ABFT overhead vs No-ABFT:")
    for tile, pct in result.items():
        print(f"  {'x'.join(map(str, tile)):>10}: {pct:+.1f}%")
    small, large = result[(32, 32, 8)], result[(128, 128, 8)]
    assert large < small
    assert large < 80.0


def test_figure8_campaign(benchmark, scale):
    result = benchmark.pedantic(run_figure8, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_figure8(result))
    # Qualitative shape of Figure 8: with a bit-flip the offline method pays
    # for rollback/recompute, the online method does not.
    for tile in scale.tile_sizes:
        online_ef = result.row(tile, "error-free", "online-abft").mean_time
        online_bf = result.row(tile, "single-bit-flip", "online-abft").mean_time
        offline_bf = result.row(tile, "single-bit-flip", "offline-abft").mean_time
        offline_ef = result.row(tile, "error-free", "offline-abft").mean_time
        assert online_bf < 1.5 * online_ef
        assert offline_bf > 0.9 * offline_ef
