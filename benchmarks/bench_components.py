"""Component micro-benchmarks.

Breaks the cost of one protected iteration into its parts — sweep,
checksum computation, checksum interpolation, detection — on the larger
benchmark tile. This is the measurement behind the complexity claims of
Theorem 1 (checksum interpolation touches only boundary strips, so it is
orders of magnitude cheaper than the sweep).
"""

import numpy as np
import pytest

from repro.core.checksums import checksum
from repro.core.detection import detect_errors
from repro.core.interpolation import (
    extract_delta_strips,
    interpolate_checksum_padded,
    interpolate_checksum_reduced,
)
from repro.experiments.common import make_hotspot_app
from repro.stencil.shift import pad_array
from repro.stencil.sweep import sweep_padded


@pytest.fixture(scope="module")
def state(request):
    tile = (64, 64, 8)
    app = make_hotspot_app(tile)
    grid = app.build_grid()
    grid.run(2)
    padded = pad_array(grid.u, grid.radius, grid.boundary)
    cs = checksum(grid.u, 0, dtype=np.float64)
    return app, grid, padded, cs


def test_component_sweep(benchmark, state):
    app, grid, padded, cs = state
    benchmark.group = "components"
    benchmark(
        lambda: sweep_padded(padded, grid.spec, grid.radius, grid.shape,
                             constant=grid.constant)
    )


def test_component_padding(benchmark, state):
    app, grid, padded, cs = state
    benchmark.group = "components"
    benchmark(lambda: pad_array(grid.u, grid.radius, grid.boundary))


def test_component_checksum(benchmark, state):
    app, grid, padded, cs = state
    benchmark.group = "components"
    benchmark(lambda: checksum(grid.u, 0, dtype=np.float64))


def test_component_interpolation(benchmark, state):
    app, grid, padded, cs = state
    benchmark.group = "components"
    benchmark(
        lambda: interpolate_checksum_padded(
            cs, padded, grid.spec, grid.radius, grid.shape, 0
        )
    )


def test_component_strip_extraction(benchmark, state):
    app, grid, padded, cs = state
    benchmark.group = "components"
    benchmark(
        lambda: extract_delta_strips(padded, grid.spec, grid.radius, grid.shape, 0)
    )


def test_component_reduced_interpolation(benchmark, state):
    app, grid, padded, cs = state
    strips = extract_delta_strips(padded, grid.spec, grid.radius, grid.shape, 0)
    benchmark.group = "components"
    benchmark(
        lambda: interpolate_checksum_reduced(
            cs, grid.spec, grid.boundary, 0, grid.shape[0], deltas=strips
        )
    )


def test_component_detection(benchmark, state):
    app, grid, padded, cs = state
    predicted = interpolate_checksum_padded(
        cs, padded, grid.spec, grid.radius, grid.shape, 0
    )
    benchmark.group = "components"
    benchmark(lambda: detect_errors(cs, predicted, 1e-5))


def test_interpolation_is_much_cheaper_than_sweep(state):
    """The Theorem-1 complexity claim, checked directly on wall-clock."""
    import time

    app, grid, padded, cs = state

    def timeit(fn, repeats=20):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    sweep_time = timeit(
        lambda: sweep_padded(padded, grid.spec, grid.radius, grid.shape,
                             constant=grid.constant)
    )
    interp_time = timeit(
        lambda: interpolate_checksum_padded(
            cs, padded, grid.spec, grid.radius, grid.shape, 0
        )
    )
    print(f"\nsweep {sweep_time * 1e3:.3f} ms vs interpolation {interp_time * 1e3:.3f} ms")
    assert interp_time < 0.5 * sweep_time
