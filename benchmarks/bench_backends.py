#!/usr/bin/env python
"""Compare compute backends and tile executors on ABFT-protected runs.

For every requested backend this benchmark times the paper's hot loop —
sweep + checksum verification under :class:`repro.core.online.OnlineABFT`
— on a five-point float32 diffusion domain (1024x1024 by default, the
acceptance configuration), plus the raw unprotected sweep for context,
and cross-checks that every backend's results and checksums stay within
``recommend_epsilon`` of the ``numpy`` reference across the whole
stencil-kernel library.

It additionally verifies the zero-copy halo pipeline with ``tracemalloc``
(the fused backend must perform **zero** full-domain allocations per
protected iteration — the double-buffered grids sweep in place), compares
the serial/thread/process tile executors on a protected tiled run, checks
the executors produce bit-identical domains and detections under fault
injection, and emits every measurement as machine-readable JSON
(``BENCH_backends.json``) so the perf trajectory is tracked across PRs.

Backends run their ``warmup`` hook (JIT compilation / cache load) plus
one untimed warm-up iteration before any timed loop, so one-off costs
never contaminate the numbers; the warmup time itself is reported
separately.  Every emitted metric is defined in the JSON's
``metric_definitions`` block — one statistic (median over repeats) and
one baseline convention across all backends.  When the optional
``numba`` backend is importable, ``--smoke`` additionally gates on it
beating the ``fused`` backend on the protected 1024² run with a lower
ABFT overhead.

Two sections cover the stencil kernel compiler specifically: a
``codegen`` block reporting, per compiling backend and per generated
kernel module, the code-generation time separately from the first-call
(JIT compile / cache load) warmup time; and a
``distributed_external_axis`` block timing the simulated distributed
runner on an **axis-1 decomposition** — the external-axis ordering the
old hand-written kernels declined — with the backend's compiled fused
step versus a forced interpreted step (separate ghost-refresh pass).
With numba importable, ``--smoke`` gates on the compiled step not being
slower.

A ``temporal_blocking`` section times the blocked k=4
``OfflineABFT(period=8, track_strips=False)`` protected run against the
single-step protector on the acceptance domain, using chunk-interleaved
timing (alternating legs inside every repeat, the bench_campaign
VM-drift methodology), after proving the two runs bit-identical —
final domain, reports, and the verified checksum at every detection
boundary.  With numba importable, ``--smoke`` additionally gates on the
blocked run beating single-step.

Usage::

    python benchmarks/bench_backends.py                 # full comparison
    python benchmarks/bench_backends.py --smoke         # CI gate: exit 1 if
                                                        # fused is slower than
                                                        # numpy, allocates a
                                                        # full domain per iter,
                                                        # or numba (if present)
                                                        # fails its gate
    python benchmarks/bench_backends.py --size 2048 --iters 20 --exec-workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
import tracemalloc

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.backends import available_backends, get_backend
from repro.core.online import OnlineABFT
from repro.core.thresholds import recommend_epsilon
from repro.parallel.executor import make_executor, resolve_workers
from repro.parallel.runner import TiledStencilRunner
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion
from repro.stencil.shift import pad_array

REFERENCE = "numpy"
DEFAULT_JSON = "BENCH_backends.json"

#: Interleaved timed chunks per repeat for the temporal-blocking
#: comparison — the bench_campaign VM-drift methodology: alternating
#: blocked/single-step chunks inside every repeat means slow clock or
#: load drift on shared runners hits both legs equally instead of
#: biasing whichever leg ran later.
TIMING_CHUNKS = 4

#: Fixed transient footprint of the protector itself (checksum vectors,
#: interpolation strips, detection buffers) — measured flat at ~85-100 KB
#: from 128^2 to 1024^2 domains.  The allocation gate subtracts this
#: allowance so a small benchmark domain is not mislabelled as a
#: full-domain temporary.
ALLOC_OVERHEAD_ALLOWANCE = 256 * 1024


def build_grid(size: int, backend: str) -> Grid2D:
    rng = np.random.default_rng(42)
    initial = (rng.random((size, size)) * 100.0).astype(np.float32)
    return Grid2D(
        initial,
        five_point_diffusion(0.2),
        BoundaryCondition.clamp(),
        backend=backend,
    )


def warmup_backend(backend: str) -> float:
    """Run the backend's warmup hook; returns its wall time in ms.

    For the interpreted backends this is a no-op; for JIT backends it
    compiles (or loads from the on-disk cache) every kernel the
    benchmark operator needs.  Called once per backend *before* any
    timed loop — together with the untimed warm-up iteration each
    timing function performs, this keeps one-off compilation cost out
    of every reported number.
    """
    start = time.perf_counter()
    get_backend(backend).warmup(
        five_point_diffusion(0.2), BoundaryCondition.clamp(),
        np.float32, np.float64,
    )
    return (time.perf_counter() - start) * 1000.0


def time_protected_run(backend: str, size: int, iters: int, repeats: int):
    """(median, min) per-iteration wall time (ms) of an OnlineABFT run.

    The median is reported in the table; the min — the least
    noise-contaminated sample — is what the ``--smoke`` gate compares,
    so scheduler jitter on shared CI runners cannot flip the verdict.
    """
    samples = []
    for _ in range(repeats):
        grid = build_grid(size, backend)
        protector = OnlineABFT.for_grid(grid, backend=backend)
        protector.step(grid)  # warm-up: scratch buffers, first checksums
        start = time.perf_counter()
        for _ in range(iters):
            protector.step(grid)
        samples.append((time.perf_counter() - start) / iters * 1000.0)
    return statistics.median(samples), min(samples)


def _interpreted_step_proxy(backend):
    """A view of ``backend`` whose ``step_into*`` take the interpreted path.

    The proxy shares the backend's state (spec caches, kernel compiler)
    but resolves the step primitives to the :class:`Backend` base
    implementations — a separate ``refresh_ghosts`` pass followed by the
    sweep — so the fused compiled step can be timed against the unfused
    path on identical kernels.
    """
    from repro.backends.base import Backend

    cls = type(
        "_InterpretedSteps",
        (type(backend),),
        {
            "step_into": Backend.step_into,
            "step_into_with_checksums": Backend.step_into_with_checksums,
            "supports_fused_step": Backend.supports_fused_step,
        },
    )
    proxy = object.__new__(cls)
    proxy.__dict__ = backend.__dict__  # shared caches, shared compiler
    return proxy


def time_distributed_external_axis(
    name: str, size: int, iters: int, repeats: int, axis: int = 1
) -> dict:
    """Compiled vs interpreted step on an axis-1 rank decomposition.

    Axis 1 puts the external (halo-ingested) axis *after* the refreshed
    axis — the layout ordering the old hand-written numba kernels
    declined, forcing every distributed step onto the interpreted path.
    The generated kernels compile it like any other layout; this times
    the protected distributed run both ways on the same backend.
    """
    from repro.parallel.simmpi import DistributedStencilRunner

    backend = get_backend(name)
    out: dict = {"backend": name, "axis": axis, "ranks": 2, "size": size}
    for label, impl in (
        ("compiled", backend),
        ("interpreted", _interpreted_step_proxy(backend)),
    ):
        samples = []
        for _ in range(repeats):
            grid = build_grid(size, name)
            runner = DistributedStencilRunner(
                grid, n_ranks=2, protect=True, backend=impl, axis=axis
            )
            runner.step()  # warm-up: channel mailboxes, first checksums
            start = time.perf_counter()
            for _ in range(iters):
                runner.step()
            samples.append((time.perf_counter() - start) / iters * 1000.0)
        out[label] = {
            "ms_per_iter_median": statistics.median(samples),
            "ms_per_iter_best": min(samples),
        }
    out["speedup_best"] = (
        out["interpreted"]["ms_per_iter_best"]
        / out["compiled"]["ms_per_iter_best"]
    )
    return out


def time_temporal_blocking(
    name: str, size: int, repeats: int, period: int = 8, block_steps: int = 4
) -> dict:
    """Blocked (k-step) vs single-step OfflineABFT on the protected run.

    Equivalence first: one run each way from an identical initial state,
    comparing the final domain, every report field, and — at every
    detection boundary — the domain hash plus the verified checksum the
    protector checkpoints there, all bitwise.  Then chunk-interleaved
    timing (``TIMING_CHUNKS`` alternating blocked/single-step chunks per
    repeat, fresh grid + protector per chunk, construction untimed) so
    VM drift cannot bias either leg.
    """
    import hashlib

    from repro.core.offline import OfflineABFT

    iters = 2 * period  # two full detection windows per timed chunk

    def make(blocked: bool):
        grid = build_grid(size, name)
        protector = OfflineABFT.for_grid(
            grid,
            period=period,
            track_strips=False,
            block_steps=block_steps if blocked else 1,
            backend=name,
        )
        return grid, protector

    def run_instrumented(blocked: bool):
        # +3 leaves a partial window for finalize() to verify too.
        grid, protector = make(blocked)
        boundaries = []
        orig = protector._verify_and_recover

        def recording(g, inject=None):
            rep = orig(g, inject)
            boundaries.append(
                (
                    g.iteration,
                    hashlib.sha256(g.u.tobytes()).hexdigest(),
                    hashlib.sha256(
                        protector._ckpt_checksum.tobytes()
                    ).hexdigest(),
                )
            )
            return rep

        protector._verify_and_recover = recording
        report = protector.run(grid, 2 * period + 3)
        records = [
            (
                r.iteration,
                r.detection_performed,
                r.errors_detected,
                r.errors_corrected,
                r.errors_uncorrected,
                r.rollback,
                r.recomputed_iterations,
            )
            for r in report.steps
        ]
        return grid.u.copy(), records, boundaries

    u_single, rec_single, bnd_single = run_instrumented(blocked=False)
    u_blocked, rec_blocked, bnd_blocked = run_instrumented(blocked=True)
    equivalence = {
        "final_domain": bool(np.array_equal(u_single, u_blocked)),
        "reports": rec_single == rec_blocked,
        "boundary_states_and_checksums": bnd_single == bnd_blocked,
        "n_boundaries": len(bnd_single),
    }

    def timed_chunk(blocked: bool) -> float:
        grid, protector = make(blocked)
        start = time.perf_counter()
        protector.run(grid, iters)
        return time.perf_counter() - start

    timed_chunk(False)  # warm-up: scratch buffers, kernel cache
    timed_chunk(True)
    single_ms: list = []
    blocked_ms: list = []
    for _ in range(repeats):
        t_single = 0.0
        t_blocked = 0.0
        for _ in range(TIMING_CHUNKS):
            t_single += timed_chunk(False)
            t_blocked += timed_chunk(True)
        total = iters * TIMING_CHUNKS
        single_ms.append(t_single / total * 1000.0)
        blocked_ms.append(t_blocked / total * 1000.0)
    return {
        "backend": name,
        "size": size,
        "period": period,
        "block_steps": block_steps,
        "iters_per_chunk": iters,
        "chunks_per_repeat": TIMING_CHUNKS,
        "repeats": repeats,
        "bit_identical": equivalence,
        "single_step": {
            "ms_per_iter_median": statistics.median(single_ms),
            "ms_per_iter_best": min(single_ms),
        },
        "blocked": {
            "ms_per_iter_median": statistics.median(blocked_ms),
            "ms_per_iter_best": min(blocked_ms),
        },
        "speedup_best": min(single_ms) / min(blocked_ms),
    }


def time_raw_sweep(backend: str, size: int, iters: int, repeats: int) -> float:
    """Median per-iteration wall time (ms) of the unprotected sweep."""
    samples = []
    for _ in range(repeats):
        grid = build_grid(size, backend)
        grid.step()
        start = time.perf_counter()
        for _ in range(iters):
            grid.step()
        samples.append((time.perf_counter() - start) / iters * 1000.0)
    return statistics.median(samples)


def measure_allocations(backend: str, size: int, iters: int = 5) -> dict:
    """Tracemalloc profile of the protected hot loop.

    Measures the *peak* allocation growth across ``iters`` protected
    steps after warm-up.  A full-domain temporary (the old per-iteration
    ``pad_array`` copy, or the reference backend's per-point products)
    bumps the peak by at least one domain worth of bytes; the
    double-buffered zero-copy pipeline only allocates O(edge) checksum
    vectors, orders of magnitude below it.
    """
    grid = build_grid(size, backend)
    protector = OnlineABFT.for_grid(grid, backend=backend)
    # Warm up everything that legitimately allocates once: the buffer
    # pair's first ghost refresh, scratch buffers, initial checksums.
    protector.step(grid)
    protector.step(grid)
    domain_bytes = int(grid.u.nbytes)
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    for _ in range(iters):
        protector.step(grid)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_delta = max(0, int(peak) - int(baseline))
    # The peak is a high-water mark (not a sum over iterations): any
    # full-domain temporary alive at any instant raises it by at least
    # one domain worth of bytes, however briefly it existed.  The fixed
    # protector overhead is subtracted so the verdict scales down to
    # small domains without false positives.
    domain_scale = max(0, peak_delta - ALLOC_OVERHEAD_ALLOWANCE)
    return {
        "domain_bytes": domain_bytes,
        "peak_alloc_bytes": peak_delta,
        "full_domain_allocs": int(round(domain_scale / domain_bytes)),
        "zero_full_domain_allocs": bool(domain_scale < domain_bytes // 2),
    }


def _injection_signature(executor, size: int = 96) -> dict:
    """Digest of a small fault-injected tiled run under one executor.

    Used to check the executor pipelines are semantically identical: the
    final domain must be bit-identical to the serial path and the
    detection/correction counts must match.  The caller's executor (and
    its warm pool) is reused and stays alive.
    """
    import hashlib

    def inject(grid, iteration):
        if iteration == 3:
            grid.u[size // 3, size // 2] += 4096.0

    grid = build_grid(size, "fused")
    runner = TiledStencilRunner.with_online_abft(
        grid, (2, 2), executor=executor, epsilon=1e-5
    )
    try:
        runner.run(6, inject=inject)
        return {
            "domain_sha": hashlib.sha256(grid.u.tobytes()).hexdigest(),
            "detected": runner.total_detected(),
            "corrected": runner.total_corrected(),
        }
    finally:
        runner.shutdown()  # releases shm migration; executor stays alive


def compare_executors(size: int, iters: int, workers) -> dict:
    """Protected tiled-run timing + injection equivalence per executor.

    One executor (and pool) per kind serves both the timing run and the
    injection-equivalence check.
    """
    workers = resolve_workers(workers)
    results: dict = {"workers": workers, "tile_parts": [2, 2], "kinds": {}}
    serial_sig = None
    for kind in ("serial", "threads", "process"):
        executor = make_executor(kind, workers=workers)
        try:
            grid = build_grid(size, "fused")
            runner = TiledStencilRunner.with_online_abft(
                grid, (2, 2), executor=executor, epsilon=1e-5
            )
            try:
                runner.step()  # warm-up: pools, shared-memory migration
                start = time.perf_counter()
                for _ in range(iters):
                    runner.step()
                elapsed_ms = (time.perf_counter() - start) / iters * 1000.0
            finally:
                runner.shutdown()
            sig = _injection_signature(executor)
        finally:
            executor.shutdown()
        if kind == "serial":
            serial_sig = sig
        results["kinds"][kind] = {
            "ms_per_iter": elapsed_ms,
            "injection_matches_serial": sig == serial_sig,
            "detected": sig["detected"],
            "corrected": sig["corrected"],
        }
    return results


def check_equivalence(backends, verbose: bool = True) -> float:
    """Max relative mismatch of any backend vs the reference (library-wide)."""
    from repro.stencil import kernels

    library = [
        ("jacobi4", kernels.jacobi4(), (48, 40)),
        ("five_point_diffusion", kernels.five_point_diffusion(0.2), (48, 40)),
        ("nine_point_smoothing", kernels.nine_point_smoothing(), (48, 40)),
        ("asymmetric_advection_2d", kernels.asymmetric_advection_2d(), (48, 40)),
        ("seven_point_diffusion_3d", kernels.seven_point_diffusion_3d(0.1), (24, 20, 6)),
        ("twenty_seven_point_3d", kernels.twenty_seven_point_3d(), (24, 20, 6)),
        ("asymmetric_advection_3d", kernels.asymmetric_advection_3d(), (24, 20, 6)),
    ]
    rng = np.random.default_rng(7)
    worst = 0.0
    for name, spec, shape in library:
        u = (rng.random(shape) * 100.0).astype(np.float32)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        ref_new, ref_cs = get_backend(REFERENCE).sweep_with_checksums(
            padded, spec, radius, shape, (0, 1), checksum_dtype=np.float64
        )
        for backend in backends:
            new, cs = get_backend(backend).sweep_with_checksums(
                padded, spec, radius, shape, (0, 1), checksum_dtype=np.float64
            )
            eps = recommend_epsilon(shape, 0, np.float32, spec)
            mismatches = [
                np.max(np.abs(new - ref_new) / np.maximum(np.abs(ref_new), 1.0))
            ]
            for axis in (0, 1):
                mismatches.append(
                    np.max(
                        np.abs(cs[axis] - ref_cs[axis])
                        / np.maximum(np.abs(ref_cs[axis]), 1.0)
                    )
                )
            mismatch = float(max(mismatches))
            worst = max(worst, mismatch)
            status = "ok" if mismatch <= eps else "FAIL"
            if verbose or status == "FAIL":
                print(
                    f"  equivalence {backend:8s} {name:26s} "
                    f"max rel diff {mismatch:.3e} (eps {eps:.1e}) {status}"
                )
            if mismatch > eps:
                raise SystemExit(
                    f"backend {backend!r} diverges from {REFERENCE!r} on "
                    f"{name}: {mismatch:.3e} > eps {eps:.3e}"
                )
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=1024, help="domain edge length")
    parser.add_argument("--iters", type=int, default=30, help="timed iterations")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (median)")
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends to compare (default: all registered)",
    )
    parser.add_argument(
        "--exec-size",
        type=int,
        default=None,
        help="domain edge length for the executor comparison "
        "(default: --size; the acceptance configuration is 2048)",
    )
    parser.add_argument(
        "--exec-workers",
        type=int,
        default=None,
        help="worker count for thread/process executors (default: all cores)",
    )
    parser.add_argument(
        "--skip-executors",
        action="store_true",
        help="skip the executor comparison section",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help=f"machine-readable results file (default: {DEFAULT_JSON})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI mode: fewer iterations, small executor domain, and exit "
            "non-zero if the fused backend is slower than the numpy "
            "reference, performs any full-domain allocation per "
            "protected iteration, or (when numba is importable) the "
            "numba backend fails to beat fused with lower ABFT overhead"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.iters = min(args.iters, 10)
        args.repeats = max(args.repeats, 5)  # min-of-5 keeps the gate stable
        if args.exec_size is None:
            args.exec_size = 256  # equivalence matters here, not timing
    if args.exec_size is None:
        args.exec_size = args.size

    if args.backends is None:
        # Canonical names only (aliases point at the same instances).
        seen, names = set(), []
        for name in available_backends():
            backend = get_backend(name)
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            names.append(backend.name)
    else:
        names = list(args.backends)
    if REFERENCE not in names:
        names.insert(0, REFERENCE)

    report = {
        "config": {
            "size": args.size,
            "iters": args.iters,
            "repeats": args.repeats,
            "exec_size": args.exec_size,
            "cpu_count": os.cpu_count(),
            "smoke": bool(args.smoke),
        },
        # Every per-backend metric uses one statistic (the median over
        # --repeats) and one baseline convention, spelled out here so
        # the JSON is self-describing and the numbers stay comparable
        # across backends and across PRs.  (An earlier revision mixed
        # baselines: the overhead used each backend's own sweep while
        # the speedup used the reference's protected run, which made
        # "27% overhead yet 0.98x speedup" read as a contradiction.)
        "metric_definitions": {
            "warmup_ms": (
                "one-off Backend.warmup() wall time (JIT compilation / "
                "cache load); excluded from every other metric"
            ),
            "sweep_ms": (
                "median per-iteration wall time of the unprotected sweep "
                "on this backend (one untimed warm-up iteration first)"
            ),
            "abft_ms_median": (
                "median per-iteration wall time of the OnlineABFT-"
                "protected run on this backend (one untimed warm-up "
                "iteration first)"
            ),
            "abft_ms_best": (
                "fastest repeat of the protected run; what the --smoke "
                "speed gates compare (least scheduler-noise-contaminated)"
            ),
            "abft_overhead_pct": (
                "100 * (abft_ms_median - sweep_ms) / sweep_ms: the cost "
                "of protection relative to this same backend's own "
                "unprotected sweep (both medians)"
            ),
            "sweep_speedup_vs_reference": (
                "reference sweep_ms / this backend's sweep_ms (medians; "
                "> 1 means this backend sweeps faster than numpy)"
            ),
            "protected_speedup_vs_reference": (
                "reference abft_ms_median / this backend's abft_ms_median "
                "(medians; > 1 means this backend's protected run is "
                "faster than numpy's)"
            ),
            "codegen.kernels[].codegen_ms": (
                "per generated kernel module: plan + emit + source "
                "materialisation + import time, excluding JIT compilation"
            ),
            "codegen.kernels[].warmup_ms": (
                "per generated kernel module: first-call time during "
                "Backend.warmup() — JIT compilation or on-disk cache load"
            ),
            "distributed_external_axis.speedup_best": (
                "interpreted ms_per_iter_best / compiled ms_per_iter_best "
                "on the axis-1 (previously declined) rank decomposition; "
                "> 1 means the compiled fused step wins"
            ),
            "temporal_blocking.speedup_best": (
                "single-step ms_per_iter_best / blocked ms_per_iter_best "
                "of the OfflineABFT-protected run (chunk-interleaved "
                "timing, fresh grid per chunk); > 1 means the k-step "
                "blocked kernels win"
            ),
            "temporal_blocking.bit_identical": (
                "blocked vs single-step equivalence: final domain, every "
                "report field, and the domain state + verified checksum "
                "at every detection boundary, all compared bitwise"
            ),
        },
        "backends": {},
        "codegen": {},
        "distributed_external_axis": None,
        "temporal_blocking": None,
        "executors": None,
        "gates": {},
    }

    print(
        f"Backend comparison: {args.size}x{args.size} float32 five-point "
        f"diffusion, OnlineABFT-protected ({args.iters} iters, "
        f"median of {args.repeats})"
    )
    print()
    print("Equivalence vs reference across the stencil library:")
    worst = check_equivalence(
        [n for n in names if n != REFERENCE], verbose=not args.smoke
    )
    print(f"  all backends within eps of {REFERENCE} (max rel diff {worst:.3e})")
    print()

    results = {}
    header = (
        f"{'backend':10s} {'sweep ms':>10s} {'abft ms':>10s} {'overhead':>9s} "
        f"{'sweep vs numpy':>15s} {'abft vs numpy':>14s} {'peak alloc':>12s}"
    )
    print(header)
    print("-" * len(header))
    warmups = {}
    for name in names:
        warmups[name] = warmup_backend(name)
        raw = time_raw_sweep(name, args.size, args.iters, args.repeats)
        protected, best = time_protected_run(name, args.size, args.iters, args.repeats)
        alloc = measure_allocations(name, args.size)
        results[name] = (raw, protected, best, alloc)
    ref_sweep = results[REFERENCE][0]
    ref_protected = results[REFERENCE][1]
    for name in names:
        raw, protected, best, alloc = results[name]
        overhead = (protected / raw - 1.0) * 100.0
        sweep_speedup = ref_sweep / raw
        protected_speedup = ref_protected / protected
        peak = alloc["peak_alloc_bytes"]
        print(
            f"{name:10s} {raw:10.3f} {protected:10.3f} {overhead:8.1f}% "
            f"{sweep_speedup:13.2f}x {protected_speedup:12.2f}x {peak:10d} B"
        )
        report["backends"][name] = {
            "warmup_ms": warmups[name],
            "sweep_ms": raw,
            "abft_ms_median": protected,
            "abft_ms_best": best,
            "abft_overhead_pct": overhead,
            "sweep_speedup_vs_reference": sweep_speedup,
            "protected_speedup_vs_reference": protected_speedup,
            "alloc": alloc,
        }
    print()

    # -- generated-kernel (codegen) report ------------------------------------
    for name in names:
        backend = get_backend(name)
        if not backend.compiles_kernels:
            continue
        entries = [dict(e) for e in backend.compiled_kernels()]
        total_codegen = sum(e["codegen_ms"] for e in entries)
        total_warmup = sum(e["warmup_ms"] for e in entries)
        report["codegen"][name] = {
            "kernels": entries,
            "total_codegen_ms": total_codegen,
            "total_warmup_ms": total_warmup,
        }
        print(
            f"{name} codegen: {len(entries)} generated kernel modules — "
            f"codegen {total_codegen:.2f} ms, first-call (JIT/cache) "
            f"{total_warmup:.2f} ms"
        )
        for e in entries:
            print(
                f"  {e['digest']}  {e['kind']:5s} codegen "
                f"{e['codegen_ms']:7.3f} ms  warmup {e['warmup_ms']:8.2f} ms  "
                f"{e['spec']}"
            )
        print()

    # -- allocation-regression gate -----------------------------------------
    fused_alloc = results.get("fused", (None,) * 4)[3]
    alloc_gate = None
    if fused_alloc is not None:
        alloc_gate = fused_alloc["zero_full_domain_allocs"]
        domain_mb = fused_alloc["domain_bytes"] / 1e6
        peak_kb = fused_alloc["peak_alloc_bytes"] / 1e3
        if alloc_gate:
            print(
                f"fused backend performs zero full-domain allocations per "
                f"protected iteration (peak transient {peak_kb:.1f} KB vs "
                f"{domain_mb:.1f} MB domain, tracemalloc)"
            )
        else:
            print(
                f"FAIL: fused backend allocated "
                f"{fused_alloc['full_domain_allocs']} full-domain "
                f"temporaries across the loop (peak {peak_kb:.1f} KB, "
                f"domain {domain_mb:.1f} MB)"
            )
    report["gates"]["fused_zero_full_domain_allocs"] = alloc_gate

    # -- executor comparison ------------------------------------------------
    exec_ok = True
    if not args.skip_executors:
        print()
        workers = resolve_workers(args.exec_workers)
        print(
            f"Executor comparison: {args.exec_size}x{args.exec_size} fused "
            f"OnlineABFT tiled 2x2, {workers} workers"
        )
        exec_results = compare_executors(
            args.exec_size, max(3, args.iters // 3), args.exec_workers
        )
        report["executors"] = exec_results
        for kind, row in exec_results["kinds"].items():
            match = "ok" if row["injection_matches_serial"] else "MISMATCH"
            print(
                f"  {kind:8s} {row['ms_per_iter']:10.3f} ms/iter   "
                f"injection vs serial: {match} "
                f"(detected {row['detected']}, corrected {row['corrected']})"
            )
            exec_ok = exec_ok and row["injection_matches_serial"]
        proc = exec_results["kinds"]["process"]["ms_per_iter"]
        thr = exec_results["kinds"]["threads"]["ms_per_iter"]
        report["gates"]["process_beats_threads"] = proc < thr
        report["gates"]["executors_match_serial_under_injection"] = exec_ok
        if proc < thr:
            print(
                f"  process executor beats threads: {proc:.3f} < {thr:.3f} "
                f"ms/iter"
            )
        else:
            print(
                f"  note: process executor ({proc:.3f} ms) did not beat "
                f"threads ({thr:.3f} ms) here — expected on few-core hosts; "
                f"informative only, the gate is the injection equivalence"
            )

    # -- speed gate ----------------------------------------------------------
    speed_fail = False
    if "fused" in results:
        # Gate on the per-backend minimum: the fastest sample is the one
        # least distorted by scheduler noise, which matters on shared CI
        # runners where the margin can be a few percent. A 5% grace band
        # separates "lost the race to runner jitter" (warn, pass) from
        # "actually slower" (fail).
        fused_best = results["fused"][2]
        ref_best = results[REFERENCE][2]
        report["gates"]["fused_faster_than_numpy"] = fused_best < ref_best
        if fused_best < ref_best:
            print(
                f"\nfused backend beats the {REFERENCE} reference: "
                f"{fused_best:.3f} ms < {ref_best:.3f} ms per protected "
                f"iteration (best of {args.repeats})"
            )
        elif fused_best < ref_best * 1.05:
            print(
                f"\nWARN: fused backend ({fused_best:.3f} ms) did not beat the "
                f"{REFERENCE} reference ({ref_best:.3f} ms) but is within the "
                f"5% noise band — not failing the gate"
            )
        else:
            print(
                f"\nFAIL: fused backend ({fused_best:.3f} ms) is >5% slower than "
                f"the {REFERENCE} reference ({ref_best:.3f} ms)"
            )
            speed_fail = True

    # -- numba JIT gate -------------------------------------------------------
    # Only armed when the numba backend is importable (and benchmarked):
    # the compiled per-point fusion must beat the interpreted fused
    # backend on the protected run AND carry a lower ABFT overhead —
    # the acceptance criterion of the JIT-backend milestone.  Absent
    # numba, the benchmark proves graceful degradation instead.
    numba_fail = False
    if "numba" in results and "fused" in results:
        # Same scheduler-noise treatment as the fused-vs-numpy gate
        # above: the hard failure needs a margin beyond runner jitter
        # (5% on the best-of timing, 2 percentage points on the
        # overhead), otherwise warn and pass — on single-core CI
        # runners parallel=True buys nothing and the margins shrink.
        numba_best, fused_best = results["numba"][2], results["fused"][2]
        numba_ov = report["backends"]["numba"]["abft_overhead_pct"]
        fused_ov = report["backends"]["fused"]["abft_overhead_pct"]
        beats = numba_best < fused_best
        lower = numba_ov < fused_ov
        report["gates"]["numba_beats_fused_protected"] = beats
        report["gates"]["numba_overhead_below_fused"] = lower
        if beats:
            print(
                f"numba backend beats fused on the protected run: "
                f"{numba_best:.3f} ms < {fused_best:.3f} ms per iteration "
                f"(best of {args.repeats})"
            )
        elif numba_best < fused_best * 1.05:
            print(
                f"WARN: numba backend ({numba_best:.3f} ms) did not beat "
                f"fused ({fused_best:.3f} ms) but is within the 5% noise "
                f"band — not failing the gate"
            )
        else:
            print(
                f"FAIL: numba backend ({numba_best:.3f} ms) is >5% slower "
                f"than fused ({fused_best:.3f} ms) on the protected run"
            )
            numba_fail = True
        if lower:
            print(
                f"numba ABFT overhead below fused: {numba_ov:.1f}% < "
                f"{fused_ov:.1f}%"
            )
        elif numba_ov < fused_ov + 2.0:
            print(
                f"WARN: numba ABFT overhead ({numba_ov:.1f}%) is not below "
                f"fused ({fused_ov:.1f}%) but within the 2-point noise band "
                f"— not failing the gate"
            )
        else:
            print(
                f"FAIL: numba ABFT overhead ({numba_ov:.1f}%) exceeds fused "
                f"({fused_ov:.1f}%) by more than 2 percentage points"
            )
            numba_fail = True

    # -- external-axis distributed layout (previously declined) ---------------
    # Timed on the best compiling backend present (numba), falling back
    # to the fused backend for the informative numbers; the smoke gate
    # is armed only for numba, where the fused compiled step exists.
    dist_fail = False
    dist_name = "numba" if "numba" in results else (
        "fused" if "fused" in results else None
    )
    if dist_name is not None:
        dist_size = min(args.size, 256 if args.smoke else 512)
        dist = time_distributed_external_axis(
            dist_name, dist_size, max(3, args.iters // 3), args.repeats
        )
        report["distributed_external_axis"] = dist
        comp = dist["compiled"]["ms_per_iter_best"]
        interp = dist["interpreted"]["ms_per_iter_best"]
        print(
            f"\ndistributed axis-1 decomposition ({dist_name}, "
            f"{dist_size}x{dist_size}, 2 ranks, previously declined): "
            f"compiled step {comp:.3f} ms vs interpreted {interp:.3f} ms "
            f"per iteration ({dist['speedup_best']:.2f}x)"
        )
        if dist_name == "numba":
            ok = comp < interp
            report["gates"]["numba_external_axis_compiled_not_slower"] = ok
            if ok:
                print(
                    "  compiled fused step beats the interpreted path on "
                    "the external-axis layout"
                )
            elif comp < interp * 1.05:
                print(
                    "  WARN: compiled step within the 5% noise band of the "
                    "interpreted path — not failing the gate"
                )
            else:
                print(
                    "  FAIL: compiled step is >5% slower than the "
                    "interpreted path on the external-axis layout"
                )
                dist_fail = True

    # -- temporal blocking (checksum carry) -----------------------------------
    # Blocked k-step OfflineABFT vs single-step on the acceptance
    # configuration (protected 1024^2 five-point run, period-aligned
    # k=4).  Informative on the interpreted backends; the smoke speed
    # gate is armed only for numba, where the compiled k-step kernels
    # exist — the bit-identity gate is armed everywhere.
    tb_fail = False
    tb_name = "numba" if "numba" in results else (
        "fused" if "fused" in results else None
    )
    if tb_name is not None:
        tb = time_temporal_blocking(
            tb_name, args.size, max(2, min(args.repeats, 3))
        )
        report["temporal_blocking"] = tb
        eq = tb["bit_identical"]
        eq_ok = (
            eq["final_domain"]
            and eq["reports"]
            and eq["boundary_states_and_checksums"]
        )
        report["gates"]["temporal_blocking_bit_identical"] = eq_ok
        single = tb["single_step"]["ms_per_iter_best"]
        blocked = tb["blocked"]["ms_per_iter_best"]
        print(
            f"\ntemporal blocking ({tb_name}, {args.size}x{args.size}, "
            f"OfflineABFT period {tb['period']}, k={tb['block_steps']}): "
            f"blocked {blocked:.3f} ms vs single-step {single:.3f} ms "
            f"per protected iteration ({tb['speedup_best']:.2f}x)"
        )
        if eq_ok:
            print(
                f"  bit-identical across {eq['n_boundaries']} detection "
                f"boundaries (domains, reports, verified checksums)"
            )
        else:
            print(f"  FAIL: blocked run diverges from single-step: {eq}")
            tb_fail = True
        if tb_name == "numba":
            beats = blocked < single
            report["gates"]["numba_blocked_beats_single_step"] = beats
            if beats:
                print(
                    "  compiled k-step kernels beat the single-step "
                    "protected run"
                )
            elif blocked < single * 1.05:
                print(
                    "  WARN: blocked run within the 5% noise band of "
                    "single-step — not failing the gate"
                )
            else:
                print(
                    "  FAIL: blocked run is >5% slower than single-step "
                    "on the protected run"
                )
                tb_fail = True

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nmachine-readable results written to {args.json}")

    if args.smoke:
        if alloc_gate is False:
            return 1
        if not exec_ok:
            return 1
        if speed_fail:
            return 1
        if numba_fail:
            return 1
        if dist_fail:
            return 1
        if tb_fail:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
