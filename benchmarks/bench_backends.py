#!/usr/bin/env python
"""Compare compute backends on an OnlineABFT-protected stencil run.

For every requested backend this benchmark times the paper's hot loop —
sweep + checksum verification under :class:`repro.core.online.OnlineABFT`
— on a five-point float32 diffusion domain (1024x1024 by default, the
acceptance configuration), plus the raw unprotected sweep for context,
and cross-checks that every backend's results and checksums stay within
``recommend_epsilon`` of the ``numpy`` reference across the whole
stencil-kernel library.

Usage::

    python benchmarks/bench_backends.py                 # full comparison
    python benchmarks/bench_backends.py --smoke         # CI gate: exit 1
                                                        # if fused is not
                                                        # faster than numpy
    python benchmarks/bench_backends.py --size 2048 --iters 20
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.backends import available_backends, get_backend
from repro.core.online import OnlineABFT
from repro.core.thresholds import recommend_epsilon
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion
from repro.stencil.shift import pad_array

REFERENCE = "numpy"


def build_grid(size: int, backend: str) -> Grid2D:
    rng = np.random.default_rng(42)
    initial = (rng.random((size, size)) * 100.0).astype(np.float32)
    return Grid2D(
        initial,
        five_point_diffusion(0.2),
        BoundaryCondition.clamp(),
        backend=backend,
    )


def time_protected_run(backend: str, size: int, iters: int, repeats: int):
    """(median, min) per-iteration wall time (ms) of an OnlineABFT run.

    The median is reported in the table; the min — the least
    noise-contaminated sample — is what the ``--smoke`` gate compares,
    so scheduler jitter on shared CI runners cannot flip the verdict.
    """
    samples = []
    for _ in range(repeats):
        grid = build_grid(size, backend)
        protector = OnlineABFT.for_grid(grid, backend=backend)
        protector.step(grid)  # warm-up: scratch buffers, first checksums
        start = time.perf_counter()
        for _ in range(iters):
            protector.step(grid)
        samples.append((time.perf_counter() - start) / iters * 1000.0)
    return statistics.median(samples), min(samples)


def time_raw_sweep(backend: str, size: int, iters: int, repeats: int) -> float:
    """Median per-iteration wall time (ms) of the unprotected sweep."""
    samples = []
    for _ in range(repeats):
        grid = build_grid(size, backend)
        grid.step()
        start = time.perf_counter()
        for _ in range(iters):
            grid.step()
        samples.append((time.perf_counter() - start) / iters * 1000.0)
    return statistics.median(samples)


def check_equivalence(backends, verbose: bool = True) -> float:
    """Max relative mismatch of any backend vs the reference (library-wide)."""
    from repro.stencil import kernels

    library = [
        ("jacobi4", kernels.jacobi4(), (48, 40)),
        ("five_point_diffusion", kernels.five_point_diffusion(0.2), (48, 40)),
        ("nine_point_smoothing", kernels.nine_point_smoothing(), (48, 40)),
        ("asymmetric_advection_2d", kernels.asymmetric_advection_2d(), (48, 40)),
        ("seven_point_diffusion_3d", kernels.seven_point_diffusion_3d(0.1), (24, 20, 6)),
        ("twenty_seven_point_3d", kernels.twenty_seven_point_3d(), (24, 20, 6)),
        ("asymmetric_advection_3d", kernels.asymmetric_advection_3d(), (24, 20, 6)),
    ]
    rng = np.random.default_rng(7)
    worst = 0.0
    for name, spec, shape in library:
        u = (rng.random(shape) * 100.0).astype(np.float32)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        ref_new, ref_cs = get_backend(REFERENCE).sweep_with_checksums(
            padded, spec, radius, shape, (0, 1), checksum_dtype=np.float64
        )
        for backend in backends:
            new, cs = get_backend(backend).sweep_with_checksums(
                padded, spec, radius, shape, (0, 1), checksum_dtype=np.float64
            )
            eps = recommend_epsilon(shape, 0, np.float32, spec)
            mismatches = [
                np.max(np.abs(new - ref_new) / np.maximum(np.abs(ref_new), 1.0))
            ]
            for axis in (0, 1):
                mismatches.append(
                    np.max(
                        np.abs(cs[axis] - ref_cs[axis])
                        / np.maximum(np.abs(ref_cs[axis]), 1.0)
                    )
                )
            mismatch = float(max(mismatches))
            worst = max(worst, mismatch)
            status = "ok" if mismatch <= eps else "FAIL"
            if verbose or status == "FAIL":
                print(
                    f"  equivalence {backend:8s} {name:26s} "
                    f"max rel diff {mismatch:.3e} (eps {eps:.1e}) {status}"
                )
            if mismatch > eps:
                raise SystemExit(
                    f"backend {backend!r} diverges from {REFERENCE!r} on "
                    f"{name}: {mismatch:.3e} > eps {eps:.3e}"
                )
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=1024, help="domain edge length")
    parser.add_argument("--iters", type=int, default=30, help="timed iterations")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (median)")
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends to compare (default: all registered)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI mode: fewer iterations, and exit non-zero if the fused "
            "backend is not faster than the numpy reference"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.iters = min(args.iters, 10)
        args.repeats = max(args.repeats, 5)  # min-of-5 keeps the gate stable

    if args.backends is None:
        # Canonical names only (aliases point at the same instances).
        seen, names = set(), []
        for name in available_backends():
            backend = get_backend(name)
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            names.append(backend.name)
    else:
        names = list(args.backends)
    if REFERENCE not in names:
        names.insert(0, REFERENCE)

    print(
        f"Backend comparison: {args.size}x{args.size} float32 five-point "
        f"diffusion, OnlineABFT-protected ({args.iters} iters, "
        f"median of {args.repeats})"
    )
    print()
    print("Equivalence vs reference across the stencil library:")
    worst = check_equivalence(
        [n for n in names if n != REFERENCE], verbose=not args.smoke
    )
    print(f"  all backends within eps of {REFERENCE} (max rel diff {worst:.3e})")
    print()

    results = {}
    header = f"{'backend':10s} {'sweep ms':>10s} {'abft ms':>10s} {'overhead':>9s} {'vs numpy':>9s}"
    print(header)
    print("-" * len(header))
    for name in names:
        raw = time_raw_sweep(name, args.size, args.iters, args.repeats)
        protected, best = time_protected_run(name, args.size, args.iters, args.repeats)
        results[name] = (raw, protected, best)
    ref_protected = results[REFERENCE][1]
    for name in names:
        raw, protected, _ = results[name]
        overhead = (protected / raw - 1.0) * 100.0
        speedup = ref_protected / protected
        print(
            f"{name:10s} {raw:10.3f} {protected:10.3f} {overhead:8.1f}% {speedup:8.2f}x"
        )

    if "fused" in results:
        # Gate on the per-backend minimum: the fastest sample is the one
        # least distorted by scheduler noise, which matters on shared CI
        # runners where the margin can be a few percent. A 5% grace band
        # separates "lost the race to runner jitter" (warn, pass) from
        # "actually slower" (fail).
        fused_best = results["fused"][2]
        ref_best = results[REFERENCE][2]
        if fused_best < ref_best:
            print(
                f"\nfused backend beats the {REFERENCE} reference: "
                f"{fused_best:.3f} ms < {ref_best:.3f} ms per protected "
                f"iteration (best of {args.repeats})"
            )
        elif fused_best < ref_best * 1.05:
            print(
                f"\nWARN: fused backend ({fused_best:.3f} ms) did not beat the "
                f"{REFERENCE} reference ({ref_best:.3f} ms) but is within the "
                f"5% noise band — not failing the gate"
            )
        else:
            print(
                f"\nFAIL: fused backend ({fused_best:.3f} ms) is >5% slower than "
                f"the {REFERENCE} reference ({ref_best:.3f} ms)"
            )
            if args.smoke:
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
