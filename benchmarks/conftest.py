"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation of a design choice DESIGN.md calls out) at a scaled-down
configuration, and prints the corresponding text table so the series
the paper reports can be read straight from the benchmark output
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them).

Set ``REPRO_BENCH_SCALE=quick`` (default) or ``paper`` to choose the
campaign scale; ``paper`` reproduces the published parameters and takes
hours in pure NumPy.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.common import EvaluationScale  # noqa: E402


def _select_scale() -> EvaluationScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "paper":
        return EvaluationScale.paper()
    if name == "smoke":
        return EvaluationScale.smoke()
    return EvaluationScale.quick()


@pytest.fixture(scope="session")
def scale() -> EvaluationScale:
    """The campaign scale used by every figure benchmark."""
    return _select_scale()


@pytest.fixture(scope="session")
def bench_tile(scale):
    """The single tile used by per-iteration micro-benchmarks."""
    return scale.tile_sizes[-1]
