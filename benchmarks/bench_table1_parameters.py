"""Table 1 — experimental parameters.

Regenerates the parameter table for the active scale and for the paper
scale, so the mapping between the scaled-down campaign and the published
campaign is always visible in the benchmark output.
"""

from repro.experiments.common import EvaluationScale
from repro.experiments.table1 import format_table1, run_table1


def test_table1_parameters(benchmark, scale):
    result = benchmark.pedantic(run_table1, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table1(result))
    print()
    print(format_table1(run_table1(EvaluationScale.paper())))
    assert len(result.rows) == len(scale.tile_sizes)
    assert all(row.epsilon == scale.epsilon for row in result.rows)
