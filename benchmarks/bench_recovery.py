#!/usr/bin/env python
"""Fail-stop recovery benchmark: checkpoint overhead and recovery latency.

Measures the cost of the buddy-checkpoint/rollback machinery that lets
the distributed ABFT runner survive rank death:

* **checkpoint overhead vs period** — a protected 4-rank run with
  buddy checkpointing at period P in {1, 2, 4, 8, 16, 32} is timed
  against the identical run with checkpointing disabled.  The paper's
  detection period (16) doubles as the default checkpoint period, so
  the period-16 column is the price an out-of-the-box recovery-enabled
  run pays.
* **recovery latency vs rank count** — one rank is killed mid-run at
  each rank count in {2, 4, 8} and ``RecoveryStats.recovery_seconds``
  (purge + buddy verify + rebuild + survivor rollback, excluding the
  replayed iterations) is recorded along with the rollback depth and
  checkpoint traffic.

Timings use the chunk-interleaved discipline of
``bench_weak_scaling.py``: within a repeat every leg advances in
alternating slices of the timed loop, so CPU-frequency or throttle
drift on any timescale longer than one chunk hits all legs equally and
cancels out of the overhead ratios.

It also proves the headline invariant — a crashed-and-recovered run is
**bitwise identical** to the failure-free run (final state and
detection/correction counters), including when a silent bit flip lands
inside the replayed window.  Everything is written to
``BENCH_recovery.json``.

Usage::

    python benchmarks/bench_recovery.py           # full sweep
    python benchmarks/bench_recovery.py --smoke   # CI gate: exit 1 if a
                                                  # recovered run is not
                                                  # bit-identical to the
                                                  # failure-free run, or
                                                  # checkpoint overhead at
                                                  # period 16 exceeds 15%
                                                  # on the 4-rank run
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.faults.injector import FaultPlan
from repro.faults.models import DistributedFaultInjector
from repro.parallel.simmpi import DETECTION_PERIOD, DistributedStencilRunner
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion

DEFAULT_JSON = "BENCH_recovery.json"
DEFAULT_PERIODS = (1, 2, 4, 8, 16, 32)
DEFAULT_RANK_COUNTS = (2, 4, 8)
GATE_PERIOD = DETECTION_PERIOD  # the out-of-the-box configuration
GATE_OVERHEAD_PCT = 15.0

#: Timed sub-chunks per repeat (see bench_weak_scaling.py): the
#: no-checkpoint baseline and every checkpoint-period leg advance in
#: alternating slices so slow system phases hit all legs equally.
TIMING_CHUNKS = 4


def build_grid(block: Tuple[int, int], n_ranks: int) -> Grid2D:
    rng = np.random.default_rng(42)
    shape = (block[0] * n_ranks, block[1])
    initial = (rng.random(shape) * 100.0).astype(np.float32)
    return Grid2D(initial, five_point_diffusion(0.2), BoundaryCondition.clamp())


def make_runner(block, n_ranks: int, checkpoint_period=None):
    grid = build_grid(block, n_ranks)
    return DistributedStencilRunner(
        grid, n_ranks=n_ranks, protect=True, epsilon=1e-5,
        checkpoint_period=checkpoint_period,
    )


def crash_injector(runner, iteration: int, rank: int, flips=None):
    per_rank: List[List[FaultPlan]] = [[] for _ in range(runner.n_ranks)]
    per_rank[rank].append(
        FaultPlan(iteration=iteration, index=(), bit=0, target="crash", rank=rank)
    )
    for r, plan in flips or []:
        per_rank[r].append(plan)
    return DistributedFaultInjector(runner, per_rank)


# --------------------------------------------------------------------------
# Checkpoint overhead vs period
# --------------------------------------------------------------------------
def time_checkpoint_overhead(
    block, n_ranks: int, periods, iters: int, repeats: int
) -> Dict[str, object]:
    """Chunk-interleaved timing of checkpointing legs against a baseline.

    Every repeat builds one runner per leg (no checkpointing, plus one
    per period), warms each with one untimed iteration, then cycles
    through the legs ``TIMING_CHUNKS`` times timing a slice of each
    leg's loop per visit.  The reported overhead per period is the
    **median of per-repeat ratios** against the baseline leg of the
    same repeat, so drift cancels instead of masquerading as
    checkpoint cost.
    """
    legs = [None] + list(periods)
    samples = {leg: [] for leg in legs}
    overheads = {p: [] for p in periods}
    chunk_iters = max(1, iters // TIMING_CHUNKS)
    total_iters = chunk_iters * TIMING_CHUNKS
    ckpt_stats: Dict[int, Dict[str, int]] = {}
    for _ in range(repeats):
        runners = {}
        for leg in legs:
            runner = make_runner(block, n_ranks, checkpoint_period=leg)
            runner.run(1)
            runners[leg] = runner
        elapsed = {leg: 0.0 for leg in legs}
        for _ in range(TIMING_CHUNKS):
            for leg in legs:
                start = time.process_time()
                runners[leg].run(chunk_iters)
                elapsed[leg] += time.process_time() - start
        base_ms = elapsed[None] / total_iters * 1000.0
        samples[None].append(base_ms)
        for p in periods:
            ms = elapsed[p] / total_iters * 1000.0
            samples[p].append(ms)
            overheads[p].append((ms / base_ms - 1.0) * 100.0)
        for p in periods:
            stats = runners[p].recovery
            ckpt_stats[p] = {
                "checkpoints_taken": stats.checkpoints_taken,
                "checkpoint_bytes": stats.checkpoint_bytes,
                "checkpoint_messages": stats.checkpoint_messages,
            }
    result: Dict[str, object] = {
        "baseline_ms_per_iter": statistics.median(samples[None]),
        "periods": {},
    }
    for p in periods:
        result["periods"][str(p)] = {
            "ms_per_iter": statistics.median(samples[p]),
            "overhead_pct": statistics.median(overheads[p]),
            **ckpt_stats[p],
        }
    return result


# --------------------------------------------------------------------------
# Recovery latency vs rank count
# --------------------------------------------------------------------------
def measure_recovery(block, n_ranks: int, iters: int, repeats: int) -> Dict[str, object]:
    """Kill one rank mid-run and record what the recovery itself costs.

    ``recovery_seconds`` covers channel purge, buddy-copy verification,
    dead-rank rebuild and survivor rollback; the replayed iterations
    are ordinary forward progress and are reported separately as a
    depth so the reader can price them at the sweep rate.
    """
    crash_iter = max(2, iters // 2)
    victim = n_ranks - 1
    latencies: List[float] = []
    record: Dict[str, object] = {}
    for _ in range(repeats):
        runner = make_runner(block, n_ranks)
        inject = crash_injector(runner, crash_iter, victim)
        runner.run(iters, inject=inject)
        stats = runner.recovery
        latencies.append(stats.recovery_seconds)
        record = {
            "crash_iteration": crash_iter,
            "victim_rank": victim,
            "rollback_depth": stats.max_rollback_depth,
            "replayed_iterations": stats.replayed_iterations,
            "checkpoints_taken": stats.checkpoints_taken,
            "checkpoint_bytes": stats.checkpoint_bytes,
        }
    record["recovery_seconds"] = statistics.median(latencies)
    record["recovery_seconds_best"] = min(latencies)
    return record


# --------------------------------------------------------------------------
# Bit-identity of the recovered run
# --------------------------------------------------------------------------
def check_recovery_identity(block, n_ranks: int = 4, iters: int = 24) -> Dict[str, bool]:
    """Crashed-and-recovered vs failure-free, bitwise, with and without SDC."""
    results: Dict[str, bool] = {}
    crash_iter = iters // 2 + 1

    baseline = make_runner(block, n_ranks)
    baseline.run(iters)
    crashed = make_runner(block, n_ranks)
    crashed.run(iters, inject=crash_injector(crashed, crash_iter, n_ranks - 1))
    results["recovered_matches_failure_free"] = bool(
        np.array_equal(baseline.gather(), crashed.gather())
        and crashed.total_detected() == baseline.total_detected()
        and crashed.total_corrected() == baseline.total_corrected()
        and crashed.recovery.ranks_rebuilt == 1
    )

    # A silent flip inside the replayed window: the crash rolls the run
    # back past the flip, the re-armed plan re-fires on replay, and the
    # final state and counters must still match the never-crashed run
    # that saw the same flip.
    flip = (1, FaultPlan(iteration=crash_iter - 2, index=(3, 5), bit=20))
    flipped = make_runner(block, n_ranks)
    per_rank: List[List[FaultPlan]] = [[] for _ in range(n_ranks)]
    per_rank[flip[0]].append(flip[1])
    flipped.run(iters, inject=DistributedFaultInjector(flipped, per_rank))
    both = make_runner(block, n_ranks)
    both.run(
        iters,
        inject=crash_injector(both, crash_iter, n_ranks - 1, flips=[flip]),
    )
    results["recovered_with_sdc_matches"] = bool(
        np.array_equal(flipped.gather(), both.gather())
        and both.total_detected() == flipped.total_detected()
        and both.total_corrected() == flipped.total_corrected()
    )
    return results


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--block", type=int, nargs=2, default=[256, 1024],
        metavar=("BX", "BY"),
        help="fixed per-rank block shape",
    )
    parser.add_argument(
        "--periods", type=int, nargs="+", default=list(DEFAULT_PERIODS),
        help="checkpoint periods to sweep",
    )
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=list(DEFAULT_RANK_COUNTS),
        help="rank counts for the recovery-latency sweep",
    )
    parser.add_argument("--iters", type=int, default=32, help="timed iterations")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (median)")
    parser.add_argument(
        "--json", default=DEFAULT_JSON,
        help=f"machine-readable results file (default: {DEFAULT_JSON})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI mode: fewer periods and repeats; exit non-zero if a "
            "recovered run is not bit-identical to the failure-free run "
            "(state and counters, with and without a concurrent bit "
            "flip), or if checkpoint overhead at the default period "
            f"({GATE_PERIOD}) exceeds {GATE_OVERHEAD_PCT:.0f}%% on the "
            "4-rank run"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.periods = sorted({4, GATE_PERIOD} | {p for p in args.periods if p >= 32})
        args.ranks = [n for n in args.ranks if n <= 4] or [4]
        args.iters = min(args.iters, 32)
        args.repeats = min(args.repeats, 3)
    if GATE_PERIOD not in args.periods:
        args.periods = sorted(set(args.periods) | {GATE_PERIOD})

    block = tuple(args.block)
    report = {
        "config": {
            "block": list(block),
            "block_bytes": block[0] * block[1] * 4,
            "periods": args.periods,
            "ranks": args.ranks,
            "iters": args.iters,
            "repeats": args.repeats,
            "detection_period": DETECTION_PERIOD,
            "cpu_count": os.cpu_count(),
            "smoke": bool(args.smoke),
        },
        "metric_definitions": {
            "overhead_pct": (
                "median over repeats of the per-repeat ratio 100 * "
                "(checkpointing - baseline) / baseline per-iteration "
                "process CPU time, both legs of a repeat advanced in "
                "interleaved timed chunks so drift cancels; the baseline "
                "is the identical protected run with checkpointing "
                "disabled"
            ),
            "recovery_seconds": (
                "median RecoveryStats.recovery_seconds over repeats: "
                "channel purge + buddy-copy checksum verification + "
                "dead-rank rebuild + survivor rollback, excluding the "
                "replayed iterations (reported as rollback_depth)"
            ),
            "identity": (
                "bitwise equality of gather() and equality of "
                "detected/corrected counters between the crashed-and-"
                "recovered run and the failure-free run"
            ),
        },
        "identity": {},
        "checkpoint_overhead": {},
        "recovery_latency": {},
        "gates": {},
    }

    print(
        f"Fail-stop recovery: {block[0]}x{block[1]} float32 block per rank "
        f"({args.iters} iters, median of {args.repeats})"
    )
    print()
    print("Recovered-run bit-identity (state + counters):")
    identity = check_recovery_identity(block)
    report["identity"] = identity
    for name, ok in identity.items():
        print(f"  {name:34s} {'ok' if ok else 'FAIL'}")
    identity_ok = all(identity.values())
    print()

    overhead = time_checkpoint_overhead(
        block, 4, args.periods, args.iters, args.repeats
    )
    report["checkpoint_overhead"] = overhead
    header = (
        f"{'period':>6s} {'ms/iter':>9s} {'overhead':>9s} {'ckpts':>6s} "
        f"{'bytes to buddies':>17s}"
    )
    print(f"Checkpoint overhead vs period (4 ranks, baseline "
          f"{overhead['baseline_ms_per_iter']:.3f} ms/iter):")
    print(header)
    print("-" * len(header))
    for p in args.periods:
        row = overhead["periods"][str(p)]
        print(
            f"{p:6d} {row['ms_per_iter']:9.3f} {row['overhead_pct']:8.1f}% "
            f"{row['checkpoints_taken']:6d} {row['checkpoint_bytes']:17d}"
        )
    print()

    print("Recovery latency vs rank count (crash mid-run, buddy rebuild):")
    header = (
        f"{'ranks':>5s} {'recovery ms':>12s} {'depth':>6s} "
        f"{'replayed':>9s} {'ckpt bytes':>11s}"
    )
    print(header)
    print("-" * len(header))
    for n_ranks in args.ranks:
        row = measure_recovery(block, n_ranks, args.iters, args.repeats)
        report["recovery_latency"][str(n_ranks)] = row
        print(
            f"{n_ranks:5d} {row['recovery_seconds'] * 1000.0:12.3f} "
            f"{row['rollback_depth']:6d} {row['replayed_iterations']:9d} "
            f"{row['checkpoint_bytes']:11d}"
        )
    print()

    gate_overhead = overhead["periods"][str(GATE_PERIOD)]["overhead_pct"]
    overhead_ok = gate_overhead <= GATE_OVERHEAD_PCT
    report["gates"]["recovered_run_bit_identical"] = identity_ok
    report["gates"]["checkpoint_overhead_within_budget"] = overhead_ok
    report["gates"]["checkpoint_overhead_pct_at_default_period"] = gate_overhead
    if identity_ok:
        print("recovered runs are bit-identical to failure-free runs "
              "(state and counters, with and without concurrent SDC)")
    else:
        print("FAIL: a recovered run diverged from the failure-free run")
    if overhead_ok:
        print(
            f"checkpoint overhead at the default period ({GATE_PERIOD}) is "
            f"{gate_overhead:.1f}% (budget {GATE_OVERHEAD_PCT:.0f}%)"
        )
    else:
        print(
            f"FAIL: checkpoint overhead at period {GATE_PERIOD} is "
            f"{gate_overhead:.1f}% (> {GATE_OVERHEAD_PCT:.0f}% budget)"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nmachine-readable results written to {args.json}")

    if args.smoke and not (identity_ok and overhead_ok):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
