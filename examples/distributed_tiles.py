#!/usr/bin/env python
"""Parallel protection: per-layer tiles and simulated distributed ranks.

Demonstrates the paper's "intrinsically parallel" property on two
execution models:

1. the shared-memory tiled runner, protecting each z-layer of a
   HotSpot3D domain with its own checksum pair (the paper's OpenMP
   mapping), and
2. the simulated message-passing runner, where each rank owns a
   persistent padded buffer pair for its block of a 2D domain, receives
   neighbour halo strips straight into the front buffer's ghost slabs,
   sweeps through the backend's fused step (which also produces the
   rank's checksums) and verifies its block locally — zero full-block
   allocations per rank per iteration.

In both cases a fault injected into one tile/rank is detected and
corrected by that tile/rank alone — no global communication is needed.

Run with::

    python examples/distributed_tiles.py
"""

import numpy as np

from repro import FaultInjector, FaultPlan, l2_error
from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.faults.bitflip import flip_bit_in_array
from repro.parallel.runner import TiledStencilRunner
from repro.parallel.simmpi import DistributedStencilRunner
from repro.stencil import Grid2D, kernels
from repro.stencil.boundary import BoundaryCondition

ITERATIONS = 40


def shared_memory_layers() -> None:
    print("=== Shared-memory: one protected tile per HotSpot3D layer ===")
    app = HotSpot3D(HotSpot3DConfig(nx=48, ny=48, nz=8))
    reference = app.reference_solution(ITERATIONS)

    grid = app.build_grid()
    runner = TiledStencilRunner.with_online_abft(grid, "layers", epsilon=1e-5)
    fault = FaultPlan(iteration=18, index=(20, 30, 5), bit=26)
    runner.run(ITERATIONS, inject=FaultInjector([fault]))

    print(f"tiles (layers)          : {runner.n_tiles}")
    print(f"errors detected         : {runner.total_detected()}")
    print(f"errors corrected        : {runner.total_corrected()}")
    firing = [box.index for box in runner.boxes
              if runner.protectors[box.index].total_detections > 0]
    print(f"layers that detected    : {firing} (fault was in layer {fault.index[2]})")
    print(f"final l2 error          : {l2_error(reference, grid.u):.3e}")
    print()


def distributed_ranks() -> None:
    print("=== Simulated distributed memory: 4 ranks, explicit halo exchange ===")
    rng = np.random.default_rng(3)
    initial = (rng.random((96, 64)) * 100).astype(np.float32)
    grid = Grid2D(initial, kernels.five_point_diffusion(0.2), BoundaryCondition.clamp())
    reference = grid.copy()
    reference.run(ITERATIONS)

    runner = DistributedStencilRunner(grid, n_ranks=4, protect=True, epsilon=1e-5)
    target_global = (70, 20)
    target_rank, target_local = runner.rank_of_global_index(target_global)

    def inject(run, iteration, rank):
        if iteration == 15 and rank.rank == target_rank:
            flip_bit_in_array(rank.interior, target_local, 27)

    runner.run(ITERATIONS, inject=inject)

    traffic = runner.channel.traffic()
    per_tag = ", ".join(
        f"{tag} {traffic['bytes_by_tag'][tag]}B"
        for tag in sorted(traffic["messages_by_tag"])
    )
    print(f"ranks                   : {runner.n_ranks} "
          f"(backend {runner.backend.name}, zero-copy buffer pairs)")
    print(f"halo messages exchanged : {runner.channel.messages_sent}")
    print(f"halo bytes exchanged    : {runner.channel.bytes_sent} ({per_tag})")
    print(f"errors detected         : {runner.total_detected()} "
          f"(all on rank {target_rank})")
    print(f"errors corrected        : {runner.total_corrected()}")
    print(f"final l2 error          : {l2_error(reference.u, runner.gather()):.3e}")


if __name__ == "__main__":
    shared_memory_layers()
    distributed_ranks()
