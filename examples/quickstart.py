#!/usr/bin/env python
"""Quickstart: protect a 2D stencil against silent data corruptions.

This example builds a small 2D heat-diffusion stencil, runs it once
unprotected and once under the online ABFT protector while injecting a
single bit-flip, and prints what the protector saw and how close each
run ends up to the error-free reference.

Run with::

    python examples/quickstart.py [--backend numpy|fused]

``--backend`` selects the compute backend executing every sweep and
checksum (see ``repro.backends``); the default is the optimised
``fused`` backend, which produces the verified checksum from the same
kernel call as the sweep.
"""

import argparse

import numpy as np

from repro import (
    FaultInjector,
    FaultPlan,
    NoProtection,
    OnlineABFT,
    l2_error,
)
from repro.backends import available_backends, default_backend_name, set_default_backend
from repro.stencil import Grid2D, kernels
from repro.stencil.boundary import BoundaryCondition

ITERATIONS = 60
FAULT = FaultPlan(iteration=25, index=(40, 30), bit=27)  # exponent-bit flip


def build_grid() -> Grid2D:
    """A 96x80 float32 heat-diffusion domain with clamp boundaries."""
    rng = np.random.default_rng(7)
    initial = (rng.random((96, 80)) * 100.0).astype(np.float32)
    return Grid2D(initial, kernels.five_point_diffusion(0.2), BoundaryCondition.clamp())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="compute backend for sweeps and checksums (default: fused)",
    )
    args = parser.parse_args()
    if args.backend is not None:
        set_default_backend(args.backend)
    print(f"Compute backend: {default_backend_name()}")
    print()

    # Error-free reference (what the result should be).
    reference = build_grid()
    reference.run(ITERATIONS)

    # Unprotected run with one silent bit-flip.
    unprotected = build_grid()
    NoProtection().run(unprotected, ITERATIONS, inject=FaultInjector([FAULT]))

    # Protected run with the same bit-flip.
    protected = build_grid()
    protector = OnlineABFT.for_grid(protected, epsilon=1e-5)
    report = protector.run(protected, ITERATIONS, inject=FaultInjector([FAULT]))

    print("Injected fault:")
    print(f"  iteration {FAULT.iteration}, point {FAULT.index}, bit {FAULT.bit}")
    print()
    print("Online ABFT protector:")
    print(f"  errors detected : {report.total_detected}")
    print(f"  errors corrected: {report.total_corrected}")
    for step in report.detections:
        for correction in step.corrections:
            print(
                f"  corrected point {correction.index} at iteration {step.iteration}: "
                f"{correction.old_value:.6g} -> {correction.corrected_value:.6g}"
            )
    print()
    print("Final l2 error vs the error-free reference (Eq. 11 of the paper):")
    print(f"  unprotected : {l2_error(reference.u, unprotected.u):.6g}")
    print(f"  online ABFT : {l2_error(reference.u, protected.u):.6g}")


if __name__ == "__main__":
    main()
