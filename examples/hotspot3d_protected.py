#!/usr/bin/env python
"""HotSpot3D under the three protection schemes of the paper.

Runs the HotSpot3D thermal simulation (the paper's evaluation
application) with No-ABFT, Online ABFT and Offline ABFT, both error-free
and with a single random bit-flip, and prints a miniature version of the
paper's Figures 8 and 9 (execution time and arithmetic error).

Run with::

    python examples/hotspot3d_protected.py [--nx 64 --ny 64 --nz 8 --iterations 64]
"""

import argparse
import time

import numpy as np

from repro import FaultInjector, NoProtection, OfflineABFT, OnlineABFT, l2_error
from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.faults.injector import random_fault_plan


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=64)
    parser.add_argument("--ny", type=int, default=64)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=64)
    parser.add_argument("--period", type=int, default=16,
                        help="offline detection/checkpoint period")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--bit", type=int, default=27,
        help="bit position of the injected flip (use -1 for a uniformly random bit, "
             "as in the paper's campaign; the default exponent bit makes the "
             "corruption clearly visible)",
    )
    return parser.parse_args()


def make_protector(name, grid, period):
    if name == "No ABFT":
        return NoProtection()
    if name == "ABFT (Online)":
        return OnlineABFT.for_grid(grid, epsilon=1e-5)
    return OfflineABFT.for_grid(grid, epsilon=1e-5, period=period)


def main() -> None:
    args = parse_args()
    app = HotSpot3D(HotSpot3DConfig(nx=args.nx, ny=args.ny, nz=args.nz))
    reference = app.reference_solution(args.iterations)

    methods = ["No ABFT", "ABFT (Online)", "ABFT (Offline)"]
    scenarios = ["error-free", "single bit-flip"]

    print(f"HotSpot3D tile {args.nx}x{args.ny}x{args.nz}, "
          f"{args.iterations} iterations, offline period {args.period}")
    print()
    header = f"{'scenario':<16} {'method':<16} {'time (s)':>10} {'l2 error':>12} " \
             f"{'detected':>9} {'corrected':>10} {'rollbacks':>10}"
    print(header)
    print("-" * len(header))

    for scenario in scenarios:
        for method in methods:
            grid = app.build_grid()
            protector = make_protector(method, grid, args.period)
            injector = None
            if scenario == "single bit-flip":
                rng = np.random.default_rng(args.seed)
                bit = None if args.bit < 0 else args.bit
                plan = random_fault_plan(rng, grid.shape, args.iterations,
                                         dtype=grid.dtype, bit=bit)
                injector = FaultInjector([plan])
            start = time.perf_counter()
            report = protector.run(grid, args.iterations, inject=injector)
            elapsed = time.perf_counter() - start
            error = l2_error(reference, grid.u)
            print(
                f"{scenario:<16} {method:<16} {elapsed:>10.3f} {error:>12.3e} "
                f"{report.total_detected:>9} {report.total_corrected:>10} "
                f"{report.total_rollbacks:>10}"
            )
    print()
    print("Expected shape (paper, Figs. 8-9): protected error-free runs cost a few")
    print("percent extra; with a bit-flip the unprotected error explodes, the online")
    print("protector leaves a tiny residual, and the offline protector erases it at")
    print("the cost of recomputing one detection window.")


if __name__ == "__main__":
    main()
