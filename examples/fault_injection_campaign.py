#!/usr/bin/env python
"""Fault-injection campaign over bit positions (miniature Figure 10).

For a selection of bit positions, injects many random single bit-flips
into HotSpot3D runs protected by each method and prints the median final
error and the detection rate per bit position — the text version of the
paper's Figure 10 panels.

Run with::

    python examples/fault_injection_campaign.py [--repetitions 10]
"""

import argparse

from repro.experiments.common import make_protector_factory
from repro.experiments.report import format_scientific, format_table
from repro.faults.bitflip import bit_field
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.metrics.statistics import quartile_summary


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=32)
    parser.add_argument("--nz", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=48)
    parser.add_argument("--repetitions", type=int, default=10,
                        help="injections per (method, bit) cell")
    parser.add_argument("--bits", type=int, nargs="*",
                        default=[1, 8, 16, 22, 24, 27, 30, 31])
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    app = HotSpot3D(HotSpot3DConfig(nx=args.nx, ny=args.nx, nz=args.nz))
    reference = app.reference_solution(args.iterations)

    rows = []
    for method in ("no-abft", "online-abft", "offline-abft"):
        factory = make_protector_factory(method, epsilon=1e-5, period=16)
        for bit in args.bits:
            config = CampaignConfig(
                iterations=args.iterations,
                repetitions=args.repetitions,
                inject=True,
                bit=bit,
                seed=100 + bit,
            )
            campaign = run_campaign(app.build_grid, factory, config,
                                    reference=reference)
            box = quartile_summary(campaign.errors())
            detection = campaign.detection_rate()
            rows.append(
                [
                    method,
                    str(bit),
                    bit_field(bit, "float32"),
                    format_scientific(box["median"]),
                    format_scientific(box["q3"]),
                    f"{100 * detection:.0f}%",
                ]
            )

    print(
        format_table(
            ["method", "bit", "field", "median error", "Q3 error", "detected"],
            rows,
            title=(
                f"Error vs bit-flip position — HotSpot3D {args.nx}x{args.nx}x{args.nz}, "
                f"{args.repetitions} injections per cell"
            ),
        )
    )
    print()
    print("Reading guide (paper, Fig. 10): without protection, exponent/sign flips")
    print("are catastrophic; online ABFT detects and corrects everything above the")
    print("threshold (small residual for the top exponent bits); offline ABFT erases")
    print("every detected flip; bits 0-12 are undetectable but harmless.")


if __name__ == "__main__":
    main()
