#!/usr/bin/env python
"""Tuning the offline detection period Δ (miniature Figure 11).

Sweeps the offline ABFT detection/checkpoint period and prints the mean
execution time in the error-free and single-bit-flip scenarios, showing
the trade-off the paper's Figure 11 illustrates: tiny periods pay for
checkpoint/detection every iteration, huge periods pay for longer
recomputation windows when an error strikes.

Run with::

    python examples/offline_period_tuning.py [--periods 1 2 4 8 16 32]
"""

import argparse
import time

import numpy as np

from repro import FaultInjector, OfflineABFT
from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.experiments.report import format_table
from repro.faults.injector import random_fault_plan


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=48)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=64)
    parser.add_argument("--repetitions", type=int, default=4)
    parser.add_argument("--periods", type=int, nargs="*",
                        default=[1, 2, 4, 8, 16, 32, 64])
    return parser.parse_args()


def mean_time(app, iterations, period, inject, repetitions, seed=0):
    times = []
    rollbacks = 0
    for rep in range(repetitions):
        grid = app.build_grid()
        protector = OfflineABFT.for_grid(grid, epsilon=1e-5, period=period)
        injector = None
        if inject:
            rng = np.random.default_rng(seed + rep)
            injector = FaultInjector(
                [random_fault_plan(rng, grid.shape, iterations, dtype=grid.dtype)]
            )
        start = time.perf_counter()
        report = protector.run(grid, iterations, inject=injector)
        times.append(time.perf_counter() - start)
        rollbacks += report.total_rollbacks
    return float(np.mean(times)), float(np.std(times)), rollbacks


def main() -> None:
    args = parse_args()
    app = HotSpot3D(HotSpot3DConfig(nx=args.nx, ny=args.nx, nz=args.nz))

    rows = []
    for period in args.periods:
        if period > args.iterations:
            continue
        for scenario, inject in (("error-free", False), ("single bit-flip", True)):
            mean, std, rollbacks = mean_time(
                app, args.iterations, period, inject, args.repetitions
            )
            rows.append(
                [str(period), scenario, f"{mean * 1e3:.2f} ms", f"{std * 1e3:.2f} ms",
                 str(rollbacks)]
            )

    print(
        format_table(
            ["period Δ", "scenario", "mean time", "std", "rollbacks"],
            rows,
            title=(
                f"Offline ABFT vs detection period — HotSpot3D "
                f"{args.nx}x{args.nx}x{args.nz}, {args.iterations} iterations"
            ),
        )
    )
    print()
    print("Expected shape (paper, Fig. 11): the error-free curve flattens once the")
    print("checkpoint cost is amortised (Δ ≈ 8-16); with faults, very large periods")
    print("become expensive again because a whole window must be recomputed.")


if __name__ == "__main__":
    main()
