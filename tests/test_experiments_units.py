"""Unit tests for experiment scaffolding: scales, table 1, report rendering."""

import numpy as np
import pytest

from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.experiments.common import (
    METHODS,
    EvaluationScale,
    make_hotspot_app,
    make_protector_factory,
    method_label,
)
from repro.experiments.report import format_scientific, format_seconds, format_table
from repro.experiments.table1 import format_table1, run_table1


class TestEvaluationScale:
    def test_paper_scale_matches_table1(self):
        scale = EvaluationScale.paper()
        small, large = (64, 64, 8), (512, 512, 8)
        assert scale.tile_sizes == (small, large)
        assert scale.iterations[small] == 128
        assert scale.iterations[large] == 256
        assert scale.repetitions[small] == 1000
        assert scale.repetitions[large] == 100
        assert scale.epsilon == 1e-5
        assert scale.period == 16
        assert scale.detection_periods == (1, 2, 4, 8, 16, 32, 64, 128)
        assert scale.bit_positions == tuple(range(32))

    def test_quick_scale_is_smaller(self):
        quick = EvaluationScale.quick()
        paper = EvaluationScale.paper()
        for tile in quick.tile_sizes:
            assert np.prod(tile) < np.prod(paper.tile_sizes[1])
            assert quick.iterations[tile] <= 128
        assert quick.name == "quick"

    def test_smoke_scale_is_tiny(self):
        smoke = EvaluationScale.smoke()
        assert all(np.prod(t) <= 1024 for t in smoke.tile_sizes)

    def test_primary_tile(self):
        scale = EvaluationScale.smoke()
        assert scale.primary_tile() == scale.tile_sizes[0]


class TestProtectorFactories:
    def test_methods_tuple(self):
        assert METHODS == ("no-abft", "online-abft", "offline-abft")

    def test_method_labels(self):
        assert method_label("no-abft") == "No ABFT"
        assert method_label("online-abft") == "ABFT (Online)"
        assert method_label("unknown") == "unknown"

    def test_factories_build_correct_types(self):
        app = make_hotspot_app((8, 8, 2))
        grid = app.build_grid()
        assert isinstance(make_protector_factory("no-abft")(grid), NoProtection)
        assert isinstance(make_protector_factory("online-abft")(grid), OnlineABFT)
        offline = make_protector_factory("offline-abft", period=4)(grid)
        assert isinstance(offline, OfflineABFT)
        assert offline.period == 4

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_protector_factory("dmr")

    def test_make_hotspot_app_shape(self):
        app = make_hotspot_app((10, 12, 3))
        assert app.shape == (10, 12, 3)


class TestTable1:
    def test_rows_match_scale(self):
        scale = EvaluationScale.paper()
        result = run_table1(scale)
        assert len(result.rows) == 2
        as_dict = result.as_dict()
        assert as_dict["64x64x8"]["iterations"] == 128
        assert as_dict["512x512x8"]["repetitions"] == 100
        assert as_dict["64x64x8"]["epsilon"] == 1e-5
        assert as_dict["512x512x8"]["offline_period"] == 16

    def test_format_contains_parameters(self):
        text = format_table1(run_table1(EvaluationScale.paper()))
        assert "Stencil iterations" in text
        assert "512x512x8" in text
        assert "1e-05" in text

    def test_default_scale_is_quick(self):
        assert run_table1().scale_name == "quick"


class TestReportRendering:
    def test_format_table_alignment_and_title(self):
        text = format_table(
            ["a", "column"], [[1, 2.5], ["xyz", "w"]], title="My Table"
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "a" in lines[2] and "column" in lines[2]
        assert len(lines) == 6

    def test_format_scientific(self):
        assert format_scientific(0.000123, 2) == "1.23e-04"
        assert format_scientific(float("nan")) == "nan"

    def test_format_seconds_ranges(self):
        assert format_seconds(5e-7).endswith("µs")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.0).endswith("s")
        assert format_seconds(float("nan")) == "nan"
