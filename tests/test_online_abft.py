"""Unit and behavioural tests for the online ABFT protector."""

import numpy as np
import pytest

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import asymmetric_advection_2d, five_point_diffusion


def _make_grid(rng, shape=(24, 20), spec=None, bc=None, scale=100.0):
    spec = spec if spec is not None else five_point_diffusion(0.2)
    bc = bc if bc is not None else BoundaryCondition.clamp()
    u0 = (rng.random(shape) * scale).astype(np.float32)
    return Grid2D(u0, spec, bc)


def _reference(grid, iterations):
    clone = grid.copy()
    clone.run(iterations)
    return clone.u.copy()


class TestOnlineConstruction:
    def test_for_grid_matches_grid(self, small_grid_2d):
        p = OnlineABFT.for_grid(small_grid_2d)
        assert p.shape == small_grid_2d.shape
        assert p.spec is small_grid_2d.spec
        assert p.epsilon > 0.0

    def test_invalid_verify_axis(self, small_grid_2d):
        with pytest.raises(ValueError):
            OnlineABFT.for_grid(small_grid_2d, verify_axis=2)

    def test_shape_stencil_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            OnlineABFT(five_point_diffusion(0.2), BoundarySpec.clamp(2), (4, 4, 4))

    def test_step_rejects_wrong_grid_shape(self, rng, small_grid_2d):
        other = _make_grid(rng, shape=(10, 10))
        p = OnlineABFT.for_grid(small_grid_2d)
        with pytest.raises(ValueError, match="grid shape"):
            p.step(other)

    def test_name(self, small_grid_2d):
        assert OnlineABFT.for_grid(small_grid_2d).name == "online-abft"


class TestOnlineErrorFree:
    def test_no_false_positives(self, rng):
        grid = _make_grid(rng)
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 40)
        assert run.total_detected == 0
        assert p.total_detections == 0

    def test_protected_result_identical_to_unprotected(self, rng):
        grid_a = _make_grid(rng)
        grid_b = grid_a.copy()
        OnlineABFT.for_grid(grid_a, epsilon=1e-5).run(grid_a, 25)
        NoProtection().run(grid_b, 25)
        np.testing.assert_array_equal(grid_a.u, grid_b.u)

    def test_no_false_positives_asymmetric_stencil_clamp(self, rng):
        # The α/β terms do not cancel here: the exact interpolation must
        # still agree with the computed checksum.
        grid = _make_grid(rng, spec=asymmetric_advection_2d(0.3, 0.2))
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        assert p.run(grid, 30).total_detected == 0

    @pytest.mark.parametrize(
        "bc",
        [BoundaryCondition.periodic(), BoundaryCondition.zero(),
         BoundaryCondition.constant(40.0)],
        ids=["periodic", "zero", "constant"],
    )
    def test_no_false_positives_other_boundaries(self, rng, bc):
        grid = _make_grid(rng, bc=bc)
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        assert p.run(grid, 20).total_detected == 0


class TestOnlineWithFault:
    def test_detects_and_corrects_single_fault(self, rng):
        grid = _make_grid(rng)
        ref = _reference(grid, 40)
        injector = FaultInjector([FaultPlan(iteration=17, index=(11, 7), bit=24)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 40, inject=injector)
        assert injector.all_fired
        assert run.total_detected >= 1
        assert run.total_corrected >= 1
        # residual error is small compared to an unprotected run
        assert l2_error(ref, grid.u) < 1.0

    def test_correction_is_orders_of_magnitude_better_than_unprotected(self, rng):
        plan = FaultPlan(iteration=10, index=(5, 5), bit=27)
        protected = _make_grid(rng)
        unprotected = protected.copy()
        ref = _reference(protected, 30)

        OnlineABFT.for_grid(protected, epsilon=1e-5).run(
            protected, 30, inject=FaultInjector([plan])
        )
        NoProtection().run(unprotected, 30, inject=FaultInjector([plan]))

        err_protected = l2_error(ref, protected.u)
        err_unprotected = l2_error(ref, unprotected.u)
        assert err_protected < 1e-2 * err_unprotected

    def test_corrected_location_matches_injection(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=5, index=(3, 9), bit=25)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 10, inject=injector)
        detecting_steps = run.detections
        assert len(detecting_steps) == 1
        assert detecting_steps[0].iteration == 5
        assert detecting_steps[0].corrections[0].index == (3, 9)

    def test_small_bit_flip_below_threshold_not_detected(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=5, index=(3, 9), bit=0)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 10, inject=injector)
        assert run.total_detected == 0  # flip of the lowest fraction bit

    def test_verify_axis_row_also_works(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=8, index=(10, 3), bit=26)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5, verify_axis=1)
        run = p.run(grid, 15, inject=injector)
        assert run.total_detected >= 1
        assert run.total_corrected >= 1

    def test_eager_row_checksum_mode(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=4, index=(2, 2), bit=26)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5, eager_row_checksum=True)
        run = p.run(grid, 8, inject=injector)
        assert run.total_corrected >= 1

    def test_float32_checksum_accumulation_mode(self, rng):
        # The paper's fused float32 checksums: still detects a large flip.
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=4, index=(2, 2), bit=27)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5, checksum_dtype=None)
        run = p.run(grid, 8, inject=injector)
        assert run.total_detected >= 1

    def test_multiple_faults_in_different_iterations(self, rng):
        grid = _make_grid(rng)
        plans = [
            FaultPlan(iteration=3, index=(4, 4), bit=26),
            FaultPlan(iteration=9, index=(15, 12), bit=25),
        ]
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 15, inject=FaultInjector(plans))
        assert run.total_detected >= 2
        assert run.total_corrected >= 2

    def test_3d_grid_detection_and_correction(self, small_grid_3d):
        grid = small_grid_3d
        ref = _reference(grid, 20)
        injector = FaultInjector([FaultPlan(iteration=9, index=(6, 4, 2), bit=26)])
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = p.run(grid, 20, inject=injector)
        assert run.total_detected >= 1
        assert run.total_corrected >= 1
        assert l2_error(ref, grid.u) < 1.0

    def test_reset_clears_state(self, rng):
        grid = _make_grid(rng)
        p = OnlineABFT.for_grid(grid, epsilon=1e-5)
        p.run(grid, 3, inject=FaultInjector([FaultPlan(iteration=1, index=(0, 0), bit=27)]))
        assert p.total_detections >= 1
        p.reset()
        assert p.total_detections == 0
        assert p._prev_cs[0] is None
