"""Shared fixtures and configuration for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from hypothesis import HealthCheck, settings  # noqa: E402

# Keep the property-based tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--block-steps",
        type=int,
        default=1,
        help=(
            "Temporal block factor for the parallel-runner suites: "
            "unprotected runner tests drive k fused sweeps per halo "
            "exchange instead of one (CI runs the distributed suite "
            "with --block-steps 2 under the compiled-step gate)."
        ),
    )


@pytest.fixture
def block_steps(request) -> int:
    """Temporal block factor requested on the pytest command line."""
    return request.config.getoption("--block-steps")


def pytest_sessionfinish(session, exitstatus):
    """Zero-interpreted-fallback gate for compiled backends.

    With ``REPRO_ASSERT_COMPILED_STEPS=<backend name>`` set (the CI
    numba matrix job exports ``numba``), the session fails if the named
    backend ever took the interpreted base ``step_into*`` path — a
    separate ``refresh_ghosts`` pass instead of its own fused kernel.
    Since the kernel compiler handles every layout, any nonzero count
    means a silent fallback regression.
    """
    name = os.environ.get("REPRO_ASSERT_COMPILED_STEPS")
    if not name or exitstatus != 0:
        return
    from repro.backends.base import interpreted_step_counts

    count = interpreted_step_counts().get(name, 0)
    if count:
        session.exitstatus = 1
        print(
            f"\nREPRO_ASSERT_COMPILED_STEPS: backend {name!r} took the "
            f"interpreted step path {count} time(s); expected 0",
            file=sys.stderr,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(123456789)


@pytest.fixture
def small_grid_2d(rng):
    """A small float32 2D diffusion grid with clamp boundaries."""
    from repro.stencil.boundary import BoundaryCondition
    from repro.stencil.grid import Grid2D
    from repro.stencil.kernels import five_point_diffusion

    u0 = (rng.random((20, 16)) * 100.0).astype(np.float32)
    return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())


@pytest.fixture
def small_grid_3d(rng):
    """A small float32 3D diffusion grid (with constant term) and clamp BCs."""
    from repro.stencil.boundary import BoundaryCondition
    from repro.stencil.grid import Grid3D
    from repro.stencil.kernels import seven_point_diffusion_3d

    u0 = (rng.random((12, 10, 4)) * 50.0 + 300.0).astype(np.float32)
    constant = (rng.random((12, 10, 4)) * 0.05).astype(np.float32)
    return Grid3D(
        u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp(), constant=constant
    )


@pytest.fixture
def hotspot_small():
    """A tiny HotSpot3D instance for integration tests."""
    from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig

    return HotSpot3D(HotSpot3DConfig(nx=16, ny=16, nz=4, seed=7))


def all_boundary_conditions():
    """Every boundary-condition kind exercised by the parametrised tests."""
    from repro.stencil.boundary import BoundaryCondition

    return [
        BoundaryCondition.clamp(),
        BoundaryCondition.periodic(),
        BoundaryCondition.zero(),
        BoundaryCondition.constant(3.25),
    ]


def stencil_library_2d():
    """Representative 2D stencils: symmetric, asymmetric, wide."""
    from repro.stencil import kernels

    return [
        kernels.jacobi4(),
        kernels.five_point_diffusion(0.2),
        kernels.nine_point_smoothing(),
        kernels.asymmetric_advection_2d(0.3, 0.15),
    ]


def stencil_library_3d():
    """Representative 3D stencils."""
    from repro.stencil import kernels

    return [
        kernels.seven_point_diffusion_3d(0.1),
        kernels.twenty_seven_point_3d(),
        kernels.asymmetric_advection_3d(),
    ]
