"""Hardening of the protection paths against corrupted checksum metadata.

The ABFT protectors trust their *stored* checksum vectors (the online
protector's previous-iteration checksum, the offline protector's
checkpoint checksum).  A bit flip striking that metadata instead of the
domain must not make a protector "correct" healthy data or roll back a
healthy run: the duplicated-checksum self-check detects the mismatch
between the primary copy and its independently stored duplicate, falls
back to recomputing the checksum from the (still healthy) data, and
counts the repair.  These tests pin the rule in all four settings —
online and offline, serial and distributed — and prove it has teeth by
showing the bogus detections that occur with the self-check disabled.
"""

import numpy as np
import pytest

from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.faults.injector import FaultPlan
from repro.faults.models import (
    ChecksumInjector,
    DistributedFaultInjector,
    make_injector,
)
from repro.parallel.simmpi import DistributedStencilRunner
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion

#: A high exponent-field bit of the stored float64 checksum: flipping it
#: perturbs the vector far beyond any detection epsilon, so an
#: unhardened protector is guaranteed to misread it as a domain error.
HIGH_BIT = 62


def _make_grid(rng, shape=(24, 20)):
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())


def _checksum_plan(protector, iteration, index=(5,), bit=HIGH_BIT):
    return FaultPlan(
        iteration=iteration,
        index=index,
        bit=bit,
        target="checksum",
        axis=protector.verify_axis,
    )


class TestOnlineSerial:
    def test_corrupted_stored_checksum_never_corrupts_healthy_data(self, rng):
        grid = _make_grid(rng)
        clean = grid.copy()
        clean_protector = OnlineABFT.for_grid(clean, epsilon=1e-5)
        clean_protector.run(clean, 16)

        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        hook = ChecksumInjector([_checksum_plan(protector, 6)], protector)
        run = protector.run(grid, 16, inject=hook)

        assert hook.fired_count == 1
        assert protector.total_metadata_repairs == 1
        assert run.total_detected == 0
        assert run.total_corrected == 0
        np.testing.assert_array_equal(grid.u, clean.u)

    def test_self_check_has_teeth(self, rng):
        """Disabled, the same corruption is misread as a domain error."""
        grid = _make_grid(rng)
        clean = grid.copy()
        OnlineABFT.for_grid(clean, epsilon=1e-5).run(clean, 16)

        protector = OnlineABFT.for_grid(
            grid, epsilon=1e-5, metadata_self_check=False
        )
        hook = ChecksumInjector([_checksum_plan(protector, 6)], protector)
        run = protector.run(grid, 16, inject=hook)

        assert protector.total_metadata_repairs == 0
        # Bogus alarm: the domain was healthy, yet the protector flags an
        # error (and, depending on the mismatch pattern, wastes a
        # correction attempt or reports it uncorrectable).
        assert run.total_detected >= 1

    def test_every_element_and_axis_repairs_cleanly(self, rng):
        grid0 = _make_grid(rng, shape=(12, 10))
        clean = grid0.copy()
        OnlineABFT.for_grid(clean, epsilon=1e-5).run(clean, 10)
        probe = OnlineABFT.for_grid(grid0.copy(), epsilon=1e-5)
        cs_len = grid0.shape[1 - probe.verify_axis]
        for j in range(0, cs_len, 3):
            grid = grid0.copy()
            protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
            hook = ChecksumInjector(
                [_checksum_plan(protector, 4, index=(j,))], protector
            )
            run = protector.run(grid, 10, inject=hook)
            assert run.total_detected == 0
            assert protector.total_metadata_repairs == 1
            np.testing.assert_array_equal(grid.u, clean.u)

    def test_reset_clears_repair_counter(self, rng):
        grid = _make_grid(rng)
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        hook = ChecksumInjector([_checksum_plan(protector, 3)], protector)
        protector.run(grid, 6, inject=hook)
        assert protector.total_metadata_repairs == 1
        protector.reset()
        assert protector.total_metadata_repairs == 0


class TestOfflineSerial:
    def test_corrupted_checkpoint_checksum_causes_no_rollback(self, rng):
        grid = _make_grid(rng)
        clean = grid.copy()
        OfflineABFT.for_grid(clean, period=4, epsilon=1e-5).run(clean, 16)

        protector = OfflineABFT.for_grid(grid, period=4, epsilon=1e-5)
        hook = ChecksumInjector([_checksum_plan(protector, 6)], protector)
        run = protector.run(grid, 16, inject=hook)

        assert hook.fired_count == 1
        assert protector.total_metadata_repairs >= 1
        assert run.total_rollbacks == 0
        assert run.total_detected == 0
        np.testing.assert_array_equal(grid.u, clean.u)

    def test_self_check_has_teeth(self, rng):
        """Disabled, the corruption triggers a pointless rollback."""
        grid = _make_grid(rng)
        protector = OfflineABFT.for_grid(
            grid, period=4, epsilon=1e-5, metadata_self_check=False
        )
        hook = ChecksumInjector([_checksum_plan(protector, 6)], protector)
        run = protector.run(grid, 16, inject=hook)
        assert protector.total_metadata_repairs == 0
        assert run.total_detected >= 1
        assert run.total_rollbacks >= 1

    def test_combined_domain_and_checksum_faults(self, rng):
        """A real fault is still handled while metadata is under attack."""
        grid = _make_grid(rng)
        protector = OfflineABFT.for_grid(grid, period=4, epsilon=1e-5)
        plans = [
            FaultPlan(iteration=6, index=(7, 7), bit=27),
            _checksum_plan(protector, 7),
        ]
        run = protector.run(grid, 16, inject=make_injector(plans, protector))
        assert run.total_detected >= 1  # the genuine domain fault
        assert protector.total_metadata_repairs >= 1


class TestDistributed:
    def _runners(self, rng, **abft_kwargs):
        grid = _make_grid(rng)
        clean = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5
        )
        clean.run(12)
        runner = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5, **abft_kwargs
        )
        return clean, runner

    def _rank_checksum_plans(self, runner, victim=1, iteration=5):
        plans = [[] for _ in runner.ranks]
        protector = runner.ranks[victim].protector
        cs_len = runner.ranks[victim].shape[1 - protector.verify_axis]
        plans[victim] = [
            _checksum_plan(protector, iteration, index=(cs_len // 2,))
        ]
        return plans

    def test_rank_checksum_corruption_repairs_without_miscorrection(self, rng):
        clean, runner = self._runners(rng)
        inject = DistributedFaultInjector(
            runner, self._rank_checksum_plans(runner)
        )
        runner.run(12, inject=inject)
        assert inject.fired_count == 1
        victim = runner.ranks[1].protector
        assert victim.total_metadata_repairs == 1
        assert runner.total_detected() == 0
        assert runner.total_corrected() == 0
        np.testing.assert_array_equal(runner.gather(), clean.gather())

    def test_self_check_has_teeth_distributed(self, rng):
        clean, runner = self._runners(rng, metadata_self_check=False)
        inject = DistributedFaultInjector(
            runner, self._rank_checksum_plans(runner)
        )
        runner.run(12, inject=inject)
        assert runner.ranks[1].protector.total_metadata_repairs == 0
        assert runner.total_detected() >= 1  # bogus detection

    def test_unprotected_rank_rejects_checksum_plans(self, rng):
        grid = _make_grid(rng)
        runner = DistributedStencilRunner(grid, n_ranks=2, protect=False)
        plans = [[], [FaultPlan(
            iteration=2, index=(0,), bit=HIGH_BIT, target="checksum"
        )]]
        inject = DistributedFaultInjector(runner, plans)
        with pytest.raises(ValueError, match="unprotected"):
            runner.run(4, inject=inject)
