"""Unit tests for per-layer helpers."""

import numpy as np
import pytest

from repro.core.checksums import column_checksum, row_checksum
from repro.core.layered import (
    group_locations_by_layer,
    layer_checksums,
    layer_view,
    split_checksum_by_layer,
)


def test_layer_view(rng):
    u = rng.random((5, 4, 3))
    np.testing.assert_array_equal(layer_view(u, 1), u[:, :, 1])


def test_layer_view_rejects_2d(rng):
    with pytest.raises(ValueError):
        layer_view(rng.random((4, 4)), 0)


def test_layer_checksums_match_2d_checksums(rng):
    u = rng.random((6, 5, 4))
    a, b = layer_checksums(u, 2)
    np.testing.assert_allclose(a, row_checksum(u[:, :, 2]))
    np.testing.assert_allclose(b, column_checksum(u[:, :, 2]))


def test_split_checksum_by_layer(rng):
    u = rng.random((6, 5, 3))
    layered = column_checksum(u)  # shape (5, 3)
    parts = split_checksum_by_layer(layered)
    assert len(parts) == 3
    for z, part in enumerate(parts):
        np.testing.assert_allclose(part, column_checksum(u[:, :, z]))


def test_split_checksum_rejects_1d(rng):
    with pytest.raises(ValueError):
        split_checksum_by_layer(rng.random(5))


def test_group_locations_by_layer():
    grouped = group_locations_by_layer([(1, 2, 0), (3, 4, 2), (5, 6, 0)])
    assert grouped == {0: [(1, 2), (5, 6)], 2: [(3, 4)]}
