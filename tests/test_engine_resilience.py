"""Campaign-engine resilience to worker failure (chaos testing).

A pool worker that dies or hangs mid-campaign must not lose work or
change results: the engine detects the broken/overdue wave, banks every
batch that did complete, restarts the pool and re-dispatches the losses.
Because each batch replays the same pre-drawn fault plans, the records
of a disturbed campaign are bitwise-identical to an undisturbed one —
``worker_restarts`` is the proof the failure actually struck.
"""

import pytest

from repro.experiments.common import make_hotspot_app, make_protector_factory
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.engine import CampaignEngine


def _record_key(record):
    return (
        record.run_index,
        record.arithmetic_error,
        record.errors_detected,
        record.errors_corrected,
        record.errors_uncorrected,
        record.rollbacks,
        record.recomputed_iterations,
        tuple((p.iteration, p.index, p.bit) for p in record.faults),
    )


@pytest.fixture(scope="module")
def small_campaign():
    app = make_hotspot_app((16, 16, 4))
    iterations = 8
    reference = app.reference_solution(iterations)
    factory = make_protector_factory("online-abft")
    config = CampaignConfig(iterations=iterations, repetitions=12, seed=9)
    legacy = run_campaign(app.build_grid, factory, config, reference=reference)
    return app, factory, config, reference, [
        _record_key(r) for r in legacy.records
    ]


class TestChaosConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="chaos"):
            CampaignEngine(chaos="worker-nap")

    def test_env_var_arms_chaos(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "worker-kill")
        assert CampaignEngine().chaos == "worker-kill"

    def test_off_overrides_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "worker-kill")
        assert CampaignEngine(chaos="off").chaos is None

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            CampaignEngine(worker_timeout=0)


class TestWorkerFailureResilience:
    def test_worker_kill_is_survived_bitwise(self, small_campaign):
        app, factory, config, reference, want = small_campaign
        with CampaignEngine(
            executor="process", workers=2, batch_size=3, chaos="worker-kill"
        ) as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            assert engine.worker_restarts >= 1
        assert [_record_key(r) for r in result.records] == want

    def test_worker_hang_is_timed_out_and_survived(self, small_campaign):
        app, factory, config, reference, want = small_campaign
        with CampaignEngine(
            executor="process", workers=2, batch_size=3,
            chaos="worker-hang", worker_timeout=10.0,
        ) as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            assert engine.worker_restarts >= 1
        assert [_record_key(r) for r in result.records] == want

    def test_serial_executor_ignores_chaos(self, small_campaign):
        app, factory, config, reference, want = small_campaign
        with CampaignEngine(
            executor="serial", batch_size=3, chaos="worker-kill"
        ) as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            assert engine.worker_restarts == 0
        assert [_record_key(r) for r in result.records] == want

    def test_dispatch_attempts_are_bounded(self, small_campaign):
        """A failure on every wave must end in an error, not a livelock."""
        app, factory, config, reference, _ = small_campaign
        with CampaignEngine(
            executor="process", workers=2, batch_size=3,
            chaos="worker-kill", max_dispatch_attempts=1,
        ) as engine:
            with pytest.raises(RuntimeError, match="dispatch attempts"):
                engine.run(app.build_grid, factory, config, reference=reference)

    def test_pool_is_reusable_after_a_chaos_run(self, small_campaign):
        """The restarted pool keeps serving later (clean) campaigns."""
        app, factory, config, reference, want = small_campaign
        with CampaignEngine(
            executor="process", workers=2, batch_size=3, chaos="worker-kill"
        ) as engine:
            engine.run(app.build_grid, factory, config, reference=reference)
            restarts = engine.worker_restarts
            assert restarts >= 1
            engine.chaos = None  # subsequent campaigns run undisturbed
            again = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            assert engine.worker_restarts == restarts
        assert [_record_key(r) for r in again.records] == want
