"""Unit tests for fault plans and the fault injector."""

import numpy as np
import pytest

from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    random_fault_plan,
    validate_plan_index,
)


class TestFaultPlan:
    def test_basic(self):
        plan = FaultPlan(iteration=3, index=(1, 2), bit=17)
        assert plan.iteration == 3
        assert plan.index == (1, 2)
        assert plan.bit == 17

    def test_coercion(self):
        plan = FaultPlan(iteration=np.int64(2), index=(np.int64(0), np.int64(1)), bit=np.int64(5))
        assert isinstance(plan.iteration, int)
        assert all(isinstance(i, int) for i in plan.index)

    def test_iteration_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(iteration=0, index=(0, 0), bit=3)

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(iteration=1, index=(0, 0), bit=-1)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultPlan(iteration=1, index=(0, 0), bit=3, target="cache")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultPlan(iteration=1, index=(0,), bit=3, target="payload",
                      action="scramble")

    def test_defaults_are_the_legacy_domain_flip(self):
        plan = FaultPlan(iteration=1, index=(0, 0), bit=3)
        assert plan.target == "domain"
        assert plan.action == "corrupt"
        assert (plan.axis, plan.side) == (0, 0)


class TestValidatePlanIndex:
    def test_in_range_passes(self):
        validate_plan_index(FaultPlan(iteration=1, index=(7, 5), bit=0), (8, 6))

    def test_out_of_range_names_axis_and_extent(self):
        plan = FaultPlan(iteration=4, index=(3, 6), bit=0)
        with pytest.raises(ValueError) as exc:
            validate_plan_index(plan, (8, 6))
        msg = str(exc.value)
        assert "iteration=4" in msg
        assert "axis 1" in msg
        assert "[0, 6)" in msg

    def test_dimension_mismatch_keeps_legacy_phrasing(self):
        plan = FaultPlan(iteration=1, index=(1, 1, 1), bit=0)
        with pytest.raises(ValueError, match="dimensionality"):
            validate_plan_index(plan, (8, 6))

    def test_injector_validates_against_grid_shape(self, small_grid_2d):
        shape = small_grid_2d.shape
        bad = FaultPlan(iteration=1, index=(shape[0], 0), bit=3)
        injector = FaultInjector([bad])
        small_grid_2d.step()
        with pytest.raises(ValueError, match="out of range"):
            injector(small_grid_2d, 1)

    def test_injector_refuses_non_domain_plans(self, small_grid_2d):
        plan = FaultPlan(iteration=1, index=(0,), bit=3, target="checksum")
        injector = FaultInjector([plan])
        small_grid_2d.step()
        with pytest.raises(ValueError, match="make_injector"):
            injector(small_grid_2d, 1)


class TestRandomFaultPlan:
    def test_within_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            plan = random_fault_plan(rng, (8, 6, 4), iterations=20, dtype=np.float32)
            assert 1 <= plan.iteration <= 20
            assert 0 <= plan.index[0] < 8
            assert 0 <= plan.index[1] < 6
            assert 0 <= plan.index[2] < 4
            assert 0 <= plan.bit < 32

    def test_pinned_bit(self):
        rng = np.random.default_rng(1)
        plan = random_fault_plan(rng, (4, 4), iterations=10, bit=29)
        assert plan.bit == 29

    def test_float64_bit_range(self):
        rng = np.random.default_rng(2)
        bits = {
            random_fault_plan(rng, (4, 4), 5, dtype=np.float64).bit for _ in range(200)
        }
        assert max(bits) > 31  # draws from the full 64-bit range

    def test_reproducible_with_same_seed(self):
        a = random_fault_plan(np.random.default_rng(7), (10, 10), 50)
        b = random_fault_plan(np.random.default_rng(7), (10, 10), 50)
        assert a == b

    def test_requires_iterations(self):
        with pytest.raises(ValueError):
            random_fault_plan(np.random.default_rng(0), (4, 4), 0)


class TestFaultInjector:
    def test_fires_exactly_once_at_target_iteration(self, small_grid_2d):
        plan = FaultPlan(iteration=3, index=(4, 4), bit=30)
        injector = FaultInjector([plan])
        for _ in range(5):
            before = small_grid_2d.u[4, 4]
            small_grid_2d.step()
            injector(small_grid_2d, small_grid_2d.iteration)
        assert injector.fired_count == 1
        assert injector.all_fired
        assert len(injector.injections) == 1
        fired_plan, old, new = injector.injections[0]
        assert fired_plan is plan
        assert old != new

    def test_single_plan_can_be_passed_directly(self, small_grid_2d):
        injector = FaultInjector(FaultPlan(iteration=1, index=(0, 0), bit=30))
        small_grid_2d.step()
        injector(small_grid_2d, 1)
        assert injector.all_fired

    def test_does_not_fire_on_other_iterations(self, small_grid_2d):
        injector = FaultInjector([FaultPlan(iteration=99, index=(0, 0), bit=3)])
        small_grid_2d.step()
        injector(small_grid_2d, small_grid_2d.iteration)
        assert injector.fired_count == 0
        assert not injector.all_fired

    def test_does_not_refire_on_recomputation(self, small_grid_2d):
        # Rollback recovery replays iterations; a transient fault must not
        # strike again.
        injector = FaultInjector([FaultPlan(iteration=2, index=(1, 1), bit=27)])
        small_grid_2d.step()
        small_grid_2d.step()
        injector(small_grid_2d, 2)
        value_after_first = small_grid_2d.u[1, 1]
        injector(small_grid_2d, 2)  # replay of iteration 2
        assert small_grid_2d.u[1, 1] == value_after_first
        assert injector.fired_count == 1

    def test_dimension_mismatch_rejected(self, small_grid_2d):
        injector = FaultInjector([FaultPlan(iteration=1, index=(1, 1, 1), bit=3)])
        small_grid_2d.step()
        with pytest.raises(ValueError, match="dimensionality"):
            injector(small_grid_2d, 1)

    def test_reset_rearms_plans(self, small_grid_2d):
        injector = FaultInjector([FaultPlan(iteration=1, index=(2, 2), bit=31)])
        small_grid_2d.step()
        injector(small_grid_2d, 1)
        assert injector.all_fired
        injector.reset()
        assert injector.fired_count == 0
        injector(small_grid_2d, 1)
        assert injector.fired_count == 1

    def test_single_random_factory(self, small_grid_2d):
        rng = np.random.default_rng(5)
        injector = FaultInjector.single_random(rng, small_grid_2d.shape, 10)
        assert len(injector.plans) == 1
        assert 1 <= injector.plans[0].iteration <= 10

    def test_empty_injector_is_trivially_all_fired(self):
        assert FaultInjector([]).all_fired
