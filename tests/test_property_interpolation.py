"""Property-based tests (hypothesis) for the core ABFT invariants.

The key theorem of the paper — the interpolated checksum equals the
directly computed checksum of the next step — must hold for *arbitrary*
stencils, weights, boundary conditions and domain contents. Hypothesis
generates those arbitrary instances.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksums import checksum
from repro.core.correction import correct_errors, match_detections
from repro.core.detection import detect_errors
from repro.core.interpolation import (
    extract_delta_strips,
    interpolate_checksum,
    interpolate_checksum_reduced,
)
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import pad_array
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep


# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------

def boundary_conditions():
    return st.sampled_from(
        [
            BoundaryCondition.clamp(),
            BoundaryCondition.periodic(),
            BoundaryCondition.zero(),
            BoundaryCondition.constant(1.75),
        ]
    )


@st.composite
def stencil_specs_2d(draw, max_radius=2):
    """Arbitrary 2D stencils: random offsets within the radius, random weights."""
    radius = draw(st.integers(1, max_radius))
    offsets = st.tuples(
        st.integers(-radius, radius), st.integers(-radius, radius)
    )
    points = draw(
        st.dictionaries(
            offsets,
            st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=7,
        )
    )
    return StencilSpec.from_dict(points)


@st.composite
def domains_2d(draw, min_side=3, max_side=12):
    nx = draw(st.integers(min_side, max_side))
    ny = draw(st.integers(min_side, max_side))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(-10.0, 10.0, size=(nx, ny))


# --------------------------------------------------------------------------
# properties
# --------------------------------------------------------------------------

@given(domain=domains_2d(), spec=stencil_specs_2d(), bc=boundary_conditions(),
       axis=st.sampled_from([0, 1]))
@settings(max_examples=60)
def test_interpolated_checksum_equals_direct_checksum(domain, spec, bc, axis):
    """Theorem 1 holds for arbitrary stencils, domains and boundaries."""
    bspec = BoundarySpec.uniform(bc, 2)
    new_domain = sweep(domain, spec, bspec)
    predicted = interpolate_checksum(checksum(domain, axis), domain, spec, bspec, axis)
    direct = checksum(new_domain, axis)
    np.testing.assert_allclose(predicted, direct, rtol=1e-9, atol=1e-9)


@given(domain=domains_2d(), spec=stencil_specs_2d(max_radius=1),
       bc=boundary_conditions(), axis=st.sampled_from([0, 1]))
@settings(max_examples=40)
def test_strip_based_interpolation_equals_padded_interpolation(domain, spec, bc, axis):
    """The offline (strip-replay) path agrees with the exact online path."""
    bspec = BoundarySpec.uniform(bc, 2)
    new_domain = sweep(domain, spec, bspec)
    padded = pad_array(domain, spec.radius(), bspec)
    strips = extract_delta_strips(padded, spec, spec.radius(), domain.shape, axis)
    predicted = interpolate_checksum_reduced(
        checksum(domain, axis), spec, bspec, axis, domain.shape[axis], deltas=strips
    )
    np.testing.assert_allclose(predicted, checksum(new_domain, axis),
                               rtol=1e-9, atol=1e-9)


@given(domain=domains_2d(min_side=4), spec=stencil_specs_2d(max_radius=1),
       bc=boundary_conditions(),
       corruption=st.floats(1.0, 1e6, allow_nan=False),
       seed=st.integers(0, 2**16))
@settings(max_examples=40)
def test_single_corruption_always_detected_and_localised(
    domain, spec, bc, corruption, seed
):
    """Any single additive corruption above the threshold is detected at the
    exact location and corrected back to the true value."""
    bspec = BoundarySpec.uniform(bc, 2)
    rng = np.random.default_rng(seed)
    new_domain = sweep(domain, spec, bspec)
    truth = new_domain.copy()

    x = int(rng.integers(0, domain.shape[0]))
    y = int(rng.integers(0, domain.shape[1]))
    new_domain[x, y] += corruption

    a_interp = interpolate_checksum(checksum(domain, 1), domain, spec, bspec, 1)
    b_interp = interpolate_checksum(checksum(domain, 0), domain, spec, bspec, 0)
    a_comp = checksum(new_domain, 1)
    b_comp = checksum(new_domain, 0)
    det_a = detect_errors(a_comp, a_interp, 1e-9)
    det_b = detect_errors(b_comp, b_interp, 1e-9)

    assert det_a.detected and det_b.detected
    locations, unresolved = match_detections(
        det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
    )
    assert unresolved == 0
    assert locations == [(x, y)]

    correct_errors(new_domain, locations, a_comp, a_interp, b_comp, b_interp)
    np.testing.assert_allclose(new_domain, truth, rtol=1e-6, atol=1e-6)


@given(domain=domains_2d(), spec=stencil_specs_2d(), bc=boundary_conditions(),
       axis=st.sampled_from([0, 1]))
@settings(max_examples=40)
def test_clean_step_never_flags_errors_in_float64(domain, spec, bc, axis):
    """No false positives: a clean sweep passes detection at a tight threshold."""
    bspec = BoundarySpec.uniform(bc, 2)
    new_domain = sweep(domain, spec, bspec)
    predicted = interpolate_checksum(checksum(domain, axis), domain, spec, bspec, axis)
    direct = checksum(new_domain, axis)
    result = detect_errors(direct, predicted, 1e-7)
    assert not result.detected
