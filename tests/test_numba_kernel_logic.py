"""Interpreted validation of the numba backend's kernel *logic*.

The numba backend's generated kernels only JIT-compile where ``numba``
is installed (the JIT job of the CI matrix), which would leave their
emitted index arithmetic, boundary corner ownership and per-point
checksum accumulation untested everywhere else.  This module closes
that gap: when numba is absent, it installs a stub ``numba`` module
whose ``njit`` is an identity decorator and whose ``prange`` is
``range``, reloads ``repro.backends.numba_backend`` against it and
executes the **generated source** as plain Python over NumPy arrays
(the backend is handed a ``jit=False`` kernel compiler writing to a
private cache directory).  Everything except compilation itself —
ghost-refresh slab semantics, offset indexing, accumulation order and
dtype handling — is exercised bit for bit.  The compiler pipeline
itself (plans, emitted source, cache behaviour, random-layout
bit-identity) is covered by ``tests/test_codegen.py``, which runs
under real numba too.

When the real numba *is* installed these tests are skipped: the main
suite (``tests/test_backends.py`` with the backend registered) already
runs the compiled kernels directly.

The registry is never touched — the backend instance under test is
constructed from the reloaded module — and the module is reloaded once
more on teardown so the rest of the suite sees the genuine
``NUMBA_AVAILABLE`` state.
"""

import importlib
import importlib.machinery
import sys
import types

import numpy as np
import pytest

from conftest import all_boundary_conditions

from repro.backends import get_backend
from repro.backends.numba_backend import NUMBA_AVAILABLE
from repro.core.checksums import checksum
from repro.stencil import kernels
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.shift import (
    interior_view,
    pad_array,
    padded_shape,
    refresh_ghosts,
)
from repro.stencil.spec import StencilSpec

pytestmark = pytest.mark.skipif(
    NUMBA_AVAILABLE,
    reason="real numba installed: the compiled kernels are tested by the "
    "main suite with the backend registered",
)

SHAPE_2D = (24, 18)
SHAPE_3D = (12, 10, 4)


def _make_stub_numba() -> types.ModuleType:
    stub = types.ModuleType("numba")
    stub.__spec__ = importlib.machinery.ModuleSpec("numba", loader=None)

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    stub.njit = njit
    stub.prange = range
    return stub


@pytest.fixture(scope="module")
def interpreted_backend(tmp_path_factory):
    """A ``NumbaBackend`` whose generated kernels run as plain Python."""
    import repro.backends.numba_backend as mod
    from repro.backends.codegen import KernelCompiler

    sys.modules["numba"] = _make_stub_numba()
    try:
        mod = importlib.reload(mod)
        assert mod.NUMBA_AVAILABLE  # the stub satisfies the import gate
        compiler = KernelCompiler(
            cache_dir=tmp_path_factory.mktemp("kernels"), jit=False
        )
        yield mod.NumbaBackend(compiler=compiler)
    finally:
        sys.modules.pop("numba", None)
        importlib.reload(mod)  # restore the genuine gate state


def _poisoned_pair(u, radius):
    """(src, dst) padded pair, halos poisoned so a skipped refresh shows."""
    shape = padded_shape(u.shape, radius)
    src = np.full(shape, np.nan, dtype=u.dtype)
    interior_view(src, radius)[...] = u
    dst = np.full(shape, np.nan, dtype=u.dtype)
    return src, dst


def _domain(rng, shape):
    return (rng.random(shape) * 100.0).astype(np.float32)


@pytest.mark.parametrize(
    "spec,shape",
    [
        (kernels.nine_point_smoothing(), SHAPE_2D),
        (kernels.asymmetric_advection_2d(), SHAPE_2D),
        (kernels.twenty_seven_point_3d(), SHAPE_3D),
        (kernels.asymmetric_advection_3d(), SHAPE_3D),
    ],
    ids=["9pt-2d", "advect-2d", "27pt-3d", "advect-3d"],
)
@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
def test_sweep_and_checksums_match_reference(
    interpreted_backend, rng, spec, shape, bc
):
    be = interpreted_backend
    ref = get_backend("numpy")
    u = _domain(rng, shape)
    const = (rng.random(shape) * 0.1).astype(np.float32)
    radius = spec.radius()
    padded = pad_array(u, radius, bc)
    expected = ref.sweep_padded(padded, spec, radius, shape, constant=const)
    new, cs = be.sweep_with_checksums(
        padded, spec, radius, shape, (0, 1), constant=const,
        checksum_dtype=np.float64,
    )
    # The generated sweep accumulates in the reference's exact order
    # (constant first, then points lexicographically, pre-cast weights),
    # so the interior is bit-identical — not merely within tolerance.
    np.testing.assert_array_equal(new, expected)
    for axis in (0, 1):
        posthoc = checksum(new, axis, dtype=np.float64)
        cscale = np.maximum(np.abs(posthoc), 1.0)
        assert float(np.max(np.abs(cs[axis] - posthoc) / cscale)) < 1e-10


@pytest.mark.parametrize(
    "spec,shape,boundary",
    [
        (kernels.nine_point_smoothing(), SHAPE_2D, BoundaryCondition.clamp()),
        (kernels.nine_point_smoothing(), SHAPE_2D, BoundaryCondition.periodic()),
        (
            kernels.nine_point_smoothing(),
            SHAPE_2D,
            (BoundaryCondition.clamp(), BoundaryCondition.constant(2.5)),
        ),
        (
            kernels.nine_point_smoothing(),
            SHAPE_2D,
            (BoundaryCondition.constant(1.5), BoundaryCondition.constant(-3.0)),
        ),
        (
            kernels.nine_point_smoothing(),
            SHAPE_2D,
            (BoundaryCondition.zero(), BoundaryCondition.periodic()),
        ),
        (kernels.twenty_seven_point_3d(), SHAPE_3D, BoundaryCondition.periodic()),
        (
            kernels.twenty_seven_point_3d(),
            SHAPE_3D,
            (
                BoundaryCondition.clamp(),
                BoundaryCondition.periodic(),
                BoundaryCondition.zero(),
            ),
        ),
        (
            kernels.twenty_seven_point_3d(),
            SHAPE_3D,
            (
                BoundaryCondition.constant(4.0),
                BoundaryCondition.clamp(),
                BoundaryCondition.constant(-1.0),
            ),
        ),
    ],
    ids=[
        "2d-clamp", "2d-periodic", "2d-clamp+const", "2d-const+const",
        "2d-zero+periodic", "3d-periodic", "3d-mixed", "3d-const-mixed",
    ],
)
def test_fused_refresh_bit_identical(
    interpreted_backend, rng, spec, shape, boundary
):
    """The compiled refresh inside ``step_into`` must leave the source
    halo (corners included — they are owned by the highest axis) exactly
    as ``refresh_ghosts`` does, and the swept result must match the
    refresh-then-sweep path bit for bit."""
    be = interpreted_backend
    u = _domain(rng, shape)
    radius = spec.radius()
    src_ref, dst_ref = _poisoned_pair(u, radius)
    refresh_ghosts(src_ref, radius, boundary)
    expected = be.sweep_into(src_ref, dst_ref, spec, radius, shape)
    src, dst = _poisoned_pair(u, radius)
    result = be.step_into(src, dst, spec, radius, shape, boundary)
    np.testing.assert_array_equal(result, expected)
    np.testing.assert_array_equal(src, src_ref)


def test_degenerate_periodic_compiled(interpreted_backend, rng):
    """Periodic ghosts wider than the interior — formerly declined by the
    hand-written kernels — lower to the modular-tiling index mapping and
    run the compiled fused step, bit-identical to the reference."""
    be = interpreted_backend
    wide = StencilSpec.from_dict(
        {(-2, 0): 0.2, (2, 0): 0.2, (0, -1): 0.3, (0, 1): 0.3}
    )
    shape = (1, 6)
    bc = BoundaryCondition.periodic()
    assert be.supports_fused_step(wide, bc, wide.radius(), shape)
    u = _domain(rng, shape)
    expected = get_backend("numpy").sweep_padded(
        pad_array(u, wide.radius(), bc), wide, wide.radius(), shape
    )
    src, dst = _poisoned_pair(u, wide.radius())
    result = be.step_into(src, dst, wide, wide.radius(), shape, bc)
    np.testing.assert_array_equal(result, expected)


def test_external_axis_orderings_compiled(interpreted_backend, rng):
    """External (distributed) axes *after* refreshed axes — the other
    ordering the hand-written kernels declined — also run the compiled
    step: ghost slabs along axis 1 are left untouched (ingested halo
    data) while axis 0 refreshes over their full extent."""
    be = interpreted_backend
    spec = kernels.nine_point_smoothing()
    shape = SHAPE_2D
    radius = spec.radius()
    bc = BoundaryCondition.clamp()
    assert be.supports_fused_step(spec, bc, radius, shape)
    u = _domain(rng, shape)
    src_ref = pad_array(u, radius, bc)
    src = src_ref.copy()
    refresh_ghosts(src_ref, radius, bc, axes=(0,))
    dst_ref = np.full_like(src_ref, np.nan)
    expected = be.sweep_into(src_ref, dst_ref, spec, radius, shape)
    dst = np.full_like(src, np.nan)
    result = be.step_into(
        src, dst, spec, radius, shape, bc, refresh_axes=(0,)
    )
    np.testing.assert_array_equal(result, expected)
    np.testing.assert_array_equal(src, src_ref)


def test_warmup_exercises_every_kernel_family(interpreted_backend):
    be = interpreted_backend
    be.warmup(kernels.five_point_diffusion(0.2), BoundaryCondition.clamp())
    be.warmup(
        kernels.seven_point_diffusion_3d(0.1), BoundaryCondition.periodic()
    )


@pytest.mark.parametrize(
    "spec,shape,boundary",
    [
        (
            kernels.nine_point_smoothing(),
            SHAPE_2D,
            (BoundaryCondition.clamp(), BoundaryCondition.periodic()),
        ),
        (
            kernels.twenty_seven_point_3d(),
            SHAPE_3D,
            (
                BoundaryCondition.periodic(),
                BoundaryCondition.constant(2.5),
                BoundaryCondition.zero(),
            ),
        ),
    ],
    ids=["2d-clamp+periodic", "3d-mixed"],
)
@pytest.mark.parametrize("with_cs", [False, True], ids=["plain", "checksums"])
def test_batched_step_matches_per_slot_steps(
    interpreted_backend, rng, spec, shape, boundary, with_cs
):
    """The generated ``bstep``/``bstep_cs`` kernels, run as plain Python,
    must reproduce each slot of the batch exactly as the single-run
    generated ``step``/``step_cs`` does — interior, refreshed halo and
    per-run checksum columns all bit-identical."""
    be = interpreted_backend
    radius = spec.radius()
    const = (rng.random(shape) * 0.1).astype(np.float32)
    batch = 3
    slots = [_domain(rng, shape) for _ in range(batch)]
    singles = []
    for u in slots:
        src, _ = _poisoned_pair(u, radius)
        singles.append(src)
    bsrc = np.stack(singles, axis=-1)
    bdst = np.full(bsrc.shape, np.nan, dtype=np.float32)
    if with_cs:
        got, cs = be.batch_step_into_with_checksums(
            bsrc, bdst, spec, radius, shape, boundary, (0, 1),
            constant=const, checksum_dtype=np.float64,
        )
    else:
        got = be.batch_step_into(
            bsrc, bdst, spec, radius, shape, boundary, constant=const
        )
    for b, u in enumerate(slots):
        src, dst = _poisoned_pair(u, radius)
        if with_cs:
            want, want_cs = be.step_into_with_checksums(
                src, dst, spec, radius, shape, boundary, (0, 1),
                constant=const, checksum_dtype=np.float64,
            )
        else:
            want = be.step_into(
                src, dst, spec, radius, shape, boundary, constant=const
            )
        np.testing.assert_array_equal(got[..., b], want)
        np.testing.assert_array_equal(bsrc[..., b], src)
        if with_cs:
            for axis in (0, 1):
                np.testing.assert_array_equal(cs[axis][..., b], want_cs[axis])


def test_batched_aliasing_pair_falls_back_per_slot(interpreted_backend, rng):
    """An aliasing src/dst batch takes the loop-over-slots base path (each
    slot still a generated kernel), never corrupting the accumulation."""
    be = interpreted_backend
    spec = kernels.nine_point_smoothing()
    radius = spec.radius()
    u = _domain(rng, SHAPE_2D)
    src, _ = _poisoned_pair(u, radius)
    bsrc = np.stack([src, src.copy()], axis=-1)
    want_src = bsrc.copy()
    want = be.batch_step_into(
        bsrc, np.full(bsrc.shape, np.nan, np.float32), spec, radius,
        SHAPE_2D, BoundaryCondition.clamp(),
    )
    got = be.batch_step_into(
        want_src, want_src, spec, radius, SHAPE_2D,
        BoundaryCondition.clamp(),
    )
    np.testing.assert_array_equal(got, want)


def test_batched_warmup_runs_interpreted(interpreted_backend):
    be = interpreted_backend
    be.warmup(
        kernels.five_point_diffusion(0.2), BoundaryCondition.clamp(),
        batch_width=3,
    )
