"""Unit tests for the protector interface, reports and NoProtection."""

import numpy as np
import pytest

from repro.core.protector import NoProtection, RunReport, StepReport
from repro.faults.injector import FaultInjector, FaultPlan
from repro.stencil.sweep2d import sweep2d


class TestStepReport:
    def test_defaults(self):
        report = StepReport(iteration=3)
        assert report.clean
        assert report.errors_detected == 0
        assert not report.rollback
        assert report.corrections == []

    def test_clean_flag(self):
        assert not StepReport(iteration=1, errors_detected=2).clean


class TestRunReport:
    def test_aggregation(self):
        run = RunReport()
        run.add(StepReport(iteration=1))
        run.add(StepReport(iteration=2, errors_detected=2, errors_corrected=1,
                           errors_uncorrected=1))
        run.add(StepReport(iteration=3, rollback=True, recomputed_iterations=8))
        assert run.iterations == 3
        assert run.total_detected == 2
        assert run.total_corrected == 1
        assert run.total_uncorrected == 1
        assert run.total_rollbacks == 1
        assert run.total_recomputed_iterations == 8
        assert len(run.detections) == 1

    def test_empty(self):
        run = RunReport()
        assert run.iterations == 0
        assert run.total_detected == 0


class TestNoProtection:
    def test_step_advances_grid_without_detection(self, small_grid_2d):
        expected = sweep2d(small_grid_2d.u.copy(), small_grid_2d.spec,
                           small_grid_2d.boundary)
        report = NoProtection().step(small_grid_2d)
        assert report.iteration == 1
        assert not report.detection_performed
        np.testing.assert_array_equal(small_grid_2d.u, expected)

    def test_run_returns_one_report_per_iteration(self, small_grid_2d):
        run = NoProtection().run(small_grid_2d, 7)
        assert run.iterations == 7
        assert small_grid_2d.iteration == 7

    def test_run_rejects_negative_iterations(self, small_grid_2d):
        with pytest.raises(ValueError):
            NoProtection().run(small_grid_2d, -1)

    def test_injected_fault_goes_unnoticed(self, small_grid_2d):
        injector = FaultInjector([FaultPlan(iteration=2, index=(3, 3), bit=30)])
        run = NoProtection().run(small_grid_2d, 5, inject=injector)
        assert injector.all_fired
        assert run.total_detected == 0

    def test_finalize_is_noop(self, small_grid_2d):
        assert NoProtection().finalize(small_grid_2d) is None

    def test_name(self):
        assert NoProtection().name == "no-abft"
