"""Unit and behavioural tests for the offline ABFT protector."""

import numpy as np
import pytest

from repro.checkpoint.store import InMemoryCheckpointStore
from repro.core.offline import OfflineABFT
from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import asymmetric_advection_2d, five_point_diffusion


def _make_grid(rng, shape=(22, 18), spec=None, bc=None):
    spec = spec if spec is not None else five_point_diffusion(0.2)
    bc = bc if bc is not None else BoundaryCondition.clamp()
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, spec, bc)


def _reference(grid, iterations):
    clone = grid.copy()
    clone.run(iterations)
    return clone.u.copy()


class TestOfflineConstruction:
    def test_for_grid(self, small_grid_2d):
        p = OfflineABFT.for_grid(small_grid_2d, period=8)
        assert p.period == 8
        assert p.shape == small_grid_2d.shape
        assert p.name == "offline-abft"

    def test_invalid_period(self, small_grid_2d):
        with pytest.raises(ValueError, match="period"):
            OfflineABFT.for_grid(small_grid_2d, period=0)

    def test_invalid_verify_axis(self, small_grid_2d):
        with pytest.raises(ValueError):
            OfflineABFT.for_grid(small_grid_2d, verify_axis=5)

    def test_grid_shape_mismatch(self, rng, small_grid_2d):
        other = _make_grid(rng, shape=(8, 8))
        p = OfflineABFT.for_grid(small_grid_2d)
        with pytest.raises(ValueError, match="grid shape"):
            p.step(other)


class TestOfflineErrorFree:
    def test_no_false_positives_and_identical_result(self, rng):
        grid = _make_grid(rng)
        clone = grid.copy()
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = p.run(grid, 33)  # not a multiple of the period: finalize() checks the tail
        NoProtection().run(clone, 33)
        assert run.total_detected == 0
        assert run.total_rollbacks == 0
        np.testing.assert_array_equal(grid.u, clone.u)

    def test_detection_only_every_period(self, rng):
        grid = _make_grid(rng)
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=4)
        run = p.run(grid, 12)
        performed = [s for s in run.steps if s.detection_performed]
        assert len(performed) == 3
        assert [s.iteration for s in performed] == [4, 8, 12]

    def test_finalize_checks_partial_window(self, rng):
        grid = _make_grid(rng)
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=10)
        run = p.run(grid, 7)
        performed = [s for s in run.steps if s.detection_performed]
        assert len(performed) == 1  # only the finalize() check

    def test_finalize_noop_when_window_empty(self, rng):
        grid = _make_grid(rng)
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=5)
        p.run(grid, 10)
        assert p.finalize(grid) is None

    def test_no_false_positives_asymmetric_stencil(self, rng):
        grid = _make_grid(rng, spec=asymmetric_advection_2d(0.3, 0.2))
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        assert p.run(grid, 24).total_detected == 0

    def test_simplified_interpolation_false_positives_for_asymmetric(self, rng):
        # Without the recorded strips (the paper's Eqs. 8-9) an asymmetric
        # stencil with clamp boundaries is mispredicted -> false positives.
        grid = _make_grid(rng, spec=asymmetric_advection_2d(0.3, 0.2))
        p = OfflineABFT.for_grid(
            grid, epsilon=1e-5, period=8, track_strips=False
        )
        run = p.run(grid, 16)
        assert run.total_detected > 0


class TestOfflineWithFault:
    def test_detects_and_erases_fault_via_rollback(self, rng):
        grid = _make_grid(rng)
        ref = _reference(grid, 32)
        injector = FaultInjector([FaultPlan(iteration=13, index=(9, 6), bit=27)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = p.run(grid, 32, inject=injector)
        assert injector.all_fired
        assert run.total_detected >= 1
        assert run.total_rollbacks >= 1
        # Rollback + recomputation erases the error completely.
        assert l2_error(ref, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_rollback_recomputes_exactly_one_window(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=5, index=(4, 4), bit=28)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = p.run(grid, 16, inject=injector)
        assert run.total_rollbacks == 1
        assert run.total_recomputed_iterations == 8

    def test_fault_in_final_partial_window(self, rng):
        grid = _make_grid(rng)
        ref = _reference(grid, 19)
        injector = FaultInjector([FaultPlan(iteration=18, index=(2, 2), bit=27)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = p.run(grid, 19, inject=injector)
        assert run.total_detected >= 1
        assert l2_error(ref, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_small_flip_below_threshold_goes_unnoticed(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=3, index=(1, 1), bit=1)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=4)
        run = p.run(grid, 8, inject=injector)
        assert run.total_detected == 0
        assert run.total_rollbacks == 0

    def test_checkpoint_store_reused_and_counted(self, rng):
        store = InMemoryCheckpointStore(max_checkpoints=2)
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=6, index=(3, 3), bit=27)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=4, store=store)
        p.run(grid, 12, inject=injector)
        assert store.saves >= 3
        assert store.restores == 1

    def test_persistent_fault_bounded_by_max_attempts(self, rng):
        # A hook that corrupts the same point on every iteration can never
        # be repaired by recomputation; the protector must give up after
        # max_recovery_attempts instead of livelocking.
        grid = _make_grid(rng)

        def persistent(g, iteration):
            g.u[5, 5] += 1e4

        p = OfflineABFT.for_grid(
            grid, epsilon=1e-5, period=4, max_recovery_attempts=2
        )
        run = p.run(grid, 4, inject=persistent)
        assert run.total_detected >= 1
        assert run.total_uncorrected >= 1
        assert p.total_rollbacks <= 2

    def test_3d_fault_erased(self, small_grid_3d):
        grid = small_grid_3d
        ref = _reference(grid, 16)
        injector = FaultInjector([FaultPlan(iteration=7, index=(5, 3, 1), bit=27)])
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = p.run(grid, 16, inject=injector)
        assert run.total_detected >= 1
        assert l2_error(ref, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_reset(self, rng):
        grid = _make_grid(rng)
        p = OfflineABFT.for_grid(grid, epsilon=1e-5, period=4)
        p.run(grid, 8, inject=FaultInjector([FaultPlan(iteration=2, index=(0, 0), bit=28)]))
        assert p.total_detections >= 1
        p.reset()
        assert p.total_detections == 0
        assert p.total_rollbacks == 0
        assert len(p.store) == 0
