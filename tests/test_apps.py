"""Unit tests for the stencil applications (HotSpot3D, Jacobi, heat, advection)."""

import numpy as np
import pytest

from repro.apps.advection import AdvectionConfig, build_advection_grid
from repro.apps.heat2d import Heat2DConfig, build_heat2d_grid
from repro.apps.hotspot3d import (
    MAX_PD,
    HotSpot3D,
    HotSpot3DConfig,
    hotspot3d_coefficients,
    hotspot3d_stencil,
)
from repro.apps.jacobi import JacobiConfig, build_jacobi_grid
from repro.stencil.grid import Grid2D, Grid3D


class TestHotSpot3DConfig:
    def test_defaults_are_paper_small_tile(self):
        config = HotSpot3DConfig()
        assert config.shape == (64, 64, 8)

    def test_paper_constructors(self):
        assert HotSpot3DConfig.paper_small().shape == (64, 64, 8)
        assert HotSpot3DConfig.paper_large().shape == (512, 512, 8)


class TestHotSpot3DCoefficients:
    def test_center_weight_balances_neighbours(self):
        config = HotSpot3DConfig(nx=32, ny=32, nz=4)
        c = hotspot3d_coefficients(config)
        assert c["cc"] == pytest.approx(
            1.0 - (2 * c["ce"] + 2 * c["cn"] + 3 * c["ct"])
        )

    def test_symmetric_pairs(self):
        c = hotspot3d_coefficients(HotSpot3DConfig(nx=16, ny=16, nz=4))
        assert c["ce"] == c["cw"]
        assert c["cn"] == c["cs"]
        assert c["ct"] == c["cb"]

    def test_all_neighbour_weights_positive_and_small(self):
        c = hotspot3d_coefficients(HotSpot3DConfig(nx=64, ny=64, nz=8))
        for key in ("ce", "cw", "cn", "cs", "ct", "cb"):
            assert 0.0 < c[key] < 1.0
        assert 0.0 < c["cc"] < 1.0

    def test_stencil_spec_matches_coefficients(self):
        config = HotSpot3DConfig(nx=16, ny=16, nz=4)
        c = hotspot3d_coefficients(config)
        spec = hotspot3d_stencil(config)
        assert spec.npoints == 7
        assert spec.weight_of((0, 0, 0)) == pytest.approx(c["cc"])
        assert spec.weight_of((1, 0, 0)) == pytest.approx(c["ce"])
        assert spec.weight_of((0, 0, 1)) == pytest.approx(c["ct"])
        assert spec.is_fully_symmetric()


class TestHotSpot3DApp:
    def test_build_grid_shape_and_dtype(self, hotspot_small):
        grid = hotspot_small.build_grid()
        assert isinstance(grid, Grid3D)
        assert grid.shape == (16, 16, 4)
        assert grid.dtype == np.float32
        assert grid.constant is not None

    def test_power_map_has_hotspots_above_background(self, hotspot_small):
        power = hotspot_small.power
        assert power.min() > 0.0
        assert power.max() > power.min() * 2.0  # hotspots clearly above background

    def test_grids_are_independent_and_identical(self, hotspot_small):
        g1 = hotspot_small.build_grid()
        g2 = hotspot_small.build_grid()
        np.testing.assert_array_equal(g1.u, g2.u)
        g1.step()
        assert g2.iteration == 0

    def test_same_seed_reproducible(self):
        a = HotSpot3D(HotSpot3DConfig(nx=8, ny=8, nz=2, seed=3))
        b = HotSpot3D(HotSpot3DConfig(nx=8, ny=8, nz=2, seed=3))
        np.testing.assert_array_equal(a.power, b.power)
        np.testing.assert_array_equal(a.initial_temperature, b.initial_temperature)

    def test_different_seed_differs(self):
        a = HotSpot3D(HotSpot3DConfig(nx=8, ny=8, nz=2, seed=3))
        b = HotSpot3D(HotSpot3DConfig(nx=8, ny=8, nz=2, seed=4))
        assert not np.array_equal(a.power, b.power)

    def test_temperatures_stay_physical_over_time(self, hotspot_small):
        config = hotspot_small.config
        grid = hotspot_small.build_grid()
        grid.run(200)
        # Temperatures stay finite and bounded between ambient and the
        # hotspot equilibrium rise (plus a small margin for the initial noise).
        assert np.isfinite(grid.u).all()
        assert grid.u.min() > config.amb_temp
        assert grid.u.max() < config.amb_temp + config.hotspot_rise + 10.0

    def test_reference_solution_matches_manual_run(self, hotspot_small):
        ref = hotspot_small.reference_solution(10)
        grid = hotspot_small.build_grid()
        grid.run(10)
        np.testing.assert_array_equal(ref, grid.u)

    def test_boundary_is_clamp(self, hotspot_small):
        assert hotspot_small.boundary_condition.is_clamp


class TestJacobi:
    def test_build(self):
        grid = build_jacobi_grid(JacobiConfig(nx=32, ny=24))
        assert isinstance(grid, Grid2D)
        assert grid.shape == (32, 24)
        assert grid.boundary.axis(0).is_constant

    def test_converges_towards_boundary_value(self):
        config = JacobiConfig(nx=16, ny=16, boundary_value=100.0, initial_value=0.0,
                              noise=0.0)
        grid = build_jacobi_grid(config)
        initial_mean = float(grid.u.mean())
        grid.run(200)
        # Laplace relaxation pulls the interior towards the boundary value.
        assert float(grid.u.mean()) > initial_mean + 50.0
        assert grid.u.max() <= 100.0 + 1e-3

    def test_default_config(self):
        grid = build_jacobi_grid()
        assert grid.shape == (128, 128)


class TestHeat2D:
    def test_build(self):
        grid = build_heat2d_grid(Heat2DConfig(nx=24, ny=20, sources=2))
        assert grid.shape == (24, 20)
        assert grid.constant is not None
        assert np.count_nonzero(grid.constant) == 2

    def test_sources_heat_the_domain(self):
        config = Heat2DConfig(nx=20, ny=20, sources=3, source_strength=2.0)
        grid = build_heat2d_grid(config)
        total_before = float(grid.u.sum())
        grid.run(30)
        assert float(grid.u.sum()) > total_before

    def test_reproducible(self):
        a = build_heat2d_grid(Heat2DConfig(nx=12, ny=12, seed=5))
        b = build_heat2d_grid(Heat2DConfig(nx=12, ny=12, seed=5))
        np.testing.assert_array_equal(a.u, b.u)


class TestAdvection:
    def test_build(self):
        grid = build_advection_grid(AdvectionConfig(nx=32, ny=32))
        assert grid.shape == (32, 32)
        assert not grid.spec.is_fully_symmetric()

    def test_unstable_courant_rejected(self):
        with pytest.raises(ValueError, match="upwind stability"):
            build_advection_grid(AdvectionConfig(cx=0.6, cy=0.5))

    def test_unknown_boundary_rejected(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            build_advection_grid(AdvectionConfig(boundary="reflect"))

    @pytest.mark.parametrize("boundary", ["clamp", "periodic", "zero"])
    def test_boundary_options(self, boundary):
        grid = build_advection_grid(AdvectionConfig(nx=16, ny=16, boundary=boundary))
        assert grid.boundary.axis(0).kind == boundary

    def test_mass_transported_not_amplified(self):
        grid = build_advection_grid(AdvectionConfig(nx=24, ny=24, boundary="periodic"))
        total_before = float(grid.u.sum())
        grid.run(20)
        assert float(grid.u.sum()) == pytest.approx(total_before, rel=1e-4)
