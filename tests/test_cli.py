"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure8", "figure9", "figure10", "figure11",
                        "sensitivity", "all"):
            args = parser.parse_args([command])
            assert args.command == command
            assert args.scale == "quick"

    def test_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "paper"])
        assert args.scale == "paper"
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--scale", "huge"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-abft" in capsys.readouterr().out


class TestMain:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Stencil iterations" in out

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "table1.txt"
        assert main(["table1", "--scale", "smoke", "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "Table 1" in target.read_text()

    def test_figure11_smoke(self, capsys):
        assert main(["figure11", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Period" in out

    def test_sensitivity_smoke(self, capsys):
        assert main(["sensitivity", "--scale", "smoke"]) == 0
        assert "Detection sensitivity" in capsys.readouterr().out

    def test_distributed_smoke(self, capsys):
        assert main(["distributed", "--ranks", "3", "--iters", "4",
                     "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "3 ranks, 4 iterations" in out
        assert "gather checksum" in out
        assert "halo traffic" in out
        assert out.count("rank ") == 3
        assert "detected 0, corrected 0" in out

    def test_distributed_no_protect(self, capsys):
        assert main(["distributed", "--ranks", "2", "--iters", "2",
                     "--size", "24", "--no-protect"]) == 0
        out = capsys.readouterr().out
        assert "unprotected" in out
        assert "totals" not in out

    def test_distributed_parser_defaults(self):
        args = build_parser().parse_args(["distributed"])
        assert args.ranks == 4
        assert args.iters == 50
        assert args.backend is None
        assert args.block_steps == 1
        assert args.boundary == "clamp"

    def test_distributed_blocked_periodic(self, capsys):
        assert main(["distributed", "--ranks", "3", "--iters", "6",
                     "--size", "32", "--no-protect",
                     "--boundary", "periodic", "--block-steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "temporal block : k=3" in out
        # 6 iterations in k=3 chunks: 2 exchanges x 3 ring interfaces x 2.
        assert "12 messages" in out

    def test_distributed_blocked_cap_reported(self, capsys):
        assert main(["distributed", "--ranks", "2", "--iters", "2",
                     "--size", "24", "--block-steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "capped to k=1" in out
        assert "OnlineABFT" in out


class TestKernelListing:
    """`repro backends --kernels` against a jit=False compiled backend."""

    @pytest.fixture
    def compiled_cli(self, tmp_path, monkeypatch):
        from repro import cli
        from repro.backends.codegen import KernelCompiler
        from repro.backends.numba_backend import NumbaBackend
        from repro.stencil.boundary import BoundaryCondition
        from repro.stencil.kernels import five_point_diffusion

        backend = NumbaBackend(
            compiler=KernelCompiler(cache_dir=tmp_path, jit=False)
        )
        backend.warmup(
            five_point_diffusion(0.2),
            boundary=BoundaryCondition.periodic(),
            radius=(3, 1),
            external_axes=(0,),
            block_steps=3,
        )
        monkeypatch.setattr(cli, "available_backends", lambda: ["numba"])
        monkeypatch.setattr(cli, "default_backend_name", lambda: "numba")
        monkeypatch.setattr(cli, "get_backend", lambda name=None: backend)
        monkeypatch.setattr(cli, "unavailable_backends", lambda: {})
        return backend

    def test_kernels_listing_shows_block_factor_and_ghosts(
        self, compiled_cli, capsys
    ):
        assert main(["backends", "--kernels"]) == 0
        out = capsys.readouterr().out
        assert "k=3" in out
        assert "step_k" in out
        assert "ghosts axis0:+3 (deep halo, k-step plan)" in out
        # Full cache-key identity, never truncated: every entry spells
        # out the complete spec signature (the digest is only a prefix).
        for e in compiled_cli.compiled_kernels():
            assert f"spec   {e['spec']}" in out
            assert len(e["spec"]) > len(e["digest"])

    def test_kernels_json_dump(self, compiled_cli, capsys):
        import json

        assert main(["backends", "--kernels", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        entries = payload["numba"]
        assert entries
        kinds = {(e["kind"], e["block_steps"]) for e in entries}
        assert ("step_k", 3) in kinds
        blocked = next(e for e in entries if e["kind"] == "step_k")
        assert blocked["ghost_growth"] == {"axis0": 3}
