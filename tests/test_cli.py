"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure8", "figure9", "figure10", "figure11",
                        "sensitivity", "all"):
            args = parser.parse_args([command])
            assert args.command == command
            assert args.scale == "quick"

    def test_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "paper"])
        assert args.scale == "paper"
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--scale", "huge"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-abft" in capsys.readouterr().out


class TestMain:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Stencil iterations" in out

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "table1.txt"
        assert main(["table1", "--scale", "smoke", "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()
        assert "Table 1" in target.read_text()

    def test_figure11_smoke(self, capsys):
        assert main(["figure11", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Period" in out

    def test_sensitivity_smoke(self, capsys):
        assert main(["sensitivity", "--scale", "smoke"]) == 0
        assert "Detection sensitivity" in capsys.readouterr().out

    def test_distributed_smoke(self, capsys):
        assert main(["distributed", "--ranks", "3", "--iters", "4",
                     "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "3 ranks, 4 iterations" in out
        assert "gather checksum" in out
        assert "halo traffic" in out
        assert out.count("rank ") == 3
        assert "detected 0, corrected 0" in out

    def test_distributed_no_protect(self, capsys):
        assert main(["distributed", "--ranks", "2", "--iters", "2",
                     "--size", "24", "--no-protect"]) == 0
        out = capsys.readouterr().out
        assert "unprotected" in out
        assert "totals" not in out

    def test_distributed_parser_defaults(self):
        args = build_parser().parse_args(["distributed"])
        assert args.ranks == 4
        assert args.iters == 50
        assert args.backend is None
