"""Unit tests for the checksum interpolation (Theorem 1).

The central invariant: for *any* stencil, boundary condition and
dimensionality, the checksum predicted from the step-t checksum equals
(in exact arithmetic) the checksum computed directly from the step-t+1
domain. These tests verify it in float64 where the two agree to
round-off, for every combination the paper's Theorem 1 covers —
including the asymmetric-weight cases where the α/β terms do not cancel.
"""

import numpy as np
import pytest

from conftest import all_boundary_conditions, stencil_library_2d, stencil_library_3d
from repro.core.checksums import checksum
from repro.core.interpolation import (
    extract_delta_strips,
    interpolate_checksum,
    interpolate_checksum_padded,
    interpolate_checksum_reduced,
    reduced_boundary,
)
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.kernels import asymmetric_advection_2d, jacobi4
from repro.stencil.shift import pad_array
from repro.stencil.sweep import sweep


@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
@pytest.mark.parametrize(
    "spec", stencil_library_2d(), ids=["jacobi4", "diffusion5", "smooth9", "advection"]
)
@pytest.mark.parametrize("axis", [0, 1], ids=["column_b", "row_a"])
def test_interpolation_matches_direct_checksum_2d(rng, bc, spec, axis):
    u = rng.random((12, 10))
    constant = rng.random((12, 10))
    bspec = BoundarySpec.uniform(bc, 2)
    u_new = sweep(u, spec, bspec, constant=constant)
    direct = checksum(u_new, axis)
    predicted = interpolate_checksum(
        checksum(u, axis), u, spec, bspec, axis, constant=constant
    )
    np.testing.assert_allclose(predicted, direct, rtol=1e-10)


@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
@pytest.mark.parametrize(
    "spec", stencil_library_3d(), ids=["diffusion7", "box27", "advection3d"]
)
@pytest.mark.parametrize("axis", [0, 1], ids=["column_b", "row_a"])
def test_interpolation_matches_direct_checksum_3d(rng, bc, spec, axis):
    u = rng.random((7, 6, 4))
    bspec = BoundarySpec.uniform(bc, 3)
    u_new = sweep(u, spec, bspec)
    direct = checksum(u_new, axis)
    predicted = interpolate_checksum(checksum(u, axis), u, spec, bspec, axis)
    np.testing.assert_allclose(predicted, direct, rtol=1e-10)


def test_interpolation_without_constant_term(rng):
    spec = jacobi4()
    u = rng.random((9, 9))
    bspec = BoundarySpec.clamp(2)
    u_new = sweep(u, spec, bspec)
    predicted = interpolate_checksum(checksum(u, 0), u, spec, bspec, 0)
    np.testing.assert_allclose(predicted, checksum(u_new, 0), rtol=1e-10)


def test_interpolation_shape_validation(rng):
    spec = jacobi4()
    u = rng.random((6, 6))
    padded = pad_array(u, spec.radius(), BoundarySpec.clamp(2))
    with pytest.raises(ValueError, match="cs_prev has shape"):
        interpolate_checksum_padded(np.zeros(5), padded, spec, spec.radius(), u.shape, 0)


def test_interpolation_invalid_axis(rng):
    spec = jacobi4()
    u = rng.random((6, 6))
    padded = pad_array(u, spec.radius(), BoundarySpec.clamp(2))
    with pytest.raises(ValueError, match="reduce_axis"):
        interpolate_checksum_padded(
            checksum(u, 0), padded, spec, spec.radius(), u.shape, 2
        )


def test_interpolation_dtype_promotion(rng):
    # float64 checksums over a float32 domain stay float64.
    spec = jacobi4()
    u = rng.random((8, 8)).astype(np.float32)
    bspec = BoundarySpec.clamp(2)
    cs64 = checksum(u, 0, dtype=np.float64)
    padded = pad_array(u, spec.radius(), bspec)
    predicted = interpolate_checksum_padded(
        cs64, padded, spec, spec.radius(), u.shape, 0
    )
    assert predicted.dtype == np.float64


class TestReducedInterpolation:
    """The checksum-only (offline) interpolation path."""

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("axis", [0, 1], ids=["column_b", "row_a"])
    def test_exact_with_strips(self, rng, bc, axis):
        spec = asymmetric_advection_2d(0.3, 0.2)
        u = rng.random((10, 8))
        bspec = BoundarySpec.uniform(bc, 2)
        u_new = sweep(u, spec, bspec)
        padded = pad_array(u, spec.radius(), bspec)
        strips = extract_delta_strips(padded, spec, spec.radius(), u.shape, axis)
        predicted = interpolate_checksum_reduced(
            checksum(u, axis), spec, bspec, axis, u.shape[axis], deltas=strips
        )
        np.testing.assert_allclose(predicted, checksum(u_new, axis), rtol=1e-10)

    def test_simplified_exact_for_symmetric_clamp(self, rng):
        # Eqs. (8)-(9): without strips the prediction is exact when the
        # stencil is mirror-symmetric along the reduced axis (clamp BC).
        spec = jacobi4()
        u = rng.random((10, 10))
        bspec = BoundarySpec.clamp(2)
        u_new = sweep(u, spec, bspec)
        predicted = interpolate_checksum_reduced(
            checksum(u, 0), spec, bspec, 0, u.shape[0], deltas=None
        )
        np.testing.assert_allclose(predicted, checksum(u_new, 0), rtol=1e-10)

    def test_simplified_exact_for_periodic(self, rng):
        spec = asymmetric_advection_2d(0.3, 0.2)
        u = rng.random((9, 9))
        bspec = BoundarySpec.periodic(2)
        u_new = sweep(u, spec, bspec)
        predicted = interpolate_checksum_reduced(
            checksum(u, 1), spec, bspec, 1, u.shape[1], deltas=None
        )
        np.testing.assert_allclose(predicted, checksum(u_new, 1), rtol=1e-10)

    def test_simplified_inexact_for_asymmetric_clamp(self, rng):
        # The paper's simplified form drops the α/β terms; for an
        # asymmetric stencil with clamp boundaries that is measurably wrong
        # — which is why the exact strip-based form exists.
        spec = asymmetric_advection_2d(0.3, 0.2)
        u = rng.random((10, 10)) + 1.0
        bspec = BoundarySpec.clamp(2)
        u_new = sweep(u, spec, bspec)
        predicted = interpolate_checksum_reduced(
            checksum(u, 0), spec, bspec, 0, u.shape[0], deltas=None
        )
        rel = np.abs(predicted / checksum(u_new, 0) - 1.0)
        assert rel.max() > 1e-5

    def test_strips_iterated_over_multiple_steps(self, rng):
        # Replaying the interpolation over a window of steps (the offline
        # detector's job) stays exact when strips are recorded per step.
        spec = asymmetric_advection_2d(0.25, 0.15)
        bspec = BoundarySpec.clamp(2)
        u = rng.random((9, 7))
        cs = checksum(u, 0)
        for _ in range(5):
            padded = pad_array(u, spec.radius(), bspec)
            strips = extract_delta_strips(padded, spec, spec.radius(), u.shape, 0)
            u = sweep(u, spec, bspec)
            cs = interpolate_checksum_reduced(
                cs, spec, bspec, 0, u.shape[0], deltas=strips
            )
        np.testing.assert_allclose(cs, checksum(u, 0), rtol=1e-9)

    def test_delta_strip_shape_validation(self, rng):
        spec = jacobi4()
        bspec = BoundarySpec.clamp(2)
        with pytest.raises(ValueError, match="delta strip"):
            interpolate_checksum_reduced(
                np.zeros(6), spec, bspec, 0, 6, deltas={1: np.zeros(3)}
            )

    def test_boundary_dimension_validation(self, rng):
        spec = jacobi4()
        with pytest.raises(ValueError, match="boundary has"):
            interpolate_checksum_reduced(
                np.zeros(6), spec, BoundarySpec.clamp(3), 0, 6
            )


class TestExtractDeltaStrips:
    def test_symmetric_stencil_offsets(self, rng):
        spec = jacobi4()
        u = rng.random((6, 6))
        padded = pad_array(u, spec.radius(), BoundarySpec.clamp(2))
        strips = extract_delta_strips(padded, spec, spec.radius(), u.shape, 0)
        assert set(strips) == {-1, 1}
        assert strips[1].shape == (6,)

    def test_no_strips_for_zero_offsets(self, rng):
        from repro.stencil.spec import StencilSpec

        spec = StencilSpec.from_dict({(0, 0): 1.0, (0, 1): 0.5})
        u = rng.random((5, 5))
        padded = pad_array(u, spec.radius(), BoundarySpec.clamp(2))
        strips = extract_delta_strips(padded, spec, spec.radius(), u.shape, 0)
        assert strips == {}


class TestReducedBoundary:
    def test_constant_scaled_by_reduction_length(self):
        bspec = BoundarySpec.uniform(BoundaryCondition.constant(2.0), 2)
        reduced = reduced_boundary(bspec, 0, 10)
        assert reduced.ndim == 1
        assert reduced.axis(0).is_constant
        assert reduced.axis(0).value == pytest.approx(20.0)

    def test_constant_zeroed_for_strips(self):
        bspec = BoundarySpec.uniform(BoundaryCondition.constant(2.0), 2)
        reduced = reduced_boundary(bspec, 0, 10, zero_constant=True)
        assert reduced.axis(0).is_zero

    def test_other_kinds_preserved(self):
        bspec = BoundarySpec(
            (BoundaryCondition.periodic(), BoundaryCondition.clamp())
        )
        reduced = reduced_boundary(bspec, 0, 4)
        assert reduced.axis(0).is_clamp
