"""Unit tests for the checksum-comparison detector (Theorem 2)."""

import numpy as np
import pytest

from repro.core.detection import DetectionResult, detect_errors, relative_discrepancy


class TestRelativeDiscrepancy:
    def test_identical_checksums(self):
        cs = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(relative_discrepancy(cs, cs), np.zeros(3))

    def test_relative_error_definition(self):
        computed = np.array([100.0, 200.0])
        interpolated = np.array([101.0, 200.0])
        rel = relative_discrepancy(computed, interpolated)
        assert rel[0] == pytest.approx(0.01)
        assert rel[1] == 0.0

    def test_zero_computed_falls_back_to_absolute(self):
        computed = np.array([0.0, 0.0])
        interpolated = np.array([0.0, 0.5])
        rel = relative_discrepancy(computed, interpolated)
        assert rel[0] == 0.0
        assert rel[1] == pytest.approx(0.5)

    def test_negative_checksums(self):
        computed = np.array([-100.0])
        interpolated = np.array([-110.0])
        assert relative_discrepancy(computed, interpolated)[0] == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            relative_discrepancy(np.zeros(3), np.zeros(4))

    def test_2d_checksums_supported(self):
        computed = np.ones((4, 3))
        interpolated = np.ones((4, 3))
        interpolated[2, 1] = 1.1
        rel = relative_discrepancy(computed, interpolated)
        assert rel[2, 1] == pytest.approx(0.1)
        assert rel.sum() == pytest.approx(0.1)


class TestDetectErrors:
    def test_no_error_detected_below_threshold(self):
        computed = np.array([10.0, 20.0, 30.0])
        interpolated = computed * (1.0 + 1e-7)
        result = detect_errors(computed, interpolated, 1e-5)
        assert not result.detected
        assert result.n_errors == 0
        assert bool(result) is False
        assert result.n_checked == 3
        assert result.max_relative_error == pytest.approx(1e-7, rel=1e-2)

    def test_single_error_detected_and_located(self):
        computed = np.array([10.0, 20.0, 30.0, 40.0])
        interpolated = computed.copy()
        computed[2] += 1.0  # corrupted entry
        result = detect_errors(computed, interpolated, 1e-5)
        assert result.detected
        assert result.n_errors == 1
        assert result.indices_as_tuples() == ((2,),)
        assert len(result) == 1

    def test_multiple_errors_detected(self):
        computed = np.array([10.0, 20.0, 30.0, 40.0])
        interpolated = computed.copy()
        computed[0] *= 1.5
        computed[3] *= 0.5
        result = detect_errors(computed, interpolated, 1e-5)
        assert result.n_errors == 2
        assert set(result.indices_as_tuples()) == {(0,), (3,)}

    def test_2d_layered_checksum_indices(self):
        computed = np.ones((5, 3)) * 100.0
        interpolated = computed.copy()
        computed[4, 2] += 10.0
        result = detect_errors(computed, interpolated, 1e-5)
        assert result.indices_as_tuples() == ((4, 2),)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            detect_errors(np.zeros(2), np.zeros(2), 0.0)

    def test_relative_errors_reported_for_flagged_entries(self):
        computed = np.array([100.0, 100.0])
        interpolated = np.array([100.0, 120.0])
        result = detect_errors(computed, interpolated, 1e-3)
        assert result.relative_errors.shape == (1,)
        assert result.relative_errors[0] == pytest.approx(0.2)

    def test_detection_threshold_boundary(self):
        # Exactly at the threshold is NOT flagged (strictly greater).
        computed = np.array([1.0])
        interpolated = np.array([1.0 + 1e-5])
        assert not detect_errors(computed, interpolated, 1e-5 + 1e-9).detected
        assert detect_errors(computed, interpolated, 0.9e-5).detected

    def test_result_dataclass_fields(self):
        result = DetectionResult(
            mismatch_indices=np.empty((0, 1), dtype=int),
            relative_errors=np.empty(0),
            max_relative_error=0.0,
            threshold=1e-5,
            n_checked=10,
        )
        assert result.threshold == 1e-5
        assert not result.detected
