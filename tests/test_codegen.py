"""The stencil kernel compiler: plans, emitted source, cache, identity.

These tests run everywhere — with numba installed the backend under
test JIT-compiles the generated source, without it the same source
executes as plain Python (``KernelCompiler(jit=False)``), so the
emitted index arithmetic is pinned down independently of compilation.

The centrepiece is a hypothesis property test: random stencil specs
(radius ≤ 3, 2D and 3D), random boundary-kind mixes, random external
(distributed) axis subsets and degenerate periodic halos (ghost wider
than the interior) — for every drawn layout the generated fused
refresh+sweep+checksum step must be **bit-identical** to the
interpreted ``refresh_ghosts`` + reference-sweep path, halo included.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.backends.base import (
    interpreted_step_counts,
    reset_interpreted_step_counts,
)
from repro.backends.codegen import (
    CACHE_DIR_ENV_VAR,
    CODEGEN_VERSION,
    KernelCompiler,
    default_cache_dir,
    emit_module,
    get_compiler,
    plan_kernel,
)
from repro.backends.numba_backend import NumbaBackend
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.doublebuffer import GridLayout
from repro.stencil.shift import (
    interior_view,
    pad_array,
    padded_shape,
    refresh_ghosts,
)
from repro.stencil.spec import StencilSpec


@pytest.fixture
def compiler(tmp_path):
    return KernelCompiler(cache_dir=tmp_path, jit=False)


@pytest.fixture
def backend(compiler):
    return NumbaBackend(compiler=compiler)


def _spec2d():
    return StencilSpec.from_dict(
        {(0, 0): 0.6, (-1, 0): 0.1, (1, 0): 0.1, (0, -1): 0.1, (0, 1): 0.1}
    )


def _layout(radius, boundary, ndim, refresh_axes=None):
    return GridLayout.from_args(
        radius, BoundarySpec.from_any(boundary, ndim), ndim,
        refresh_axes=refresh_axes,
    )


class TestPlan:
    def test_signature_is_structural(self):
        a = plan_kernel(_spec2d())
        b = plan_kernel(
            StencilSpec.from_dict(
                {(0, 0): 9.0, (-1, 0): 8.0, (1, 0): 7.0, (0, -1): 6.0,
                 (0, 1): 5.0}
            )
        )
        # Same offsets, different weights: weights are runtime arguments,
        # so the two specs share one generated kernel.
        assert a.signature == b.signature
        assert a.digest == b.digest
        assert f"v{CODEGEN_VERSION}|" in a.signature

    def test_fill_values_do_not_change_the_signature(self):
        spec = _spec2d()
        l1 = _layout((1, 1), BoundaryCondition.constant(1.5), 2)
        l2 = _layout((1, 1), BoundaryCondition.constant(-7.25), 2)
        assert l1.fills != l2.fills
        assert (
            plan_kernel(spec, layout=l1).signature
            == plan_kernel(spec, layout=l2).signature
        )

    def test_const_and_layout_distinguish_plans(self):
        spec = _spec2d()
        plain = plan_kernel(spec)
        with_const = plan_kernel(spec, has_const=True)
        with_layout = plan_kernel(
            spec, layout=_layout((1, 1), BoundaryCondition.clamp(), 2)
        )
        assert len({plain.signature, with_const.signature,
                    with_layout.signature}) == 3
        assert not plain.has_step
        assert with_layout.has_step

    def test_layout_must_cover_the_stencil_radius(self):
        spec = _spec2d()
        with pytest.raises(ValueError, match="smaller than the stencil"):
            plan_kernel(
                spec, layout=_layout((0, 1), BoundaryCondition.clamp(), 2)
            )

    def test_layout_ndim_must_match(self):
        with pytest.raises(ValueError, match="axes"):
            plan_kernel(
                _spec2d(),
                layout=_layout((1, 1, 1), BoundaryCondition.clamp(), 3),
            )


class TestGridLayout:
    def test_external_axes_from_refresh_axes(self):
        layout = GridLayout.from_args(
            (2, 1), BoundarySpec.from_any(BoundaryCondition.periodic(), 2),
            2, refresh_axes=(1,),
        )
        assert layout.kinds == ("external", "periodic")
        assert layout.external_axes == (0,)
        assert "external" in layout.signature()

    def test_grid_exposes_its_layout(self):
        from repro.stencil.doublebuffer import DoubleBufferedGrid

        grid = DoubleBufferedGrid(
            np.zeros((4, 5), dtype=np.float32), (1, 1),
            BoundaryCondition.clamp(), external_axes=(0,),
        )
        assert grid.layout.kinds == ("external", "clamp")

    def test_spec_signatures(self):
        spec = _spec2d()
        assert spec.signature().startswith("stencil2d[")
        assert spec.offsets_signature().startswith("offsets2d[")
        # offsets_signature ignores weights; signature does not.
        other = StencilSpec.from_dict(
            {(0, 0): 1.0, (-1, 0): 0.1, (1, 0): 0.1, (0, -1): 0.1,
             (0, 1): 0.1}
        )
        assert spec.offsets_signature() == other.offsets_signature()
        assert spec.signature() != other.signature()


class TestEmit:
    def test_sweep_only_module(self):
        src = emit_module(plan_kernel(_spec2d()))
        assert "def sweep(" in src and "def sweep_cs(" in src
        assert "def step(" not in src and "def refresh(" not in src
        assert 'JIT_FUNCS = (\'sweep\', \'sweep_cs\')' in src

    def test_step_module_has_all_five_functions(self):
        src = emit_module(
            plan_kernel(
                _spec2d(),
                layout=_layout((1, 1), BoundaryCondition.clamp(), 2),
            )
        )
        for fn in ("sweep", "sweep_cs", "refresh", "step", "step_cs"):
            assert f"def {fn}(" in src

    def test_external_axis_emits_no_fill_for_it(self):
        src = emit_module(
            plan_kernel(
                _spec2d(),
                layout=_layout(
                    (1, 1), BoundaryCondition.clamp(), 2, refresh_axes=(0,)
                ),
            )
        )
        assert "# axis 0 halo: clamp" in src
        assert "# axis 1 halo" not in src

    def test_all_external_refresh_is_a_pass(self):
        src = emit_module(
            plan_kernel(
                _spec2d(),
                layout=_layout(
                    (1, 1), BoundaryCondition.clamp(), 2, refresh_axes=()
                ),
            )
        )
        assert "pass  # every axis is external" in src


class TestCompilerCache:
    def test_in_memory_hit(self, compiler):
        spec = _spec2d()
        a = compiler.kernels_for(spec)
        b = compiler.kernels_for(spec)
        assert a is b
        assert a.hits == 1
        assert len(compiler.stats()) == 1
        assert compiler.stats()[0]["hits"] == 1

    def test_on_disk_reuse_across_compilers(self, tmp_path):
        spec = _spec2d()
        first = KernelCompiler(cache_dir=tmp_path, jit=False)
        entry = first.kernels_for(spec)
        assert not entry.from_disk
        assert entry.path.exists()
        second = KernelCompiler(cache_dir=tmp_path, jit=False)
        again = second.kernels_for(spec)
        # The second compiler found the identical source on disk — the
        # worker-process / later-run artifact-sharing path.
        assert again.from_disk
        assert again.path == entry.path

    def test_warmup_time_attribution(self, compiler, backend):
        backend.warmup(_spec2d())
        stats = compiler.stats()
        assert stats  # sweep + step (+const) families
        assert any(e["warmup_ms"] > 0 for e in stats)
        kinds = {e["kind"] for e in stats}
        assert kinds == {"sweep", "step"}

    def test_cache_dir_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "kc"))
        assert default_cache_dir() == tmp_path / "kc"
        assert get_compiler().cache_dir  # singleton constructible


class TestBackendOnGeneratedKernels:
    def test_src_shape_mismatch_raises(self, backend, rng):
        spec = _spec2d()
        u = rng.random((6, 5)).astype(np.float32)
        src = pad_array(u, (2, 2), BoundaryCondition.clamp())  # too wide
        dst = np.zeros(padded_shape((6, 5), (1, 1)), dtype=np.float32)
        with pytest.raises(ValueError, match="src_padded"):
            backend.step_into(src, dst, spec, (1, 1), (6, 5),
                              BoundaryCondition.clamp())

    def test_aliasing_pair_stages_through_scratch(self, backend, rng):
        spec = _spec2d()
        u = rng.random((7, 6)).astype(np.float32)
        expected = get_backend("numpy").sweep_padded(
            pad_array(u, (1, 1), BoundaryCondition.clamp()), spec,
            (1, 1), (7, 6),
        )
        src = pad_array(u, (1, 1), BoundaryCondition.clamp())
        got = backend.step_into(
            src, src, spec, (1, 1), (7, 6), BoundaryCondition.clamp()
        )
        np.testing.assert_array_equal(got, expected)

    def test_no_interpreted_steps_recorded(self, backend, rng):
        reset_interpreted_step_counts()
        spec = _spec2d()
        u = rng.random((7, 6)).astype(np.float32)
        src = pad_array(u, (1, 1), BoundaryCondition.clamp())
        dst = np.zeros_like(src)
        backend.step_into(src, dst, spec, (1, 1), (7, 6),
                          BoundaryCondition.clamp())
        backend.step_into_with_checksums(
            src, dst, spec, (1, 1), (7, 6), BoundaryCondition.clamp(),
            (0, 1),
        )
        assert interpreted_step_counts().get("numba", 0) == 0

    def test_base_path_is_counted(self, rng):
        reset_interpreted_step_counts()
        spec = _spec2d()
        be = get_backend("fused")
        u = rng.random((7, 6)).astype(np.float32)
        src = pad_array(u, (1, 1), BoundaryCondition.clamp())
        dst = np.zeros_like(src)
        be.step_into(src, dst, spec, (1, 1), (7, 6),
                     BoundaryCondition.clamp())
        assert interpreted_step_counts().get("fused") == 1
        reset_interpreted_step_counts()
        assert interpreted_step_counts() == {}

    def test_compiled_kernels_reporting(self, backend):
        assert backend.compiles_kernels
        assert backend.compiled_kernels() == ()
        backend.warmup(_spec2d())
        entries = backend.compiled_kernels()
        assert entries
        for e in entries:
            assert e["signature"] and e["digest"]
        assert not get_backend("fused").compiles_kernels
        assert get_backend("fused").compiled_kernels() == ()


# -- the property test ------------------------------------------------------

_KIND_STRATEGY = st.sampled_from(("clamp", "periodic", "constant", "zero"))


def _bc(kind):
    if kind == "constant":
        return BoundaryCondition.constant(2.5)
    return getattr(BoundaryCondition, kind)()


@st.composite
def _cases(draw):
    ndim = draw(st.integers(2, 3))
    npoints = draw(st.integers(1, 5))
    offsets = draw(
        st.lists(
            st.tuples(*[st.integers(-3, 3)] * ndim),
            min_size=npoints, max_size=npoints, unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(-1.0, 1.0, allow_nan=False, width=32),
            min_size=npoints, max_size=npoints,
        )
    )
    spec = StencilSpec(list(zip(offsets, weights)))
    radius = spec.radius()
    # Interior extents deliberately allowed below the ghost width, so
    # degenerate periodic wraps (r > n) are drawn too.
    shape = tuple(draw(st.integers(1, 6)) for _ in range(ndim))
    kinds = tuple(draw(_KIND_STRATEGY) for _ in range(ndim))
    external = tuple(
        a for a in range(ndim) if draw(st.booleans()) and radius[a] > 0
    )
    has_const = draw(st.booleans())
    return spec, shape, kinds, external, has_const


@settings(max_examples=60, deadline=None)
@given(case=_cases(), seed=st.integers(0, 2**31 - 1))
def test_generated_step_bit_identical_to_interpreted(case, seed, tmp_path_factory):
    """Random spec × layout: generated fused step ≡ interpreted path.

    The halos start as random data (standing in for ingested neighbour
    halos on external axes); the reference runs ``refresh_ghosts`` over
    the non-external axes followed by the ``numpy`` reference sweep.
    Interior AND full halo must come out bit-identical; the fused
    checksums must match a post-hoc reduction to 1e-10.
    """
    spec, shape, kinds, external, has_const = case
    radius = spec.radius()
    boundary = BoundarySpec.from_any([_bc(k) for k in kinds], spec.ndim)
    refresh_axes = (
        tuple(a for a in range(spec.ndim) if a not in external)
        if external
        else None
    )
    rng = np.random.default_rng(seed)
    pshape = padded_shape(shape, radius)
    src_ref = rng.standard_normal(pshape).astype(np.float32)
    const = (
        rng.standard_normal(shape).astype(np.float32) if has_const else None
    )
    src_gen = src_ref.copy()
    dst_ref = np.full(pshape, np.nan, dtype=np.float32)
    dst_gen = np.full(pshape, np.nan, dtype=np.float32)

    refresh_ghosts(src_ref, radius, boundary, axes=refresh_axes)
    expected = get_backend("numpy").sweep_padded(
        src_ref, spec, radius, shape, constant=const
    )
    interior_view(dst_ref, radius)[...] = expected

    compiler = KernelCompiler(
        cache_dir=tmp_path_factory.mktemp("prop"), jit=False
    )
    backend = NumbaBackend(compiler=compiler)
    got, cs = backend.step_into_with_checksums(
        src_gen, dst_gen, spec, radius, shape, boundary, (0, 1),
        constant=const, checksum_dtype=np.float64,
        refresh_axes=refresh_axes,
    )
    np.testing.assert_array_equal(got, expected)
    np.testing.assert_array_equal(src_gen, src_ref)  # halo, corners included
    from repro.core.checksums import checksum

    for axis in (0, 1):
        posthoc = checksum(expected, axis, dtype=np.float64)
        scale = np.maximum(np.abs(posthoc), 1.0)
        assert float(np.max(np.abs(cs[axis] - posthoc) / scale)) < 1e-10


# -- the batched emission strategy ------------------------------------------

class TestBatchPlans:
    def test_batch_suffix_keyed_into_the_signature(self):
        spec = _spec2d()
        layout = _layout((1, 1), BoundaryCondition.clamp(), 2)
        single = plan_kernel(spec, layout=layout)
        batched = plan_kernel(spec, layout=layout, batch=True)
        assert batched.signature == single.signature + "|b"
        assert batched.digest != single.digest

    def test_batch_requires_a_layout(self):
        with pytest.raises(ValueError, match="grid layout"):
            plan_kernel(_spec2d(), batch=True)

    def test_batch_rejects_temporal_blocking(self):
        layout = _layout((1, 1), BoundaryCondition.clamp(), 2)
        with pytest.raises(ValueError, match="temporal blocking"):
            plan_kernel(_spec2d(), layout=layout, batch=True, block_steps=2)

    def test_batch_module_emits_only_the_bstep_family(self):
        src = emit_module(
            plan_kernel(
                _spec2d(),
                layout=_layout((1, 1), BoundaryCondition.clamp(), 2),
                batch=True,
            )
        )
        assert "def bstep(" in src and "def bstep_cs(" in src
        assert "def step(" not in src and "def sweep(" not in src
        assert 'JIT_FUNCS = ("bstep", "bstep_cs")' in src
        assert 'PARALLEL_FUNCS = ("bstep", "bstep_cs")' in src
        assert "prange(nb)" in src

    def test_batched_warmup_time_attribution(self, compiler, backend):
        backend.warmup(_spec2d(), batch_width=3)
        kinds = {e["kind"] for e in compiler.stats()}
        assert kinds == {"sweep", "step", "bstep"}


@settings(max_examples=25, deadline=None)
@given(
    case=_cases(),
    batch=st.sampled_from((1, 3, 8)),
    with_cs=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_batched_step_bit_identical_to_single_steps(
    case, batch, with_cs, seed, tmp_path_factory
):
    """Random spec × layout × batch width: bstep ≡ B independent steps.

    The batched kernel must reproduce, slot for slot, exactly what the
    single-run generated step produces on each slot's buffers — interior,
    refreshed halo and (when requested) both checksum vectors, all
    bit-identical.  This is the property that makes stacked-vs-replay a
    pure throughput choice in the campaign engine.
    """
    spec, shape, kinds, external, has_const = case
    radius = spec.radius()
    boundary = BoundarySpec.from_any([_bc(k) for k in kinds], spec.ndim)
    refresh_axes = (
        tuple(a for a in range(spec.ndim) if a not in external)
        if external
        else None
    )
    rng = np.random.default_rng(seed)
    pshape = padded_shape(shape, radius)
    singles = [
        rng.standard_normal(pshape).astype(np.float32) for _ in range(batch)
    ]
    const = (
        rng.standard_normal(shape).astype(np.float32) if has_const else None
    )
    bsrc = np.stack(singles, axis=-1)
    bdst = np.full(bsrc.shape, np.nan, dtype=np.float32)

    compiler = KernelCompiler(
        cache_dir=tmp_path_factory.mktemp("bprop"), jit=False
    )
    backend = NumbaBackend(compiler=compiler)
    if with_cs:
        got, cs = backend.batch_step_into_with_checksums(
            bsrc, bdst, spec, radius, shape, boundary, (0, 1),
            constant=const, checksum_dtype=np.float64,
            refresh_axes=refresh_axes,
        )
    else:
        got = backend.batch_step_into(
            bsrc, bdst, spec, radius, shape, boundary, constant=const,
            refresh_axes=refresh_axes,
        )

    for b in range(batch):
        ssrc = singles[b].copy()
        sdst = np.full(pshape, np.nan, dtype=np.float32)
        if with_cs:
            want, want_cs = backend.step_into_with_checksums(
                ssrc, sdst, spec, radius, shape, boundary, (0, 1),
                constant=const, checksum_dtype=np.float64,
                refresh_axes=refresh_axes,
            )
        else:
            want = backend.step_into(
                ssrc, sdst, spec, radius, shape, boundary, constant=const,
                refresh_axes=refresh_axes,
            )
        np.testing.assert_array_equal(got[..., b], want)
        # Per-slot ghost refresh, corners included, matches the single
        # step's refresh of that slot.
        np.testing.assert_array_equal(bsrc[..., b], ssrc)
        np.testing.assert_array_equal(bdst[..., b], sdst)
        if with_cs:
            for axis in (0, 1):
                np.testing.assert_array_equal(cs[axis][..., b], want_cs[axis])
