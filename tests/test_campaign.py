"""Unit tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection, RunReport, StepReport
from repro.faults.campaign import (
    CampaignConfig,
    RunRecord,
    compute_reference,
    resolve_run_counters,
    run_campaign,
)
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion


def _grid_factory():
    rng = np.random.default_rng(11)
    u0 = (rng.random((16, 12)) * 100).astype(np.float32)

    def factory():
        return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())

    return factory


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(iterations=0, repetitions=1)
        with pytest.raises(ValueError):
            CampaignConfig(iterations=1, repetitions=0)

    def test_defaults(self):
        config = CampaignConfig(iterations=10, repetitions=3)
        assert config.inject is True
        assert config.bit is None


class TestComputeReference:
    def test_reference_is_error_free_final_state(self):
        factory = _grid_factory()
        ref = compute_reference(factory, 12)
        grid = factory()
        grid.run(12)
        np.testing.assert_array_equal(ref, grid.u)


class TestRunCampaign:
    def test_error_free_campaign_records_zero_error(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=8, repetitions=3, inject=False)
        result = run_campaign(factory, lambda g: NoProtection(), config)
        assert len(result) == 3
        assert all(r.arithmetic_error == 0.0 for r in result.records)
        assert all(not r.injected for r in result.records)
        assert np.isnan(result.detection_rate())
        assert result.false_positive_rate() == 0.0

    def test_injected_campaign_draws_independent_faults(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=10, repetitions=5, inject=True, seed=3)
        result = run_campaign(factory, lambda g: NoProtection(), config)
        faults = [r.fault for r in result.records]
        assert all(f is not None for f in faults)
        assert len({(f.iteration, f.index, f.bit) for f in faults}) > 1

    def test_campaign_reproducible_with_same_seed(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=10, repetitions=4, inject=True, seed=17)
        r1 = run_campaign(factory, lambda g: NoProtection(), config)
        r2 = run_campaign(factory, lambda g: NoProtection(), config)
        assert [r.fault for r in r1.records] == [r.fault for r in r2.records]
        assert r1.errors() == pytest.approx(r2.errors())

    def test_online_abft_campaign_counts_detections(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=12, repetitions=6, inject=True, seed=2)
        result = run_campaign(
            factory, lambda g: OnlineABFT.for_grid(g, epsilon=1e-5), config
        )
        assert result.protector_name == "online-abft"
        # High bits are detected; very low bits are not: the rate is within (0, 1].
        assert 0.0 <= result.detection_rate() <= 1.0
        detected_runs = [r for r in result.records if r.detected]
        for run in detected_runs:
            assert run.errors_corrected >= 0

    def test_pinned_bit_position(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=6, repetitions=4, inject=True, bit=30, seed=1)
        result = run_campaign(factory, lambda g: NoProtection(), config)
        assert all(r.fault.bit == 30 for r in result.records)

    def test_time_and_error_stats(self):
        factory = _grid_factory()
        config = CampaignConfig(iterations=5, repetitions=3, inject=False)
        result = run_campaign(factory, lambda g: NoProtection(), config)
        assert result.time_stats().count == 3
        assert result.time_stats().mean > 0.0
        assert result.error_stats().maximum == 0.0

    def test_precomputed_reference_reused(self):
        factory = _grid_factory()
        ref = compute_reference(factory, 5)
        config = CampaignConfig(iterations=5, repetitions=2, inject=False)
        result = run_campaign(factory, lambda g: NoProtection(), config, reference=ref)
        assert all(r.arithmetic_error == 0.0 for r in result.records)

    def test_run_record_properties(self):
        record = RunRecord(
            run_index=0, elapsed_seconds=0.1, arithmetic_error=1.0, fault=None,
            errors_detected=0, errors_corrected=0, errors_uncorrected=0,
            rollbacks=0, recomputed_iterations=0,
        )
        assert not record.injected
        assert not record.detected


class TestResolveRunCounters:
    @staticmethod
    def _report(detected=0, corrected=0, uncorrected=0, rollback=False):
        report = RunReport()
        report.add(
            StepReport(
                iteration=1,
                errors_detected=detected,
                errors_corrected=corrected,
                errors_uncorrected=uncorrected,
                rollback=rollback,
            )
        )
        return report

    def test_missing_counters_fall_back_to_run_report(self):
        counters = resolve_run_counters(
            NoProtection(), self._report(detected=2, corrected=1)
        )
        assert counters == (2, 1, 0, 0, 0)

    def test_genuine_zero_counter_survives(self):
        # The protector exposes the counter and counted 0; a truthiness
        # fallback would overwrite it with the run report's nonzero sum.
        class CountingProtector(NoProtection):
            total_detections = 0
            total_corrections = 0
            total_uncorrected = 0

        counters = resolve_run_counters(
            CountingProtector(), self._report(detected=3, corrected=3)
        )
        assert counters[:3] == (0, 0, 0)
        # Counters the protector does not expose still fall back.
        counters = resolve_run_counters(
            CountingProtector(), self._report(rollback=True)
        )
        assert counters[3] == 1


class TestColumnarSummaries:
    @staticmethod
    def _result(n=4):
        factory = _grid_factory()
        config = CampaignConfig(iterations=6, repetitions=n, inject=True, seed=5)
        return run_campaign(factory, lambda g: NoProtection(), config)

    def test_times_and_errors_are_arrays(self):
        result = self._result()
        times, errors = result.times(), result.errors()
        assert isinstance(times, np.ndarray) and times.dtype == np.float64
        assert isinstance(errors, np.ndarray) and errors.dtype == np.float64
        assert list(times) == [r.elapsed_seconds for r in result.records]
        assert list(errors) == [r.arithmetic_error for r in result.records]

    def test_columns_cached_until_records_change(self):
        result = self._result()
        first = result.columns()
        assert result.columns() is first
        result.records.append(result.records[0])
        refreshed = result.columns()
        assert refreshed is not first
        assert len(refreshed.elapsed) == len(result.records)

    def test_rates_match_record_scan(self):
        result = self._result(6)
        injected = [r for r in result.records if r.injected]
        expected = sum(1 for r in injected if r.detected) / len(injected)
        assert result.detection_rate() == expected
        assert result.total_rollbacks() == sum(r.rollbacks for r in result.records)
