"""Unit tests for checksum computation (Eqs. 2-3)."""

import numpy as np
import pytest

from repro.core.checksums import (
    both_checksums,
    checksum,
    column_checksum,
    constant_checksum,
    patch_checksum,
    row_checksum,
)
from repro.stencil.reference import (
    reference_column_checksum,
    reference_row_checksum,
)


class TestChecksum2D:
    def test_row_checksum_matches_reference(self, rng):
        u = rng.random((7, 9))
        np.testing.assert_allclose(row_checksum(u), reference_row_checksum(u), rtol=1e-12)

    def test_column_checksum_matches_reference(self, rng):
        u = rng.random((7, 9))
        np.testing.assert_allclose(
            column_checksum(u), reference_column_checksum(u), rtol=1e-12
        )

    def test_shapes(self, rng):
        u = rng.random((5, 8))
        assert row_checksum(u).shape == (5,)
        assert column_checksum(u).shape == (8,)

    def test_both_checksums(self, rng):
        u = rng.random((4, 6))
        a, b = both_checksums(u)
        np.testing.assert_array_equal(a, row_checksum(u))
        np.testing.assert_array_equal(b, column_checksum(u))

    def test_total_sum_consistency(self, rng):
        # The sum of the row checksums equals the sum of the column checksums
        # (both equal the total domain sum).
        u = rng.random((6, 11))
        assert row_checksum(u).sum() == pytest.approx(column_checksum(u).sum())

    def test_accumulation_dtype(self, rng):
        u = rng.random((5, 5)).astype(np.float32)
        assert row_checksum(u).dtype == np.float32
        assert row_checksum(u, dtype=np.float64).dtype == np.float64


class TestChecksum3D:
    def test_per_layer_equivalence(self, rng):
        # The vectorised 3D checksum equals the per-layer 2D checksums.
        u = rng.random((6, 5, 4))
        a = row_checksum(u)       # shape (6, 4)
        b = column_checksum(u)    # shape (5, 4)
        for z in range(4):
            np.testing.assert_allclose(a[:, z], row_checksum(u[:, :, z]), rtol=1e-12)
            np.testing.assert_allclose(b[:, z], column_checksum(u[:, :, z]), rtol=1e-12)

    def test_shapes(self, rng):
        u = rng.random((6, 5, 3))
        assert row_checksum(u).shape == (6, 3)
        assert column_checksum(u).shape == (5, 3)


class TestChecksumValidation:
    def test_invalid_axis_rejected(self, rng):
        with pytest.raises(ValueError, match="reduce_axis"):
            checksum(rng.random((3, 3)), 2)

    def test_invalid_ndim_rejected(self, rng):
        with pytest.raises(ValueError, match="2D/3D"):
            checksum(rng.random(5), 0)


class TestConstantChecksum:
    def test_none_passthrough(self):
        assert constant_checksum(None, 0, (3, 3), np.float32) is None

    def test_values(self, rng):
        c = rng.random((4, 6))
        cs = constant_checksum(c, 1, (4, 6), np.float64)
        np.testing.assert_allclose(cs, c.sum(axis=1))
        assert cs.dtype == np.float64

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="constant term"):
            constant_checksum(rng.random((2, 2)), 0, (3, 3), np.float32)


class TestPatchChecksum:
    def test_patch_updates_entry(self):
        cs = np.array([10.0, 20.0, 30.0])
        patch_checksum(cs, 1, old_value=5.0, new_value=7.5)
        assert cs[1] == pytest.approx(22.5)

    def test_patch_tuple_index(self):
        cs = np.zeros((2, 2))
        patch_checksum(cs, (1, 0), old_value=1.0, new_value=4.0)
        assert cs[1, 0] == pytest.approx(3.0)
