"""Pluggable fault models: draws, registry, hooks and campaign plumbing.

The fault model is an adversarial axis of the campaigns: beyond the
paper's single uniform bit flip (Section 5.1), the suite must draw
multi-bit bursts, MTBF-driven arrival processes (including legitimately
fault-free runs) and region-targeted corruption, and route every target
through the right injection hook.  The legacy model's RNG consumption is
pinned bit-for-bit so historical campaign records stay reproducible.
"""

import numpy as np
import pytest

from repro.experiments.common import make_hotspot_app, make_protector_factory
from repro.faults.bitflip import bit_width
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.engine import CampaignEngine
from repro.faults.injector import FaultInjector, FaultPlan, random_fault_plan
from repro.faults.models import (
    ChecksumInjector,
    CompositeInjector,
    FaultModel,
    MultiBitBurst,
    PoissonArrival,
    RegionTargeted,
    SingleBitFlip,
    available_fault_models,
    make_fault_model,
    make_injector,
)


class TestSingleBitFlip:
    def test_rng_consumption_identical_to_legacy_loop(self):
        """Seeded campaigns must reproduce their historical fault plans."""
        for faults in (1, 2, 5):
            legacy_rng = np.random.default_rng(42)
            model_rng = np.random.default_rng(42)
            legacy = [
                random_fault_plan(legacy_rng, (24, 20), 64, dtype=np.float32)
                for _ in range(faults)
            ]
            drawn = SingleBitFlip(faults_per_run=faults).draw(
                model_rng, (24, 20), 64, dtype=np.float32
            )
            assert drawn == legacy

    def test_pinned_bit(self):
        plans = SingleBitFlip(faults_per_run=3, bit=29).draw(
            np.random.default_rng(0), (8, 8), 10
        )
        assert all(p.bit == 29 for p in plans)

    def test_validation(self):
        with pytest.raises(ValueError, match="faults_per_run"):
            SingleBitFlip(faults_per_run=0)


class TestMultiBitBurst:
    def test_burst_strikes_one_iteration_within_spread(self):
        shape = (16, 12)
        for seed in range(20):
            plans = MultiBitBurst(burst_size=4, spread=2).draw(
                np.random.default_rng(seed), shape, 30
            )
            assert len(plans) == 4
            anchor = plans[0]
            for p in plans:
                assert p.iteration == anchor.iteration
                assert p.target == "domain"
                for i, (a, n) in enumerate(zip(anchor.index, shape)):
                    assert 0 <= p.index[i] < n
                    assert abs(p.index[i] - a) <= 2

    def test_burst_of_one_is_a_single_flip(self):
        plans = MultiBitBurst(burst_size=1).draw(
            np.random.default_rng(3), (8, 8), 10
        )
        assert len(plans) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="burst_size"):
            MultiBitBurst(burst_size=0)
        with pytest.raises(ValueError, match="spread"):
            MultiBitBurst(spread=-1)


class TestPoissonArrival:
    def test_arrivals_ordered_and_in_range(self):
        plans = PoissonArrival(mtbf=4.0).draw(
            np.random.default_rng(1), (8, 8), 40
        )
        assert plans, "mtbf 4 over 40 iterations should draw arrivals"
        iters = [p.iteration for p in plans]
        assert iters == sorted(iters)
        assert all(1 <= i <= 40 for i in iters)

    def test_long_mtbf_legitimately_draws_nothing(self):
        plans = PoissonArrival(mtbf=1e9).draw(
            np.random.default_rng(2), (8, 8), 10
        )
        assert plans == []

    def test_mean_arrival_count_tracks_mtbf(self):
        rng = np.random.default_rng(7)
        counts = [
            len(PoissonArrival(mtbf=8.0).draw(rng, (4, 4), 80))
            for _ in range(200)
        ]
        assert 8.0 < float(np.mean(counts)) < 12.0  # ~80/8 = 10 expected

    def test_per_rank_mtbf_preserves_system_rate(self):
        """n rank blocks each see MTBF n*mtbf: the aggregate rate matches."""
        rng = np.random.default_rng(11)
        shapes = [(6, 8)] * 4
        totals = [
            sum(
                len(p)
                for p in PoissonArrival(mtbf=8.0).draw_for_ranks(
                    rng, shapes, 80
                )
            )
            for _ in range(100)
        ]
        assert 8.0 < float(np.mean(totals)) < 12.0

    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf"):
            PoissonArrival(mtbf=0.0)


class TestRegionTargeted:
    def test_checksum_plan_indexes_the_reduced_shape(self):
        shape = (12, 9)
        for axis in (0, 1):
            plans = RegionTargeted(region="checksum", axis=axis).draw(
                np.random.default_rng(axis), shape, 20
            )
            (plan,) = plans
            assert plan.target == "checksum"
            assert plan.axis == axis
            assert len(plan.index) == 1
            assert 0 <= plan.index[0] < shape[1 - axis]

    def test_checksum_bits_cover_the_float64_width(self):
        bits = set()
        for seed in range(300):
            (plan,) = RegionTargeted(region="checksum").draw(
                np.random.default_rng(seed), (8, 8), 10
            )
            bits.add(plan.bit)
        assert max(bits) > 31  # stored checksums are float64, not float32
        assert max(bits) < bit_width(np.float64)

    def test_ghost_plan_addresses_a_slab(self):
        (plan,) = RegionTargeted(region="ghost", axis=0).draw(
            np.random.default_rng(5), (12, 9), 20
        )
        assert plan.target == "ghost"
        assert plan.index[0] == 0  # slab is one layer thick along the axis
        assert 0 <= plan.index[1] < 9
        assert plan.side in (0, 1)

    def test_payload_plan_carries_the_action(self):
        (plan,) = RegionTargeted(region="payload", action="drop").draw(
            np.random.default_rng(6), (12, 9), 20
        )
        assert plan.target == "payload"
        assert plan.action == "drop"
        assert len(plan.index) == 1

    def test_interior_region_is_a_domain_flip(self):
        (plan,) = RegionTargeted(region="interior").draw(
            np.random.default_rng(7), (12, 9), 20
        )
        assert plan.target == "domain"

    def test_validation(self):
        with pytest.raises(ValueError, match="region"):
            RegionTargeted(region="bus")
        with pytest.raises(ValueError, match="action"):
            RegionTargeted(action="mangle")


class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_fault_models()
        for name in (
            "bitflip", "burst", "mtbf", "region",
            "region-checksum", "region-ghost", "region-payload",
        ):
            assert name in names

    def test_make_by_name_with_params(self):
        model = make_fault_model("mtbf", mtbf=16.0)
        assert isinstance(model, PoissonArrival)
        assert model.mtbf == 16.0
        region = make_fault_model("region-ghost", axis=0)
        assert isinstance(region, RegionTargeted)
        assert region.region == "ghost"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="bitflip"):
            make_fault_model("cosmic-ray")

    def test_models_are_hashable_and_picklable(self):
        import pickle

        for model in (
            SingleBitFlip(), MultiBitBurst(), PoissonArrival(),
            RegionTargeted(),
        ):
            assert hash(model) == hash(pickle.loads(pickle.dumps(model)))


class TestMakeInjector:
    def test_empty_plans_yield_no_hook(self):
        assert make_injector([]) is None

    def test_domain_plans_use_the_classic_injector(self):
        hook = make_injector([FaultPlan(iteration=1, index=(0, 0), bit=3)])
        assert isinstance(hook, FaultInjector)

    def test_checksum_plans_need_a_protector(self):
        plan = FaultPlan(iteration=2, index=(0,), bit=40, target="checksum")
        with pytest.raises(ValueError, match="protector"):
            make_injector([plan])

    def test_ghost_and_payload_have_no_serial_meaning(self):
        for target in ("ghost", "payload"):
            plan = FaultPlan(
                iteration=1, index=(0, 0) if target == "ghost" else (0,),
                bit=3, target=target,
            )
            with pytest.raises(ValueError, match="distributed"):
                make_injector([plan], protector=object())

    def test_mixed_targets_compose_and_expose_union_plans(self, rng):
        from repro.core.online import OnlineABFT
        from repro.stencil.boundary import BoundaryCondition
        from repro.stencil.grid import Grid2D
        from repro.stencil.kernels import five_point_diffusion

        u0 = (rng.random((12, 10)) * 100).astype(np.float32)
        grid = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        domain = FaultPlan(iteration=3, index=(4, 4), bit=26)
        checksum = FaultPlan(
            iteration=4, index=(2,), bit=62, target="checksum",
            axis=protector.verify_axis,
        )
        hook = make_injector([domain, checksum], protector)
        assert isinstance(hook, CompositeInjector)
        assert hook.plans == [domain, checksum]
        protector.run(grid, 8, inject=hook)
        assert hook.fired_count == 2

    def test_checksum_injector_rejects_foreign_targets(self):
        with pytest.raises(ValueError, match="checksum"):
            ChecksumInjector(
                [FaultPlan(iteration=1, index=(0, 0), bit=3)], object()
            )


class TestCampaignPlumbing:
    def test_config_rejects_non_model(self):
        with pytest.raises(TypeError, match="FaultModel"):
            CampaignConfig(iterations=4, repetitions=2, fault_model="mtbf")

    def test_default_model_resolves_to_legacy_bitflip(self):
        config = CampaignConfig(
            iterations=4, repetitions=2, faults_per_run=3, bit=29
        )
        model = config.resolved_fault_model()
        assert model == SingleBitFlip(faults_per_run=3, bit=29)

    def test_explicit_bitflip_model_reproduces_default_records(self):
        app = make_hotspot_app((16, 16, 4))
        reference = app.reference_solution(8)
        factory = make_protector_factory("online-abft")
        base = CampaignConfig(iterations=8, repetitions=5, seed=13)
        explicit = CampaignConfig(
            iterations=8, repetitions=5, seed=13, fault_model=SingleBitFlip()
        )
        a = run_campaign(app.build_grid, factory, base, reference=reference)
        b = run_campaign(app.build_grid, factory, explicit, reference=reference)
        assert [r.faults for r in a.records] == [r.faults for r in b.records]
        assert [r.arithmetic_error for r in a.records] == [
            r.arithmetic_error for r in b.records
        ]

    @pytest.mark.parametrize("model", [
        PoissonArrival(mtbf=6.0),
        MultiBitBurst(burst_size=3, spread=1),
    ])
    def test_engine_matches_legacy_loop_under_pluggable_models(self, model):
        app = make_hotspot_app((16, 16, 4))
        reference = app.reference_solution(10)
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=10, repetitions=6, seed=5, fault_model=model
        )
        legacy = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        with CampaignEngine(executor="serial", batch_size=3) as engine:
            got = engine.run(
                app.build_grid, factory, config, reference=reference
            )
        key = lambda r: (
            r.run_index, r.arithmetic_error, r.errors_detected,
            r.errors_corrected, r.errors_uncorrected, r.rollbacks,
            r.recomputed_iterations,
            tuple((p.iteration, p.index, p.bit, p.target) for p in r.faults),
        )
        assert [key(r) for r in got.records] == [key(r) for r in legacy.records]

    def test_mtbf_campaign_supports_fault_free_runs(self):
        app = make_hotspot_app((16, 16, 4))
        reference = app.reference_solution(4)
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=4, repetitions=8, seed=1,
            fault_model=PoissonArrival(mtbf=20.0),
        )
        result = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        empties = [r for r in result.records if not r.faults]
        assert empties, "a 20-iteration MTBF over 4 iterations must skip runs"
        for r in empties:
            assert r.fault is None
            assert r.arithmetic_error == 0.0

    def test_custom_model_subclass_plugs_in(self):
        class FixedPlan(FaultModel):
            name = "fixed"

            def draw(self, rng, shape, iterations, dtype=np.float32):
                return [FaultPlan(iteration=1, index=(0,) * len(shape), bit=30)]

        app = make_hotspot_app((16, 16, 4))
        reference = app.reference_solution(4)
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=4, repetitions=2, seed=0, fault_model=FixedPlan()
        )
        result = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        assert all(
            r.faults == [FaultPlan(iteration=1, index=(0, 0, 0), bit=30)]
            for r in result.records
        )
