"""Integration tests: every paper figure regenerates at smoke scale.

These tests run the real experiment harnesses end to end (on tiny
domains) and assert the *qualitative* shape the paper reports — who
wins, by roughly what factor, where the transitions are — rather than
absolute numbers.
"""

import math

import pytest

from repro.experiments.common import EvaluationScale
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.figure11 import format_figure11, run_figure11
from repro.experiments.sensitivity import format_sensitivity, run_sensitivity


@pytest.fixture(scope="module")
def scale():
    return EvaluationScale.smoke()


@pytest.fixture(scope="module")
def figure8(scale):
    return run_figure8(scale)


@pytest.fixture(scope="module")
def figure9(scale, figure8):
    # Reuse figure 8's campaigns (same runs feed both figures, as in the paper).
    return run_figure9(scale, campaigns=figure8.campaigns)


class TestFigure8:
    def test_all_rows_present(self, scale, figure8):
        assert len(figure8.rows) == len(scale.tile_sizes) * 2 * 3

    def test_baseline_overhead_is_zero(self, scale, figure8):
        for tile in scale.tile_sizes:
            for scenario in ("error-free", "single-bit-flip"):
                assert figure8.overhead(tile, scenario, "no-abft") == pytest.approx(0.0)

    def test_times_positive(self, figure8):
        assert all(r.mean_time > 0 for r in figure8.rows)

    def test_formatting(self, figure8):
        text = format_figure8(figure8)
        assert "Figure 8" in text
        assert "ABFT (Online)" in text
        assert "Overhead" in text


class TestFigure9:
    def test_error_free_errors_are_negligible(self, scale, figure9):
        for tile in scale.tile_sizes:
            for method in ("no-abft", "online-abft", "offline-abft"):
                row = figure9.row(tile, "error-free", method)
                assert row.mean_error < 1e-3

    def test_protected_runs_beat_unprotected_with_faults(self, scale, figure9):
        # The paper's headline qualitative claim (Figure 9): with a single
        # bit-flip the unprotected error is orders of magnitude above the
        # protected ones (median comparison is robust to undetectably
        # small flips).
        for tile in scale.tile_sizes:
            unprotected = figure9.row(tile, "single-bit-flip", "no-abft")
            online = figure9.row(tile, "single-bit-flip", "online-abft")
            offline = figure9.row(tile, "single-bit-flip", "offline-abft")
            assert online.max_error <= unprotected.max_error
            assert offline.max_error <= unprotected.max_error

    def test_no_false_positives_error_free(self, scale, figure9):
        for tile in scale.tile_sizes:
            for method in ("online-abft", "offline-abft"):
                row = figure9.row(tile, "error-free", method)
                assert row.false_positive_rate == 0.0

    def test_formatting(self, figure9):
        text = format_figure9(figure9)
        assert "Figure 9" in text
        assert "Median error" in text


class TestFigure10:
    @pytest.fixture(scope="class")
    def figure10(self, scale):
        return run_figure10(scale)

    def test_panels_cover_all_methods_and_bits(self, scale, figure10):
        for method in ("no-abft", "online-abft", "offline-abft"):
            panel = figure10.panel(method)
            assert [c.bit for c in panel] == sorted(scale.bit_positions)

    def test_exponent_flips_catastrophic_without_protection(self, figure10):
        cell = figure10.cell("no-abft", 27)
        assert cell.median_error > 1.0

    def test_low_fraction_bits_undetectable_for_abft(self, figure10):
        # Bits 0..12: "does not cause an error that is large enough to be
        # detected" (paper, Section 5.3).
        cell = figure10.cell("online-abft", 1)
        assert cell.detection_rate == 0.0

    def test_online_abft_corrects_high_bits(self, figure10):
        online = figure10.cell("online-abft", 27)
        unprotected = figure10.cell("no-abft", 27)
        assert online.detection_rate == 1.0
        assert online.median_error < unprotected.median_error

    def test_offline_abft_erases_detected_errors(self, figure10):
        offline = figure10.cell("offline-abft", 27)
        assert offline.detection_rate == 1.0
        assert offline.median_error == pytest.approx(0.0, abs=1e-10)

    def test_field_classification(self, figure10):
        assert figure10.cell("no-abft", 31).field == "sign"
        assert figure10.cell("no-abft", 27).field == "exponent"
        assert figure10.cell("no-abft", 12).field == "fraction"

    def test_formatting(self, figure10):
        text = format_figure10(figure10)
        assert "Figure 10" in text
        assert "exponent" in text


class TestFigure11:
    @pytest.fixture(scope="class")
    def figure11(self, scale):
        return run_figure11(scale)

    def test_curves_cover_requested_periods(self, scale, figure11):
        tile = scale.primary_tile()
        curve = figure11.curve(tile, "error-free")
        expected = [p for p in scale.detection_periods if p <= scale.iterations[tile]]
        assert [pt.period for pt in curve] == expected

    def test_error_free_runs_have_no_rollbacks(self, scale, figure11):
        tile = scale.primary_tile()
        assert all(pt.rollbacks == 0 for pt in figure11.curve(tile, "error-free"))

    def test_faulty_runs_roll_back(self, scale, figure11):
        tile = scale.primary_tile()
        assert any(pt.rollbacks > 0 for pt in figure11.curve(tile, "single-bit-flip"))

    def test_best_period_is_not_the_smallest(self, scale, figure11):
        # Checkpoint/detect every iteration is the most expensive setting
        # (the left edge of the paper's Figure 11 curves).
        tile = scale.primary_tile()
        curve = figure11.curve(tile, "error-free")
        slowest = max(curve, key=lambda p: p.mean_time)
        assert figure11.best_period(tile, "error-free") != 1 or slowest.period != 1

    def test_formatting(self, figure11):
        assert "Figure 11" in format_figure11(figure11)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sensitivity(self, scale):
        return run_sensitivity(scale, runs_per_magnitude=4,
                               magnitudes=(1e-1, 1e-3, 1e-5, 1e-7))

    def test_abft_beats_spatial_detector(self, sensitivity):
        # The paper's Section 2 comparison: the ABFT detector is both more
        # sensitive and free of false positives. The spatial detector either
        # misses smaller perturbations (higher detection limit) or "detects"
        # everything because it also fires on clean data (false positives),
        # which makes its nominal sensitivity meaningless.
        abft_limit = sensitivity.smallest_detected_magnitude("abft-online")
        spatial_limit = sensitivity.smallest_detected_magnitude("spatial-interpolation")
        spatial_fpr = sensitivity.false_positive_rates["spatial-interpolation"]
        assert not math.isnan(abft_limit)
        assert abft_limit <= 1e-2
        assert (
            math.isnan(spatial_limit)
            or abft_limit <= spatial_limit
            or spatial_fpr > 0.0
        )

    def test_abft_no_false_positives(self, sensitivity):
        assert sensitivity.false_positive_rates["abft-online"] == 0.0

    def test_detection_monotone_with_magnitude(self, sensitivity):
        curve = sensitivity.curve("abft-online")
        rates = [p.detection_rate for p in curve]  # ordered large -> small
        assert rates[0] >= rates[-1]

    def test_formatting(self, sensitivity):
        text = format_sensitivity(sensitivity)
        assert "Detection sensitivity" in text
        assert "False-positive rate" in text
