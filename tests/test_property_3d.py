"""Property-based tests for 3D (per-layer) ABFT behaviour."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksums import checksum
from repro.core.interpolation import interpolate_checksum
from repro.core.layered import split_checksum_by_layer
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep


def boundary_conditions():
    return st.sampled_from(
        [
            BoundaryCondition.clamp(),
            BoundaryCondition.periodic(),
            BoundaryCondition.zero(),
            BoundaryCondition.constant(0.5),
        ]
    )


@st.composite
def stencil_specs_3d(draw):
    offsets = st.tuples(
        st.integers(-1, 1), st.integers(-1, 1), st.integers(-1, 1)
    )
    points = draw(
        st.dictionaries(
            offsets,
            st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=9,
        )
    )
    return StencilSpec.from_dict(points)


@st.composite
def domains_3d(draw):
    nx = draw(st.integers(3, 7))
    ny = draw(st.integers(3, 7))
    nz = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).uniform(-8.0, 8.0, size=(nx, ny, nz))


@given(domain=domains_3d(), spec=stencil_specs_3d(), bc=boundary_conditions(),
       axis=st.sampled_from([0, 1]))
@settings(max_examples=40)
def test_3d_interpolation_matches_direct_checksum(domain, spec, bc, axis):
    """Theorem 1 applied per layer (vectorised) holds for arbitrary 3D stencils."""
    bspec = BoundarySpec.uniform(bc, 3)
    new_domain = sweep(domain, spec, bspec)
    predicted = interpolate_checksum(checksum(domain, axis), domain, spec, bspec, axis)
    np.testing.assert_allclose(predicted, checksum(new_domain, axis),
                               rtol=1e-9, atol=1e-9)


@given(domain=domains_3d(), spec=stencil_specs_3d(), bc=boundary_conditions())
@settings(max_examples=25)
def test_layered_checksums_consistent_with_full_domain_checksums(domain, spec, bc):
    """The vectorised all-layer checksum equals the per-layer 2D checksums
    (the paper's formulation) after a sweep."""
    bspec = BoundarySpec.uniform(bc, 3)
    new_domain = sweep(domain, spec, bspec)
    full = checksum(new_domain, 0)
    per_layer = split_checksum_by_layer(full)
    for z, vec in enumerate(per_layer):
        np.testing.assert_allclose(vec, new_domain[:, :, z].sum(axis=0), rtol=1e-12)


@given(domain=domains_3d(), bc=boundary_conditions(),
       seed=st.integers(0, 2**16),
       corruption=st.floats(10.0, 1e5, allow_nan=False))
@settings(max_examples=25)
def test_3d_single_corruption_localised_to_its_layer(domain, bc, seed, corruption):
    """A corrupted point only perturbs the checksum entries of its own layer."""
    from repro.core.detection import detect_errors

    spec = StencilSpec.seven_point_3d(0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
    bspec = BoundarySpec.uniform(bc, 3)
    new_domain = sweep(domain, spec, bspec)
    predicted = interpolate_checksum(checksum(domain, 0), domain, spec, bspec, 0)

    rng = np.random.default_rng(seed)
    x = int(rng.integers(0, domain.shape[0]))
    y = int(rng.integers(0, domain.shape[1]))
    z = int(rng.integers(0, domain.shape[2]))
    new_domain[x, y, z] += corruption

    result = detect_errors(checksum(new_domain, 0), predicted, 1e-7)
    assert result.detected
    flagged_layers = {int(idx[1]) for idx in result.mismatch_indices}
    assert flagged_layers == {z}
