"""Backend registry and cross-backend numerical equivalence tests.

Every registered backend must match the ``numpy`` reference within the
detection threshold of :func:`repro.core.thresholds.recommend_epsilon`
across the whole stencil library (2D and 3D, every boundary condition),
and the checksums its fused sweep produces must equal post-hoc
``checksum()`` results — otherwise swapping backends would change the
false-positive/detection behaviour the paper calibrates.
"""

import numpy as np
import pytest

from conftest import all_boundary_conditions, stencil_library_2d, stencil_library_3d

from repro.backends import (
    Backend,
    FusedBackend,
    NumpyBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    unavailable_backends,
)
from repro.backends.numba_backend import NUMBA_AVAILABLE
from repro.backends.registry import BUILTIN_DEFAULT, ENV_VAR
from repro.core.checksums import checksum
from repro.core.online import OnlineABFT
from repro.core.thresholds import recommend_epsilon
from repro.faults.injector import FaultInjector, FaultPlan
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.shift import pad_array
from repro.stencil.sweep import sweep_with_checksums

REFERENCE = "numpy"

SHAPE_2D = (24, 18)
SHAPE_3D = (12, 10, 4)


def _domain(rng, shape):
    return (rng.random(shape) * 100.0).astype(np.float32)


def _relative_mismatch(value, reference):
    scale = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(value - reference) / scale))


def _spec_id(spec):
    return f"{spec.ndim}d-{spec.npoints}pt"


@pytest.fixture(params=sorted(set(available_backends())))
def backend_name(request):
    return request.param


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "fused" in names
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("fused"), FusedBackend)

    def test_backends_are_singletons(self):
        assert get_backend("fused") is get_backend("fused")

    def test_reference_alias(self):
        assert get_backend("reference") is get_backend("numpy")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("cuda-42")

    def test_instance_passthrough(self):
        be = NumpyBackend()
        assert get_backend(be) is be

    def test_default_resolution_chain(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        set_default_backend(None)
        assert default_backend_name() == BUILTIN_DEFAULT
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"
        assert isinstance(get_backend(), NumpyBackend)
        try:
            set_default_backend("fused")  # override beats the env var
            assert default_backend_name() == "fused"
        finally:
            set_default_backend(None)

    def test_set_default_validates_name(self):
        with pytest.raises(KeyError):
            set_default_backend("no-such-backend")

    def test_register_custom_backend(self):
        class TracingBackend(NumpyBackend):
            name = "tracing-test"

        register_backend(TracingBackend())
        try:
            assert "tracing-test" in available_backends()
            assert isinstance(get_backend("tracing-test"), TracingBackend)
        finally:
            from repro.backends.registry import _REGISTRY

            _REGISTRY.pop("tracing-test", None)


class TestSweepEquivalence:
    @pytest.mark.parametrize("spec", stencil_library_2d(), ids=_spec_id)
    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_2d_matches_reference(self, rng, backend_name, spec, bc):
        self._check_sweep(rng, backend_name, spec, bc, SHAPE_2D, constant=False)

    @pytest.mark.parametrize("spec", stencil_library_3d(), ids=_spec_id)
    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_3d_matches_reference(self, rng, backend_name, spec, bc):
        self._check_sweep(rng, backend_name, spec, bc, SHAPE_3D, constant=True)

    def _check_sweep(self, rng, backend_name, spec, bc, shape, constant):
        u = _domain(rng, shape)
        const = (
            (rng.random(shape) * 0.1).astype(np.float32) if constant else None
        )
        radius = spec.radius()
        padded = pad_array(u, radius, bc)
        reference = get_backend(REFERENCE).sweep_padded(
            padded, spec, radius, shape, constant=const
        )
        result = get_backend(backend_name).sweep_padded(
            padded, spec, radius, shape, constant=const
        )
        eps = recommend_epsilon(shape, 0, np.float32, spec)
        assert _relative_mismatch(result, reference) <= eps

    def test_out_parameter_respected(self, rng, backend_name):
        spec = stencil_library_2d()[0]
        u = _domain(rng, SHAPE_2D)
        padded = pad_array(u, spec.radius(), BoundaryCondition.clamp())
        out = np.full(SHAPE_2D, np.nan, dtype=np.float32)
        result = get_backend(backend_name).sweep_padded(
            padded, spec, spec.radius(), SHAPE_2D, out=out
        )
        assert result is out
        reference = get_backend(REFERENCE).sweep_padded(
            padded, spec, spec.radius(), SHAPE_2D
        )
        np.testing.assert_allclose(out, reference, rtol=1e-6)

    def test_out_shape_validated(self, rng, backend_name):
        spec = stencil_library_2d()[0]
        u = _domain(rng, SHAPE_2D)
        padded = pad_array(u, spec.radius(), BoundaryCondition.clamp())
        with pytest.raises(ValueError, match="out has shape"):
            get_backend(backend_name).sweep_padded(
                padded, spec, spec.radius(), SHAPE_2D, out=np.empty((3, 3), np.float32)
            )


class TestSweepInto:
    """The zero-copy primitive must equal the allocating sweep bitwise."""

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_matches_sweep_padded(self, rng, backend_name, bc):
        from repro.stencil.shift import interior_view, padded_shape

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, bc)
        reference = get_backend(backend_name).sweep_padded(
            padded, spec, radius, SHAPE_2D
        )
        dst = np.full(padded_shape(SHAPE_2D, radius), np.nan, dtype=np.float32)
        result = get_backend(backend_name).sweep_into(
            padded, dst, spec, radius, SHAPE_2D
        )
        assert np.shares_memory(result, dst)
        np.testing.assert_array_equal(result, reference)
        np.testing.assert_array_equal(interior_view(dst, radius), reference)

    def test_overlapping_buffers_fall_back_safely(self, rng, backend_name):
        """src == dst must still produce the correct result (via copy)."""
        from repro.stencil.shift import interior_view

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        reference = get_backend(backend_name).sweep_padded(
            padded, spec, radius, SHAPE_2D
        )
        get_backend(backend_name).sweep_into(
            padded, padded, spec, radius, SHAPE_2D
        )
        np.testing.assert_array_equal(interior_view(padded, radius), reference)

    def test_dst_shape_validated(self, rng, backend_name):
        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        with pytest.raises(ValueError, match="dst_padded has shape"):
            get_backend(backend_name).sweep_into(
                padded, np.empty((5, 5), np.float32), spec, radius, SHAPE_2D
            )

    def test_sweep_into_with_checksums_matches_posthoc(self, rng, backend_name):
        from repro.stencil.shift import padded_shape

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        dst = np.empty(padded_shape(SHAPE_2D, radius), dtype=np.float32)
        new, cs = get_backend(backend_name).sweep_into_with_checksums(
            padded, dst, spec, radius, SHAPE_2D, (0, 1), checksum_dtype=np.float64
        )
        for axis in (0, 1):
            # The accumulation *order* is backend-owned: a per-point fused
            # kernel sums sequentially while numpy.sum reduces pairwise,
            # so the float64 results agree to a few ULPs rather than bit
            # for bit — orders of magnitude inside the detection epsilon.
            assert _relative_mismatch(
                cs[axis], checksum(new, axis, dtype=np.float64)
            ) <= 1e-10

    def test_module_dispatcher(self, rng):
        from repro.stencil.shift import padded_shape
        from repro.stencil.sweep import sweep_into

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        dst = np.empty(padded_shape(SHAPE_2D, radius), dtype=np.float32)
        result = sweep_into(padded, dst, spec, radius, SHAPE_2D, backend="fused")
        np.testing.assert_array_equal(
            result,
            get_backend("numpy").sweep_padded(padded, spec, radius, SHAPE_2D),
        )

    def test_copy_fallback_for_minimal_backend(self, rng):
        """A backend providing only sweep_padded still lands in dst."""
        from repro.stencil.shift import interior_view, padded_shape

        class MinimalBackend(Backend):
            name = "minimal-test"

            def sweep_padded(self, padded, spec, radius, interior_shape,
                             constant=None, out=None):
                # Deliberately ignores ``out`` — the fallback must copy.
                return get_backend(REFERENCE).sweep_padded(
                    padded, spec, radius, interior_shape, constant=constant
                )

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        dst = np.full(padded_shape(SHAPE_2D, radius), np.nan, dtype=np.float32)
        result = MinimalBackend().sweep_into(padded, dst, spec, radius, SHAPE_2D)
        np.testing.assert_array_equal(
            interior_view(dst, radius),
            get_backend(REFERENCE).sweep_padded(padded, spec, radius, SHAPE_2D),
        )
        assert np.shares_memory(result, dst)


class TestFusedChecksums:
    @pytest.mark.parametrize(
        "spec",
        stencil_library_2d() + stencil_library_3d(),
        ids=_spec_id,
    )
    @pytest.mark.parametrize("checksum_dtype", [np.float64, None], ids=["f64", "domain"])
    def test_fused_checksums_match_posthoc(
        self, rng, backend_name, spec, checksum_dtype
    ):
        shape = SHAPE_2D if spec.ndim == 2 else SHAPE_3D
        u = _domain(rng, shape)
        radius = spec.radius()
        padded = pad_array(u, radius, BoundaryCondition.clamp())
        new, cs = get_backend(backend_name).sweep_with_checksums(
            padded, spec, radius, shape, (0, 1), checksum_dtype=checksum_dtype
        )
        assert set(cs) == {0, 1}
        for axis in (0, 1):
            posthoc = checksum(new, axis, dtype=checksum_dtype)
            eps = recommend_epsilon(shape, axis, np.float32, spec)
            assert _relative_mismatch(cs[axis], posthoc) <= eps

    def test_sweep_with_checksums_dispatcher(self, rng, backend_name):
        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        padded = pad_array(u, spec.radius(), BoundaryCondition.clamp())
        new, cs = sweep_with_checksums(
            padded, spec, spec.radius(), SHAPE_2D, (0,), backend=backend_name
        )
        # dtype=None accumulates in float32, where the backend-owned
        # accumulation order (sequential per point vs numpy's pairwise
        # reduction) is visible at ~1e-7 relative — far below epsilon.
        np.testing.assert_allclose(cs[0], checksum(new, 0, dtype=None), rtol=1e-6)


class TestGridAndProtectorAcrossBackends:
    def test_grid_runs_are_equivalent(self, rng, backend_name):
        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        ref = Grid2D(u, spec, BoundaryCondition.clamp(), backend=REFERENCE)
        ref.run(8)
        other = Grid2D(u, spec, BoundaryCondition.clamp(), backend=backend_name)
        other.run(8)
        eps = recommend_epsilon(SHAPE_2D, 0, np.float32, spec)
        assert _relative_mismatch(other.u, ref.u) <= eps

    def test_grid_step_with_checksums_records_last(self, rng, backend_name):
        spec = stencil_library_3d()[0]
        u = _domain(rng, SHAPE_3D)
        grid = Grid3D(u, spec, BoundaryCondition.clamp(), backend=backend_name)
        new, cs = grid.step_with_checksums((0,), checksum_dtype=np.float64)
        assert grid.last_checksums is cs
        np.testing.assert_array_equal(cs[0], checksum(new, 0, dtype=np.float64))
        grid.step()
        assert grid.last_checksums is None

    def test_online_abft_detects_and_corrects_on_every_backend(
        self, rng, backend_name
    ):
        spec = stencil_library_2d()[1]
        u = _domain(rng, (32, 28))
        grid = Grid2D(u, spec, BoundaryCondition.clamp(), backend=backend_name)
        protector = OnlineABFT.for_grid(grid, backend=backend_name)
        inject = FaultInjector([FaultPlan(iteration=5, index=(10, 12), bit=27)])
        report = protector.run(grid, 12, inject=inject)
        assert report.total_detected >= 1
        assert report.total_corrected >= 1

    def test_online_abft_clean_run_no_false_positives(self, rng, backend_name):
        spec = stencil_library_2d()[1]
        u = _domain(rng, (32, 28))
        grid = Grid2D(u, spec, BoundaryCondition.clamp(), backend=backend_name)
        protector = OnlineABFT.for_grid(grid, backend=backend_name)
        report = protector.run(grid, 10)
        assert report.total_detected == 0

    def test_fused_and_reference_protected_runs_agree(self, rng):
        spec = stencil_library_2d()[1]
        u = _domain(rng, (32, 28))
        finals = {}
        for name in (REFERENCE, "fused"):
            grid = Grid2D(u, spec, BoundaryCondition.clamp(), backend=name)
            OnlineABFT.for_grid(grid, backend=name).run(grid, 10)
            finals[name] = grid.u
        np.testing.assert_array_equal(finals[REFERENCE], finals["fused"])


def _fresh_pair(u, radius, ghost_fill=np.nan):
    """A (src, dst) padded pair with ``u`` in the src interior.

    The halos are poisoned with ``ghost_fill`` so a step that skips the
    ghost refresh (or refreshes the wrong cells) contaminates the sweep
    visibly instead of reusing leftover values.
    """
    from repro.stencil.shift import interior_view, padded_shape

    shape = padded_shape(u.shape, radius)
    src = np.full(shape, ghost_fill, dtype=u.dtype)
    interior_view(src, radius)[...] = u
    dst = np.full(shape, ghost_fill, dtype=u.dtype)
    return src, dst


def _mixed_boundaries(ndim):
    """Per-axis heterogeneous boundary specs (corner semantics matter)."""
    if ndim == 2:
        return [
            (BoundaryCondition.clamp(), BoundaryCondition.constant(2.5)),
            (BoundaryCondition.periodic(), BoundaryCondition.clamp()),
            (BoundaryCondition.constant(1.5), BoundaryCondition.constant(-3.0)),
            (BoundaryCondition.zero(), BoundaryCondition.periodic()),
        ]
    return [
        (
            BoundaryCondition.clamp(),
            BoundaryCondition.periodic(),
            BoundaryCondition.zero(),
        ),
        (
            BoundaryCondition.constant(4.0),
            BoundaryCondition.clamp(),
            BoundaryCondition.constant(-1.0),
        ),
    ]


class TestBackendOwnedStep:
    """``step_into*`` (ghost refresh owned by the backend) must be
    bit-identical to the classic refresh-then-``sweep_into`` sequence —
    for every boundary kind, heterogeneous per-axis boundaries included,
    in 2D and 3D.  This pins the fused single-traversal path of JIT
    backends to the interpreted semantics."""

    def _check_step(self, rng, backend_name, boundary, spec, shape,
                    constant=False):
        from repro.stencil.shift import refresh_ghosts

        be = get_backend(backend_name)
        u = _domain(rng, shape)
        const = (
            (rng.random(shape) * 0.1).astype(np.float32) if constant else None
        )
        radius = spec.radius()

        src_ref, dst_ref = _fresh_pair(u, radius)
        refresh_ghosts(src_ref, radius, boundary)
        expected = be.sweep_into(
            src_ref, dst_ref, spec, radius, shape, constant=const
        )

        src, dst = _fresh_pair(u, radius)
        result = be.step_into(
            src, dst, spec, radius, shape, boundary, constant=const
        )
        assert np.shares_memory(result, dst)
        np.testing.assert_array_equal(result, expected)
        # The source halo must hold the boundary condition afterwards
        # (the protectors interpolate from it), exactly as the
        # interpreted refresh leaves it.
        np.testing.assert_array_equal(src, src_ref)

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_2d_matches_refresh_then_sweep(self, rng, backend_name, bc):
        self._check_step(rng, backend_name, bc, stencil_library_2d()[1], SHAPE_2D)

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_3d_matches_refresh_then_sweep(self, rng, backend_name, bc):
        self._check_step(
            rng, backend_name, bc, stencil_library_3d()[0], SHAPE_3D,
            constant=True,
        )

    @pytest.mark.parametrize("spec", stencil_library_2d(), ids=_spec_id)
    def test_2d_asymmetric_and_wide_stencils(self, rng, backend_name, spec):
        self._check_step(
            rng, backend_name, BoundaryCondition.periodic(), spec, SHAPE_2D
        )

    def test_2d_mixed_axis_boundaries(self, rng, backend_name):
        for boundary in _mixed_boundaries(2):
            self._check_step(
                rng, backend_name, boundary, stencil_library_2d()[2], SHAPE_2D
            )

    def test_3d_mixed_axis_boundaries(self, rng, backend_name):
        for boundary in _mixed_boundaries(3):
            self._check_step(
                rng, backend_name, boundary, stencil_library_3d()[1], SHAPE_3D
            )

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_step_checksums_match_posthoc(self, rng, backend_name, bc):
        be = get_backend(backend_name)
        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        src, dst = _fresh_pair(u, spec.radius())
        new, cs = be.step_into_with_checksums(
            src, dst, spec, spec.radius(), SHAPE_2D, bc, (0, 1),
            checksum_dtype=np.float64,
        )
        assert set(cs) == {0, 1}
        for axis in (0, 1):
            assert _relative_mismatch(
                cs[axis], checksum(new, axis, dtype=np.float64)
            ) <= 1e-10

    def test_degenerate_periodic_halo_handled(self, rng, backend_name):
        """Ghost wider than the interior: interpreted backends take the
        base refresh-then-sweep path, a compiling backend generates the
        modular-tiling kernel and fuses it — either way the result is
        pad_array-exact."""
        from repro.stencil.spec import StencilSpec

        spec = StencilSpec.from_dict(
            {(-2, 0): 0.2, (2, 0): 0.2, (0, -1): 0.3, (0, 1): 0.3}
        )
        shape = (1, 6)  # interior extent 1 < radius 2 along axis 0
        bc = BoundaryCondition.periodic()
        be = get_backend(backend_name)
        assert (
            be.supports_fused_step(spec, bc, spec.radius(), shape)
            == be.compiles_kernels
        )
        u = _domain(rng, shape)
        expected = get_backend(REFERENCE).sweep_padded(
            pad_array(u, spec.radius(), bc), spec, spec.radius(), shape
        )
        src, dst = _fresh_pair(u, spec.radius())
        result = be.step_into(src, dst, spec, spec.radius(), shape, bc)
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    def test_grid_step_fast_path_matches_classic_pipeline(
        self, rng, backend_name, bc
    ):
        """``Grid2D.step`` (whole iteration delegated to the backend)
        must track the explicit refresh + ``sweep_into`` + swap sequence
        bit for bit over several iterations."""
        be = get_backend(backend_name)
        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        fast = Grid2D(u, spec, bc, backend=backend_name)
        fast.run(6)
        classic = Grid2D(u, spec, bc, backend=backend_name)
        for _ in range(6):
            padded = classic.buffers.refresh()
            be.sweep_into(
                padded, classic.buffers.back, spec, classic.radius,
                classic.shape,
            )
            classic._commit(padded, None)
        np.testing.assert_array_equal(fast.u, classic.u)
        assert fast.iteration == classic.iteration == 6

    def test_grid_step_with_checksums_uses_backend_owned_step(
        self, rng, backend_name
    ):
        """The protected fast path delivers checksums of the buffer the
        pair just swapped in, and leaves previous_padded's halo valid."""
        from repro.stencil.shift import interior_view

        spec = stencil_library_2d()[1]
        u = _domain(rng, SHAPE_2D)
        grid = Grid2D(u, spec, BoundaryCondition.clamp(), backend=backend_name)
        new, cs = grid.step_with_checksums((0, 1), checksum_dtype=np.float64)
        for axis in (0, 1):
            assert _relative_mismatch(
                cs[axis], checksum(grid.u, axis, dtype=np.float64)
            ) <= 1e-10
        # previous_padded must carry a refreshed halo (clamp: ghost rows
        # equal the adjacent interior rows) for the ABFT interpolation.
        prev = grid.previous_padded
        interior = interior_view(prev, grid.radius)
        np.testing.assert_array_equal(prev[0, 1:-1], interior[0])
        np.testing.assert_array_equal(prev[-1, 1:-1], interior[-1])


class TestOptionalNumbaBackend:
    """Import gating: present and equivalent with numba, cleanly absent
    (not erroring) without it."""

    def test_module_importable_either_way(self):
        import repro.backends.numba_backend as mod

        assert isinstance(mod.NUMBA_AVAILABLE, bool)
        assert mod.UNAVAILABLE_REASON

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_absent_without_numba(self):
        assert "numba" not in available_backends()
        assert "numba" in unavailable_backends()
        with pytest.raises(KeyError, match="unavailable"):
            get_backend("numba")
        from repro.backends.numba_backend import NumbaBackend

        with pytest.raises(RuntimeError, match="numba"):
            NumbaBackend()

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_registered_with_numba(self):
        from repro.backends import NumbaBackend

        assert "numba" in available_backends()
        assert "numba" not in unavailable_backends()
        assert isinstance(get_backend("numba"), NumbaBackend)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_advertises_fused_step_for_every_layout(self):
        from repro.stencil.spec import StencilSpec

        be = get_backend("numba")
        spec = stencil_library_2d()[1]
        assert be.supports_fused_step(
            spec, BoundaryCondition.clamp(), spec.radius(), SHAPE_2D
        )
        # Degenerate periodic halo (ghost wider than the interior): the
        # halo plan lowers it to the modular tiling — no decline.
        wide = StencilSpec.from_dict({(-2, 0): 0.5, (2, 0): 0.5})
        assert be.supports_fused_step(
            wide, BoundaryCondition.periodic(), wide.radius(), (1, 6)
        )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_warmup_compiles_all_kernels(self):
        # Must not raise, and must cover 2D and 3D kernel families.
        be = get_backend("numba")
        be.warmup(stencil_library_2d()[1], BoundaryCondition.clamp())
        be.warmup(stencil_library_3d()[0], BoundaryCondition.periodic())

    def test_cli_listing_shows_availability(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numba" in out
        numba_line = next(l for l in out.splitlines() if l.startswith("numba"))
        if NUMBA_AVAILABLE:
            assert "unavailable" not in numba_line
        else:
            assert "unavailable" in numba_line

    def test_cli_kernels_listing(self, capsys):
        from repro.cli import main

        assert main(["backends", "--kernels"]) == 0
        out = capsys.readouterr().out
        if NUMBA_AVAILABLE:
            get_backend("numba").warmup(
                stencil_library_2d()[1], BoundaryCondition.clamp()
            )
            capsys.readouterr()
            assert main(["backends", "--kernels"]) == 0
            out = capsys.readouterr().out
            assert "compiled kernel module" in out
            assert "codegen" in out
        else:
            assert "no compiling backends registered" in out
