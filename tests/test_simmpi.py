"""Tests for the simulated message-passing (distributed-memory) runner."""

import numpy as np
import pytest

from repro.core.protector import NoProtection
from repro.metrics.accuracy import l2_error
from repro.parallel.simmpi import DistributedStencilRunner, SimChannel
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.kernels import (
    asymmetric_advection_2d,
    five_point_diffusion,
    seven_point_diffusion_3d,
)


def _grid_2d(rng, shape=(24, 18), bc=None, spec=None):
    spec = spec or five_point_diffusion(0.2)
    bc = bc or BoundaryCondition.clamp()
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, spec, bc)


class TestSimChannel:
    def test_send_recv_fifo(self):
        channel = SimChannel()
        channel.send(0, 1, "halo", np.array([1.0, 2.0]))
        channel.send(0, 1, "halo", np.array([3.0]))
        np.testing.assert_array_equal(channel.recv(0, 1, "halo"), [1.0, 2.0])
        np.testing.assert_array_equal(channel.recv(0, 1, "halo"), [3.0])
        assert channel.pending() == 0

    def test_payload_copied_on_send(self):
        channel = SimChannel()
        payload = np.array([1.0, 2.0])
        channel.send(0, 1, "x", payload)
        payload[0] = 99.0
        np.testing.assert_array_equal(channel.recv(0, 1, "x"), [1.0, 2.0])

    def test_missing_message_raises(self):
        with pytest.raises(RuntimeError, match="no message"):
            SimChannel().recv(0, 1, "halo")

    def test_traffic_counters(self):
        channel = SimChannel()
        channel.send(0, 1, "a", np.zeros(4, dtype=np.float64))
        assert channel.messages_sent == 1
        assert channel.bytes_sent == 32


class TestDistributedEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_distributed_run_bitwise_equals_single_grid(self, rng, n_ranks):
        grid = _grid_2d(rng)
        single = grid.copy()
        runner = DistributedStencilRunner(grid, n_ranks=n_ranks, protect=False)
        runner.run(8)
        NoProtection().run(single, 8)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_periodic_boundary_wraps_between_first_and_last_rank(self, rng):
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        single = grid.copy()
        runner = DistributedStencilRunner(grid, n_ranks=3, protect=False)
        runner.run(6)
        NoProtection().run(single, 6)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_asymmetric_stencil_equivalence(self, rng):
        grid = _grid_2d(rng, spec=asymmetric_advection_2d(0.25, 0.15))
        single = grid.copy()
        runner = DistributedStencilRunner(grid, n_ranks=4, protect=False)
        runner.run(5)
        NoProtection().run(single, 5)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_3d_domain_with_constant_term(self, rng):
        u0 = (rng.random((16, 10, 4)) * 50).astype(np.float32)
        constant = (rng.random((16, 10, 4)) * 0.2).astype(np.float32)
        grid = Grid3D(u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp(),
                      constant=constant)
        single = grid.copy()
        runner = DistributedStencilRunner(grid, n_ranks=4, protect=False)
        runner.run(6)
        NoProtection().run(single, 6)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_halo_messages_flow_every_iteration(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=4, protect=False)
        runner.run(3)
        # 4 ranks in a line: 3 interfaces x 2 directions x 3 iterations.
        assert runner.channel.messages_sent == 18
        assert runner.channel.pending() == 0

    def test_invalid_rank_count(self, rng):
        with pytest.raises(ValueError):
            DistributedStencilRunner(_grid_2d(rng), n_ranks=0)


class TestDistributedProtection:
    def test_error_free_no_detection(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=3, protect=True, epsilon=1e-5)
        runner.run(10)
        assert runner.total_detected() == 0

    def test_rank_local_detection_and_correction(self, rng):
        grid = _grid_2d(rng)
        reference = grid.copy()
        reference.run(10)

        target_global = (15, 7)
        runner = DistributedStencilRunner(grid, n_ranks=3, protect=True, epsilon=1e-5)
        target_rank, target_local = runner.rank_of_global_index(target_global)

        def inject(run, iteration, rank):
            from repro.faults.bitflip import flip_bit_in_array

            if iteration == 4 and rank.rank == target_rank:
                flip_bit_in_array(rank.interior, target_local, 26)

        runner.run(10, inject=inject)
        assert runner.total_detected() >= 1
        assert runner.total_corrected() >= 1
        # Only the struck rank's protector fired.
        for r in runner.ranks:
            if r.rank == target_rank:
                assert r.protector.total_detections >= 1
            else:
                assert r.protector.total_detections == 0
        assert l2_error(reference.u, runner.gather()) < 1.0

    def test_rank_of_global_index(self, rng):
        grid = _grid_2d(rng, shape=(10, 6))
        runner = DistributedStencilRunner(grid, n_ranks=2, protect=False)
        rank, local = runner.rank_of_global_index((7, 3))
        assert rank == 1
        assert local == (2, 3)
        with pytest.raises(ValueError):
            runner.rank_of_global_index((99, 0))
