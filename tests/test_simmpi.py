"""Tests for the simulated message-passing (distributed-memory) runner."""

import tracemalloc

import numpy as np
import pytest

from conftest import all_boundary_conditions
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.faults.bitflip import flip_bit_in_array
from repro.metrics.accuracy import l2_error
from repro.parallel.simmpi import DistributedStencilRunner, SimChannel
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.kernels import (
    asymmetric_advection_2d,
    five_point_diffusion,
    seven_point_diffusion_3d,
)


def _grid_2d(rng, shape=(24, 18), bc=None, spec=None):
    spec = spec or five_point_diffusion(0.2)
    bc = bc or BoundaryCondition.clamp()
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, spec, bc)


class TestSimChannel:
    def test_send_recv_fifo(self):
        channel = SimChannel()
        channel.send(0, 1, "halo", np.array([1.0, 2.0]))
        channel.send(0, 1, "halo", np.array([3.0]))
        np.testing.assert_array_equal(channel.recv(0, 1, "halo"), [1.0, 2.0])
        np.testing.assert_array_equal(channel.recv(0, 1, "halo"), [3.0])
        assert channel.pending() == 0

    def test_payload_copied_on_send(self):
        channel = SimChannel()
        payload = np.array([1.0, 2.0])
        channel.send(0, 1, "x", payload)
        payload[0] = 99.0
        np.testing.assert_array_equal(channel.recv(0, 1, "x"), [1.0, 2.0])

    def test_missing_message_raises(self):
        with pytest.raises(RuntimeError, match="no message"):
            SimChannel().recv(0, 1, "halo")

    def test_traffic_counters(self):
        channel = SimChannel()
        channel.send(0, 1, "a", np.zeros(4, dtype=np.float64))
        assert channel.messages_sent == 1
        assert channel.bytes_sent == 32

    def test_per_tag_accounting(self):
        channel = SimChannel()
        channel.send(0, 1, "to_lo", np.zeros(4, dtype=np.float64))
        channel.send(1, 0, "to_hi", np.zeros(2, dtype=np.float64))
        channel.send(2, 1, "to_hi", np.zeros(3, dtype=np.float64))
        assert channel.messages_by_tag == {"to_lo": 1, "to_hi": 2}
        assert channel.bytes_by_tag == {"to_lo": 32, "to_hi": 40}
        snapshot = channel.traffic()
        assert snapshot["messages_sent"] == 3
        assert snapshot["bytes_sent"] == 72
        assert snapshot["messages_by_tag"] == {"to_lo": 1, "to_hi": 2}
        assert snapshot["bytes_by_tag"] == {"to_lo": 32, "to_hi": 40}
        # The snapshot is a copy, not a live view of the counters.
        snapshot["messages_by_tag"]["to_lo"] = 99
        assert channel.messages_by_tag["to_lo"] == 1


class TestDistributedEquivalence:
    """The unprotected equivalence tests take the session-wide
    ``--block-steps`` factor (CI runs this file with ``--block-steps 2``
    under the compiled-step gate): periodic domains genuinely run the
    deep-halo blocked schedule, while clamp/constant configurations cap
    back to ``k=1`` — either way the gather must stay bit-identical."""

    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_distributed_run_bitwise_equals_single_grid(
        self, rng, n_ranks, block_steps
    ):
        grid = _grid_2d(rng)
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=n_ranks, protect=False, block_steps=block_steps
        )
        runner.run(8)
        NoProtection().run(single, 8)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_periodic_boundary_wraps_between_first_and_last_rank(
        self, rng, block_steps
    ):
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, block_steps=block_steps
        )
        assert runner.effective_block_steps == block_steps
        runner.run(6)
        NoProtection().run(single, 6)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_asymmetric_stencil_equivalence(self, rng, block_steps):
        grid = _grid_2d(
            rng, bc=BoundaryCondition.periodic(),
            spec=asymmetric_advection_2d(0.25, 0.15),
        )
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=False, block_steps=block_steps
        )
        runner.run(5)
        NoProtection().run(single, 5)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_3d_domain_with_constant_term(self, rng, block_steps):
        u0 = (rng.random((16, 10, 4)) * 50).astype(np.float32)
        constant = (rng.random((16, 10, 4)) * 0.2).astype(np.float32)
        grid = Grid3D(u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp(),
                      constant=constant)
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=False, block_steps=block_steps
        )
        runner.run(6)
        NoProtection().run(single, 6)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_halo_messages_flow_every_iteration(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=4, protect=False)
        runner.run(3)
        # 4 ranks in a line: 3 interfaces x 2 directions x 3 iterations.
        assert runner.channel.messages_sent == 18
        assert runner.channel.pending() == 0

    def test_invalid_rank_count(self, rng):
        with pytest.raises(ValueError):
            DistributedStencilRunner(_grid_2d(rng), n_ranks=0)


class TestDecompositionAxis:
    """Non-default decomposition axes — including the orderings where the
    external (halo-ingested) axis comes *after* refreshed axes, which the
    old hand-written kernels declined and the kernel compiler now
    compiles like any other layout."""

    @pytest.mark.parametrize("n_ranks", [1, 2, 3])
    def test_axis1_run_bitwise_equals_single_grid(self, rng, n_ranks, block_steps):
        grid = _grid_2d(rng)
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=n_ranks, protect=False, axis=1, block_steps=block_steps
        )
        assert runner.axis == 1
        runner.run(8)
        NoProtection().run(single, 8)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_axis1_periodic_wraps(self, rng, block_steps):
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, axis=1, block_steps=block_steps
        )
        assert runner.effective_block_steps == block_steps
        runner.run(6)
        NoProtection().run(single, 6)
        np.testing.assert_array_equal(runner.gather(), single.u)

    @pytest.mark.parametrize("axis", [1, 2])
    def test_3d_middle_and_last_axis(self, rng, axis, block_steps):
        u0 = (rng.random((10, 12, 8)) * 50).astype(np.float32)
        constant = (rng.random((10, 12, 8)) * 0.2).astype(np.float32)
        grid = Grid3D(
            u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp(),
            constant=constant,
        )
        single = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, axis=axis, block_steps=block_steps
        )
        runner.run(5)
        NoProtection().run(single, 5)
        np.testing.assert_array_equal(runner.gather(), single.u)

    def test_axis1_protected_detection_and_correction(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(
            grid, n_ranks=2, protect=True, epsilon=1e-5, axis=1
        )

        def inject(run, iteration, rank):
            if iteration == 3 and rank.rank == 1:
                rank.interior[5, 2] += 2048.0

        runner.run(6, inject=inject)
        assert runner.total_detected() >= 1
        assert runner.total_corrected() >= 1

    def test_rank_of_global_index_on_axis1(self, rng):
        grid = _grid_2d(rng, shape=(8, 24))
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, axis=1
        )
        rank, local = runner.rank_of_global_index((4, 17))
        assert rank == 2
        assert local == (4, 1)

    def test_invalid_axis(self, rng):
        with pytest.raises(ValueError, match="axis"):
            DistributedStencilRunner(_grid_2d(rng), n_ranks=2, axis=2)


class TestDistributedProtection:
    def test_error_free_no_detection(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=3, protect=True, epsilon=1e-5)
        runner.run(10)
        assert runner.total_detected() == 0

    def test_rank_local_detection_and_correction(self, rng):
        grid = _grid_2d(rng)
        reference = grid.copy()
        reference.run(10)

        target_global = (15, 7)
        runner = DistributedStencilRunner(grid, n_ranks=3, protect=True, epsilon=1e-5)
        target_rank, target_local = runner.rank_of_global_index(target_global)

        def inject(run, iteration, rank):
            from repro.faults.bitflip import flip_bit_in_array

            if iteration == 4 and rank.rank == target_rank:
                flip_bit_in_array(rank.interior, target_local, 26)

        runner.run(10, inject=inject)
        assert runner.total_detected() >= 1
        assert runner.total_corrected() >= 1
        # Only the struck rank's protector fired.
        for r in runner.ranks:
            if r.rank == target_rank:
                assert r.protector.total_detections >= 1
            else:
                assert r.protector.total_detections == 0
        assert l2_error(reference.u, runner.gather()) < 1.0

    def test_rank_of_global_index(self, rng):
        grid = _grid_2d(rng, shape=(10, 6))
        runner = DistributedStencilRunner(grid, n_ranks=2, protect=False)
        rank, local = runner.rank_of_global_index((7, 3))
        assert rank == 1
        assert local == (2, 3)
        with pytest.raises(ValueError):
            runner.rank_of_global_index((99, 0))


class TestZeroCopyRankLifecycle:
    """The buffer-pair rank lifecycle: bit-identity and zero allocation."""

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("protect", [False, True], ids=["unprot", "prot"])
    def test_2d_gather_bitwise_equals_serial_steps(self, rng, bc, protect,
                                                   block_steps):
        grid = _grid_2d(rng, bc=bc)
        serial = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=protect, epsilon=1e-5,
            block_steps=block_steps,
        )
        runner.run(7)
        if protect:
            protector = OnlineABFT.for_grid(serial, epsilon=1e-5)
            for _ in range(7):
                protector.step(serial)
        else:
            for _ in range(7):
                serial.step()
        np.testing.assert_array_equal(runner.gather(), serial.u)
        if protect:
            assert runner.total_detected() == 0

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("protect", [False, True], ids=["unprot", "prot"])
    def test_3d_gather_bitwise_equals_serial_steps(self, rng, bc, protect,
                                                   block_steps):
        u0 = (rng.random((16, 10, 4)) * 50).astype(np.float32)
        constant = (rng.random((16, 10, 4)) * 0.2).astype(np.float32)
        grid = Grid3D(
            u0, seven_point_diffusion_3d(0.1), bc, constant=constant
        )
        serial = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=protect, epsilon=1e-5,
            block_steps=block_steps,
        )
        runner.run(5)
        if protect:
            protector = OnlineABFT.for_grid(serial, epsilon=1e-5)
            for _ in range(5):
                protector.step(serial)
        else:
            for _ in range(5):
                serial.step()
        np.testing.assert_array_equal(runner.gather(), serial.u)

    def test_injected_run_bitwise_equals_serial_injected_run(self, rng):
        """A flip at a global index is detected on exactly the owning rank
        and repaired to the same bits the serial protector produces.

        The row strategy corrects from sums over non-distributed axes
        only, so the rank computes exactly the numbers the serial
        protector computes and the repaired domains match bit for bit.
        """
        grid = _grid_2d(rng, shape=(96, 64))
        serial = grid.copy()
        target_global = (70, 20)
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=True, epsilon=1e-5,
            correction_strategy="row",
        )
        target_rank, target_local = runner.rank_of_global_index(target_global)

        def inject_rank(run, iteration, rank):
            if iteration == 4 and rank.rank == target_rank:
                flip_bit_in_array(rank.interior, target_local, 26)

        runner.run(8, inject=inject_rank)

        protector = OnlineABFT.for_grid(
            serial, epsilon=1e-5, correction_strategy="row"
        )

        def inject_serial(g, iteration):
            if iteration == 4:
                flip_bit_in_array(g.u, target_global, 26)

        for _ in range(8):
            protector.step(serial, inject=inject_serial)

        np.testing.assert_array_equal(runner.gather(), serial.u)
        assert runner.total_detected() == protector.total_detections
        assert runner.total_corrected() == protector.total_corrections
        for r in runner.ranks:
            expected = protector.total_detections if r.rank == target_rank else 0
            assert r.protector.total_detections == expected

    def test_interior_is_live_view_of_buffer_pair(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=2, protect=False)
        rank = runner.ranks[0]
        assert rank.interior.base is not None
        assert np.may_share_memory(rank.interior, rank.buffers.front)

    def test_protected_step_allocates_no_full_block(self, rng):
        """Tracemalloc gate: the rank lifecycle never materialises a block.

        The legacy path allocated three full blocks per rank per
        iteration (stack_with_halos concatenate, pad_array ghost block,
        fresh sweep output); the zero-copy lifecycle's peak transient
        footprint must stay well under a single block.
        """
        # Blocks must dwarf the fixed transient footprint of a protected
        # step (~100 KB of checksum vectors, interpolation strips and
        # halo payloads) for the half-block threshold to discriminate:
        # 4 ranks x 128x512 float32 = 256 KB per block.
        grid = _grid_2d(rng, shape=(512, 512))
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=True, epsilon=1e-5
        )
        runner.run(3)  # warm-up: scratch buffers, first checksums
        block_bytes = runner.ranks[0].interior.nbytes
        tracemalloc.start()
        runner.run(1)  # absorb steady-state churn under tracing
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        runner.run(5)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - baseline < block_bytes // 2


class TestTemporalBlocking:
    """Deep-halo temporal blocking: k fused sweeps per halo exchange."""

    @pytest.mark.parametrize("axis", [0, 1])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_periodic_blocked_bitwise_equals_serial(self, rng, k, axis):
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        serial = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, axis=axis, block_steps=k
        )
        assert runner.block_cap_reason is None
        assert runner.effective_block_steps == k
        assert runner.halo_width == k * runner.radius[axis]
        runner.run(7)  # 7 = 2 full k-chunks + a tail for k in {2, 3}
        NoProtection().run(serial, 7)
        np.testing.assert_array_equal(runner.gather(), serial.u)
        assert runner.iteration == 7

    @pytest.mark.parametrize("k", [2, 3])
    def test_3d_periodic_blocked_bitwise_equals_serial(self, rng, k):
        u0 = (rng.random((18, 8, 6)) * 50).astype(np.float32)
        grid = Grid3D(u0, seven_point_diffusion_3d(0.1),
                      BoundaryCondition.periodic())
        serial = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, block_steps=k
        )
        assert runner.effective_block_steps == k
        runner.run(5)
        NoProtection().run(serial, 5)
        np.testing.assert_array_equal(runner.gather(), serial.u)

    def test_one_exchange_per_block(self, rng):
        """7 iterations at k=3 make chunks of 3+3+1: three exchange
        rounds, each 4 ring interfaces x 2 directions = 8 messages."""
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        runner = DistributedStencilRunner(
            grid, n_ranks=4, protect=False, block_steps=3
        )
        runner.run(7)
        assert runner.channel.messages_sent == 3 * 8
        assert runner.channel.pending() == 0
        # Each halo payload carries the full k*r-deep slab.
        per_msg = grid.shape[1] * runner.halo_width * grid.u.itemsize
        assert runner.channel.bytes_sent == 3 * 8 * per_msg

    def test_inject_hook_forces_single_step_schedule(self, rng):
        """Injection hooks observe per-iteration rank state, so a run
        with a hook falls back to one exchange per sweep."""
        grid = _grid_2d(rng, bc=BoundaryCondition.periodic())
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, block_steps=4
        )
        seen = []

        def inject(run, iteration, rank):
            seen.append((iteration, rank.rank))

        runner.run(5, inject=inject)
        assert runner.channel.messages_sent == 5 * 6
        assert seen == [(i, r) for i in range(1, 6) for r in range(3)]

    def test_protected_runner_caps_with_reason(self, rng):
        runner = DistributedStencilRunner(
            _grid_2d(rng, bc=BoundaryCondition.periodic()),
            n_ranks=2, protect=True, epsilon=1e-5, block_steps=4,
        )
        assert runner.effective_block_steps == 1
        assert "OnlineABFT" in runner.block_cap_reason
        assert runner.halo_width == runner.radius[0]

    def test_non_periodic_axis_caps_with_reason(self, rng):
        runner = DistributedStencilRunner(
            _grid_2d(rng), n_ranks=2, protect=False, block_steps=2
        )
        assert runner.effective_block_steps == 1
        assert "'clamp' boundary along distributed axis 0" in runner.block_cap_reason

    def test_constant_term_caps_with_reason(self, rng):
        u0 = (rng.random((16, 10, 4)) * 50).astype(np.float32)
        constant = (rng.random((16, 10, 4)) * 0.2).astype(np.float32)
        grid = Grid3D(u0, seven_point_diffusion_3d(0.1),
                      BoundaryCondition.periodic(), constant=constant)
        runner = DistributedStencilRunner(
            grid, n_ranks=2, protect=False, block_steps=2
        )
        assert runner.effective_block_steps == 1
        assert "constant" in runner.block_cap_reason

    def test_thin_rank_block_caps_with_reason(self, rng):
        # 24 rows over 4 ranks -> blocks of 6 < k*r = 8.
        runner = DistributedStencilRunner(
            _grid_2d(rng, bc=BoundaryCondition.periodic()),
            n_ranks=4, protect=False, block_steps=8,
        )
        assert runner.effective_block_steps == 1
        assert "thinner than the deep halo" in runner.block_cap_reason

    def test_capped_runner_still_bitwise_equal(self, rng):
        grid = _grid_2d(rng)  # clamp: capped to k=1
        serial = grid.copy()
        runner = DistributedStencilRunner(
            grid, n_ranks=3, protect=False, block_steps=3
        )
        runner.run(6)
        NoProtection().run(serial, 6)
        np.testing.assert_array_equal(runner.gather(), serial.u)

    def test_invalid_block_steps(self, rng):
        with pytest.raises(ValueError, match="block_steps"):
            DistributedStencilRunner(
                _grid_2d(rng), n_ranks=2, protect=False, block_steps=0
            )
