"""End-to-end integration tests on the HotSpot3D application.

These mirror the paper's experimental protocol on a miniature tile:
the three methods run the same fault scenario and the qualitative
relationships of Figures 8-10 must hold.
"""

import numpy as np
import pytest

from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.parallel.runner import TiledStencilRunner


@pytest.fixture(scope="module")
def app():
    return HotSpot3D(HotSpot3DConfig(nx=20, ny=20, nz=4, seed=42))


@pytest.fixture(scope="module")
def reference(app):
    return app.reference_solution(40)


def _plan():
    return FaultPlan(iteration=23, index=(11, 7, 2), bit=26)


class TestHotSpotEndToEnd:
    def test_unprotected_run_corrupted_by_fault(self, app, reference):
        grid = app.build_grid()
        NoProtection().run(grid, 40, inject=FaultInjector([_plan()]))
        assert l2_error(reference, grid.u) > 1e-2

    def test_online_abft_protects_hotspot(self, app, reference):
        grid = app.build_grid()
        unprotected = app.build_grid()
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = protector.run(grid, 40, inject=FaultInjector([_plan()]))
        NoProtection().run(unprotected, 40, inject=FaultInjector([_plan()]))
        assert run.total_detected >= 1
        assert run.total_corrected >= 1
        assert l2_error(reference, grid.u) < 0.1 * l2_error(reference, unprotected.u)

    def test_offline_abft_erases_fault_on_hotspot(self, app, reference):
        grid = app.build_grid()
        protector = OfflineABFT.for_grid(grid, epsilon=1e-5, period=16)
        run = protector.run(grid, 40, inject=FaultInjector([_plan()]))
        assert run.total_detected >= 1
        assert run.total_rollbacks >= 1
        assert l2_error(reference, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_error_free_protected_runs_match_reference_exactly(self, app, reference):
        online_grid = app.build_grid()
        offline_grid = app.build_grid()
        OnlineABFT.for_grid(online_grid, epsilon=1e-5).run(online_grid, 40)
        OfflineABFT.for_grid(offline_grid, epsilon=1e-5, period=16).run(offline_grid, 40)
        np.testing.assert_array_equal(online_grid.u, reference)
        np.testing.assert_array_equal(offline_grid.u, reference)

    def test_per_layer_parallel_protection_of_hotspot(self, app, reference):
        grid = app.build_grid()
        runner = TiledStencilRunner.with_online_abft(grid, "layers", epsilon=1e-5)
        runner.run(40, inject=FaultInjector([_plan()]))
        assert runner.total_detected() >= 1
        assert l2_error(reference, grid.u) < 1.0

    def test_sign_bit_flip_detected_and_recovered(self, app, reference):
        grid = app.build_grid()
        plan = FaultPlan(iteration=10, index=(5, 5, 1), bit=31)
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = protector.run(grid, 40, inject=FaultInjector([plan]))
        assert run.total_detected >= 1
        assert l2_error(reference, grid.u) < 1.0

    def test_fraction_bit_flip_harmless_even_if_undetected(self, app, reference):
        grid = app.build_grid()
        plan = FaultPlan(iteration=10, index=(5, 5, 1), bit=3)
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        protector.run(grid, 40, inject=FaultInjector([plan]))
        # Whether or not such a tiny flip is detected, the result stays
        # within numerical noise of the reference (paper, Section 5.3).
        assert l2_error(reference, grid.u) < 1e-3
