"""Unit tests for tile/layer decomposition."""

import pytest

from repro.parallel.decomposition import (
    TileBox,
    decompose,
    decompose_layers,
    partition_extent,
)


class TestPartitionExtent:
    def test_even_split(self):
        assert partition_extent(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_split_front_loads_remainder(self):
        assert partition_extent(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_part(self):
        assert partition_extent(5, 1) == [(0, 5)]

    def test_parts_equal_extent(self):
        assert partition_extent(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_covers_whole_extent_without_overlap(self):
        for n, p in [(17, 4), (100, 7), (8, 3)]:
            bounds = partition_extent(n, p)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == n
            for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
                assert a1 == b0

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            partition_extent(3, 4)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            partition_extent(3, 0)


class TestTileBox:
    def test_shape_and_starts(self):
        box = TileBox(index=(0, 1), slices=(slice(0, 4), slice(4, 10)))
        assert box.shape == (4, 6)
        assert box.starts == (0, 4)

    def test_contains_and_to_local(self):
        box = TileBox(index=(1,), slices=(slice(3, 6), slice(0, 4)))
        assert box.contains((4, 2))
        assert not box.contains((6, 0))
        assert not box.contains((4,))
        assert box.to_local((4, 2)) == (1, 2)

    def test_to_local_outside_rejected(self):
        box = TileBox(index=(0,), slices=(slice(0, 2), slice(0, 2)))
        with pytest.raises(ValueError):
            box.to_local((5, 5))


class TestDecompose:
    def test_2d_tiling_covers_domain(self):
        boxes = decompose((10, 8), (2, 2))
        assert len(boxes) == 4
        covered = set()
        for box in boxes:
            for x in range(box.slices[0].start, box.slices[0].stop):
                for y in range(box.slices[1].start, box.slices[1].stop):
                    assert (x, y) not in covered
                    covered.add((x, y))
        assert len(covered) == 80

    def test_3d_partial_parts_leave_trailing_axes_unsplit(self):
        boxes = decompose((8, 8, 4), (2, 2))
        assert len(boxes) == 4
        assert all(box.slices[2] == slice(0, 4) for box in boxes)

    def test_indices_are_cartesian(self):
        boxes = decompose((6, 6), (3, 2))
        assert {box.index for box in boxes} == {
            (i, j) for i in range(3) for j in range(2)
        }

    def test_too_many_part_axes_rejected(self):
        with pytest.raises(ValueError):
            decompose((8, 8), (2, 2, 2))

    def test_single_tile(self):
        boxes = decompose((5, 5), (1, 1))
        assert len(boxes) == 1
        assert boxes[0].shape == (5, 5)


class TestDecomposeLayers:
    def test_one_tile_per_layer(self):
        boxes = decompose_layers((16, 16, 8))
        assert len(boxes) == 8
        for z, box in enumerate(boxes):
            assert box.shape == (16, 16, 1)
            assert box.slices[2] == slice(z, z + 1)
            assert box.index == (z,)

    def test_rejects_2d_shape(self):
        with pytest.raises(ValueError):
            decompose_layers((8, 8))
