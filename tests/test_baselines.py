"""Unit tests for the TMR and spatial-interpolation baselines."""

import numpy as np
import pytest

from repro.baselines.spatial_detector import SpatialInterpolationDetector
from repro.baselines.tmr import TMRProtector
from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion


def _make_grid(rng, shape=(20, 16)):
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())


def _make_smooth_grid(shape=(24, 24)):
    """A smooth Gaussian-bump temperature field (what data-analytics
    detectors assume: spatially smooth physical data)."""
    x = np.arange(shape[0])[:, None]
    y = np.arange(shape[1])[None, :]
    u0 = 100.0 + 20.0 * np.exp(
        -((x - shape[0] / 2) ** 2 + (y - shape[1] / 2) ** 2) / (2.0 * (shape[0] / 3) ** 2)
    )
    return Grid2D(u0.astype(np.float32), five_point_diffusion(0.2),
                  BoundaryCondition.clamp())


class TestTMR:
    def test_error_free_no_detection_and_same_result(self, rng):
        grid = _make_grid(rng)
        clone = grid.copy()
        run = TMRProtector().run(grid, 10)
        NoProtection().run(clone, 10)
        assert run.total_detected == 0
        np.testing.assert_array_equal(grid.u, clone.u)

    def test_detects_and_corrects_injected_fault(self, rng):
        grid = _make_grid(rng)
        ref = grid.copy()
        ref.run(20)
        injector = FaultInjector([FaultPlan(iteration=7, index=(4, 4), bit=28)])
        run = TMRProtector().run(grid, 20, inject=injector)
        assert run.total_detected == 1
        assert run.total_corrected == 1
        # TMR recovers the exact replica value: zero residual error.
        assert l2_error(ref.u, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_small_fraction_flip_also_caught(self, rng):
        # Unlike the checksum detector, TMR catches arbitrarily small flips.
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=3, index=(2, 2), bit=0)])
        run = TMRProtector().run(grid, 5, inject=injector)
        assert run.total_detected == 1
        assert run.total_corrected == 1

    def test_counters_and_reset(self, rng):
        grid = _make_grid(rng)
        protector = TMRProtector()
        protector.run(grid, 3, inject=FaultInjector(
            [FaultPlan(iteration=1, index=(1, 1), bit=30)]
        ))
        assert protector.total_detections == 1
        protector.reset()
        assert protector.total_detections == 0

    def test_name(self):
        assert TMRProtector().name == "tmr"

    def test_replica_buffers_persist_across_steps(self, rng):
        """Replicas sweep into two protector-owned buffers, reused every
        step — the step cost is two extra backend sweeps, not two fresh
        full-domain allocations."""
        grid = _make_grid(rng)
        protector = TMRProtector()
        protector.step(grid)
        first = protector._replicas
        assert first is not None
        protector.step(grid)
        assert protector._replicas is first
        assert first[0].shape == grid.u.shape
        protector.reset()
        assert protector._replicas is None


class TestSpatialInterpolationDetector:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SpatialInterpolationDetector(threshold=0.0)

    def test_detects_large_corruption(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=5, index=(10, 8), bit=30)])
        detector = SpatialInterpolationDetector(threshold=1e-2)
        run = detector.run(grid, 10, inject=injector)
        assert run.total_detected >= 1

    def test_misses_small_corruption_that_abft_catches(self):
        # A mid-fraction bit flip (relative perturbation ~0.2%) is below the
        # spatial detector's sensitivity but above the ABFT detector's —
        # the comparison drawn in the paper's Section 2.
        from repro.core.online import OnlineABFT

        plan = FaultPlan(iteration=5, index=(12, 8), bit=14)
        spatial_grid = _make_smooth_grid()
        abft_grid = spatial_grid.copy()

        spatial_run = SpatialInterpolationDetector(threshold=1e-2, correct=False).run(
            spatial_grid, 10, inject=FaultInjector([plan])
        )
        abft_run = OnlineABFT.for_grid(abft_grid, epsilon=1e-5).run(
            abft_grid, 10, inject=FaultInjector([plan])
        )
        assert spatial_run.total_detected == 0
        assert abft_run.total_detected >= 1

    def test_correction_replaces_outlier_with_neighbour_median(self):
        grid = _make_smooth_grid()
        ref = grid.copy()
        ref.run(10)
        unprotected = grid.copy()
        plan = FaultPlan(iteration=4, index=(6, 6), bit=29)
        detector = SpatialInterpolationDetector(threshold=1e-2, correct=True)
        detector.run(grid, 10, inject=FaultInjector([plan]))
        NoProtection().run(unprotected, 10, inject=FaultInjector([plan]))
        # The repaired value is approximate, but the run ends up orders of
        # magnitude closer to the reference than the unprotected one.
        assert l2_error(ref.u, grid.u) < 1e-3 * l2_error(ref.u, unprotected.u)

    def test_detect_only_mode_leaves_domain_unchanged(self, rng):
        grid = _make_grid(rng)
        injector = FaultInjector([FaultPlan(iteration=2, index=(3, 3), bit=30)])
        detector = SpatialInterpolationDetector(threshold=1e-2, correct=False)
        run = detector.run(grid, 4, inject=injector)
        assert run.total_detected >= 1
        assert run.total_corrected == 0
        assert detector.total_uncorrected >= 1

    def test_sharp_legitimate_feature_can_raise_false_positive(self, rng):
        # The known weakness of data-analytics detectors: a legitimate sharp
        # feature (strong localized source) looks like an outlier.
        from repro.stencil.grid import Grid2D

        u0 = np.full((24, 24), 10.0, dtype=np.float32)
        constant = np.zeros((24, 24), dtype=np.float32)
        constant[12, 12] = 50.0  # strong point source switched on
        grid = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp(),
                      constant=constant)
        detector = SpatialInterpolationDetector(threshold=1e-2, correct=False)
        run = detector.run(grid, 3)
        assert run.total_detected > 0  # false positives on clean data

    def test_reset(self, rng):
        detector = SpatialInterpolationDetector()
        grid = _make_grid(rng)
        detector.run(grid, 2, inject=FaultInjector(
            [FaultPlan(iteration=1, index=(0, 0), bit=30)]
        ))
        detector.reset()
        assert detector.total_detections == 0
