"""Tests for the high-throughput campaign engine.

The engine's contract is strict: records bitwise-identical to the
legacy serial loop (:func:`run_campaign`) for every field except the
elapsed-time measurement, for every method, scenario, executor kind,
worker count and batch size — plus zero full-domain allocations per run
once a worker's persistent state is warm.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.experiments.common import make_hotspot_app, make_protector_factory
from repro.faults.campaign import CampaignConfig, resolve_run_counters, run_campaign
from repro.faults.engine import CampaignEngine, draw_fault_plans, stacked_supported
from repro.metrics.accuracy import l2_error
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion

TILE = (16, 16, 4)
ITERATIONS = 10

_U0_2D = (np.random.default_rng(3).random((20, 14)) * 100).astype(np.float32)

_BOUNDARIES_2D = {
    "clamp": BoundaryCondition.clamp(),
    "periodic": BoundaryCondition.periodic(),
    "clamp+constant": BoundarySpec(
        (BoundaryCondition.clamp(), BoundaryCondition.constant(5.0))
    ),
}


def _grid2d_factory(boundary_key: str):
    def factory():
        return Grid2D(
            _U0_2D, five_point_diffusion(0.2), _BOUNDARIES_2D[boundary_key]
        )

    return factory


@pytest.fixture(scope="module")
def app():
    return make_hotspot_app(TILE)


@pytest.fixture(scope="module")
def reference(app):
    return app.reference_solution(ITERATIONS)


def record_key(record):
    """All deterministic record fields (elapsed time excluded)."""
    return (
        record.run_index,
        record.arithmetic_error,
        record.errors_detected,
        record.errors_corrected,
        record.errors_uncorrected,
        record.rollbacks,
        record.recomputed_iterations,
        tuple((p.iteration, p.index, p.bit) for p in record.faults),
    )


def assert_equivalent(result_a, result_b):
    assert [record_key(r) for r in result_a.records] == [
        record_key(r) for r in result_b.records
    ]


class TestRecordEquivalence:
    @pytest.mark.parametrize("method", ["no-abft", "online-abft", "offline-abft"])
    @pytest.mark.parametrize("inject", [False, True])
    def test_engine_matches_legacy_loop(self, app, reference, method, inject):
        factory = make_protector_factory(method, period=4)
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=5, inject=inject, seed=21
        )
        legacy = run_campaign(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            got = engine.run(app.build_grid, factory, config, reference=reference)
        assert got.protector_name == legacy.protector_name
        assert_equivalent(legacy, got)

    def test_identical_across_executors_and_workers(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=7, inject=True, seed=5
        )
        with CampaignEngine(executor="serial") as engine:
            baseline = engine.run(
                app.build_grid, factory, config, reference=reference
            )
        for kind, workers in (("threads", 2), ("process", 2)):
            with CampaignEngine(executor=kind, workers=workers) as engine:
                got = engine.run(
                    app.build_grid, factory, config, reference=reference
                )
            assert_equivalent(baseline, got)

    def test_identical_across_batch_sizes(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=6, inject=True, seed=9
        )
        results = []
        for batch in (1, 2, 6):
            with CampaignEngine(executor="serial", batch_size=batch) as engine:
                results.append(
                    engine.run(app.build_grid, factory, config, reference=reference)
                )
        assert_equivalent(results[0], results[1])
        assert_equivalent(results[0], results[2])

    def test_forced_replay_matches_legacy_and_stacked(self, app, reference):
        # strategy="replay" (Figure 8's timing-fidelity mode) must give
        # the same records as both the legacy loop and the stacked path.
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=5, inject=True, seed=17
        )
        legacy = run_campaign(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            stacked = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            replayed = engine.run(
                app.build_grid, factory, config, reference=reference,
                strategy="replay",
            )
        assert_equivalent(legacy, stacked)
        assert_equivalent(legacy, replayed)
        with pytest.raises(ValueError, match="strategy"):
            with CampaignEngine(executor="serial") as engine:
                engine.run(
                    app.build_grid, factory, config, reference=reference,
                    strategy="vectorised",
                )

    def test_reproducible_across_engine_instances(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=4, inject=True, seed=2
        )
        with CampaignEngine(executor="serial") as engine:
            first = engine.run(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            second = engine.run(app.build_grid, factory, config, reference=reference)
        assert_equivalent(first, second)

    @pytest.mark.parametrize("boundary_key", sorted(_BOUNDARIES_2D))
    @pytest.mark.parametrize("verify_axis", [0, 1])
    def test_2d_grids_every_boundary_kind(self, boundary_key, verify_axis):
        factory = _grid2d_factory(boundary_key)

        def protector_factory(grid):
            return OnlineABFT.for_grid(
                grid, epsilon=1e-5, verify_axis=verify_axis
            )

        config = CampaignConfig(iterations=9, repetitions=6, inject=True, seed=4)
        legacy = run_campaign(factory, protector_factory, config)
        with CampaignEngine(executor="serial") as engine:
            got = engine.run(factory, protector_factory, config)
        assert_equivalent(legacy, got)

    @pytest.mark.parametrize(
        "config_kwargs", [{"faults_per_run": 3}, {"bit": 27}, {"bit": 1}]
    )
    def test_multi_fault_and_pinned_bit_campaigns(
        self, app, reference, config_kwargs
    ):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=5, inject=True, seed=8,
            **config_kwargs,
        )
        legacy = run_campaign(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            got = engine.run(app.build_grid, factory, config, reference=reference)
        assert_equivalent(legacy, got)

    def test_state_reuse_across_calls_stays_identical(self, app, reference):
        # The chunked-benchmark pattern: the same engine runs the same
        # campaign repeatedly; the worker resets its persistent grid and
        # protector in place, and a reused state must not leak anything
        # from the previous chunk into the next.
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=5, inject=True, seed=13
        )
        legacy = run_campaign(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            engine.run(app.build_grid, factory, config, reference=reference)
            again = engine.run(app.build_grid, factory, config, reference=reference)
        assert_equivalent(legacy, again)


class TestFaultPlans:
    def test_plans_match_legacy_scheme(self, app):
        config = CampaignConfig(iterations=8, repetitions=3, inject=True, seed=40)
        plans = draw_fault_plans(config, TILE, np.float32)
        legacy = run_campaign(
            app.build_grid,
            make_protector_factory("no-abft"),
            config,
            reference=np.zeros(TILE, np.float32),
        )
        got = [
            [(p.iteration, p.index, p.bit) for p in run_plans]
            for run_plans in plans
        ]
        want = [
            [(p.iteration, p.index, p.bit) for p in r.faults]
            for r in legacy.records
        ]
        assert got == want

    def test_error_free_campaign_draws_nothing(self):
        config = CampaignConfig(iterations=8, repetitions=3, inject=False)
        assert draw_fault_plans(config, TILE, np.float32) == [[], [], []]


class TestStrategySelection:
    def test_online_and_noprotection_are_stackable(self, app):
        grid = app.build_grid()
        assert stacked_supported(grid, OnlineABFT.for_grid(grid))
        assert stacked_supported(grid, NoProtection())

    def test_offline_and_eager_online_replay(self, app):
        grid = app.build_grid()
        offline = make_protector_factory("offline-abft", period=4)(grid)
        assert not stacked_supported(grid, offline)
        eager = OnlineABFT.for_grid(grid, eager_row_checksum=True)
        assert not stacked_supported(grid, eager)


class TestHookFactory:
    def test_hooks_force_replay_and_match_manual_loop(self, app, reference):
        class Perturb:
            def __init__(self, iteration, index):
                self.iteration = iteration
                self.index = index
                self.fired = False

            def __call__(self, grid, iteration):
                if not self.fired and iteration == self.iteration:
                    grid.u[self.index] *= 1.5
                    self.fired = True

        draws = [(3, (4, 4, 1)), (5, (1, 2, 0)), (7, (9, 9, 3))]
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=len(draws), inject=False
        )
        with CampaignEngine(executor="serial") as engine:
            got = engine.run(
                app.build_grid,
                factory,
                config,
                reference=reference,
                hook_factory=lambda i: Perturb(*draws[i]),
            )
        for (iteration, index), record in zip(draws, got.records):
            grid = app.build_grid()
            protector = factory(grid)
            hook = Perturb(iteration, index)
            report = protector.run(grid, ITERATIONS, inject=hook)
            det, cor, unc, rb, rec = resolve_run_counters(protector, report)
            assert record.errors_detected == det
            assert record.errors_corrected == cor
            assert record.arithmetic_error == l2_error(reference, grid.u)

    def test_stacked_run_after_hook_replay_reuses_pristine_initial(
        self, app, reference
    ):
        # Regression: a hook campaign replays on the worker's persistent
        # grid and leaves it at the final state of its last run; a
        # subsequent hook-less (stacked) campaign on the same cached
        # state must still start every run from the campaign's initial
        # domain, not from the evolved grid.
        factory = make_protector_factory("online-abft")
        hook_config = CampaignConfig(
            iterations=ITERATIONS, repetitions=2, inject=False
        )
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=4, inject=True, seed=31
        )
        legacy = run_campaign(app.build_grid, factory, config, reference=reference)
        with CampaignEngine(executor="serial") as engine:
            engine.run(
                app.build_grid,
                factory,
                hook_config,
                reference=reference,
                hook_factory=lambda i: (lambda grid, iteration: None),
            )
            got = engine.run(app.build_grid, factory, config, reference=reference)
        assert_equivalent(legacy, got)

    def test_hooks_with_inject_rejected(self, app, reference):
        # Hooks replace the fault-plan injector; combining them with
        # inject=True would emit records whose fault plans never fired.
        config = CampaignConfig(iterations=4, repetitions=2, inject=True)
        with CampaignEngine(executor="serial") as engine:
            with pytest.raises(ValueError, match="inject=False"):
                engine.run(
                    app.build_grid,
                    make_protector_factory("no-abft"),
                    config,
                    reference=reference,
                    hook_factory=lambda i: (lambda grid, iteration: None),
                )

    def test_hook_factory_called_in_run_order(self, app, reference):
        calls = []

        def hook_factory(i):
            calls.append(i)
            return lambda grid, iteration: None

        config = CampaignConfig(iterations=4, repetitions=5, inject=False)
        with CampaignEngine(executor="serial", batch_size=2) as engine:
            engine.run(
                app.build_grid,
                make_protector_factory("no-abft"),
                config,
                reference=reference,
                hook_factory=hook_factory,
            )
        assert calls == [0, 1, 2, 3, 4]


class TestAllocationProfile:
    def test_zero_full_domain_allocations_per_run_after_warmup(self):
        # The gated property of the stacked strategy: once a worker's
        # state is warm, a whole campaign allocates only checksum-scale
        # transients — no per-run grids, protectors or domain copies.
        tile = (64, 64, 8)
        app = make_hotspot_app(tile)
        iterations, repetitions = 6, 8
        reference = app.reference_solution(iterations)
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=iterations, repetitions=repetitions, inject=True, seed=1
        )
        domain_bytes = int(np.prod(tile)) * 4
        with CampaignEngine(executor="serial", batch_size=repetitions) as engine:
            engine.run(app.build_grid, factory, config, reference=reference)
            tracemalloc.start()
            baseline, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            engine.run(app.build_grid, factory, config, reference=reference)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        per_run = max(0, peak - baseline - 192 * 1024) / repetitions
        assert per_run < domain_bytes / 2


class TestProcessExecutorContract:
    def test_unpicklable_factory_raises_clear_error(self, app, reference):
        config = CampaignConfig(iterations=4, repetitions=2, inject=False)
        with CampaignEngine(executor="process", workers=1) as engine:
            with pytest.raises(ValueError, match="picklable"):
                engine.run(
                    app.build_grid,
                    lambda grid: NoProtection(),
                    config,
                    reference=reference,
                )


@pytest.fixture()
def numba_backend_default(tmp_path):
    """Make the numba backend the process default for one test.

    With numba installed (the CI matrix job) the registered JIT backend
    is used as-is, so the stacked batches run the compiled ``bstep``
    kernels; without it, a ``jit=False`` instance executes the same
    generated source as plain Python, pinning the engine integration
    everywhere.
    """
    from repro.backends import registry as _registry
    from repro.backends import set_default_backend
    from repro.backends.codegen import KernelCompiler
    from repro.backends.numba_backend import NUMBA_AVAILABLE, NumbaBackend

    registered = None
    if not NUMBA_AVAILABLE:
        registered = NumbaBackend(
            compiler=KernelCompiler(cache_dir=tmp_path / "kc", jit=False)
        )
        _registry.register_backend(registered)
    set_default_backend("numba")
    try:
        yield
    finally:
        set_default_backend(None)
        if registered is not None:
            _registry._REGISTRY.pop("numba", None)
            _registry.register_unavailable_backend(
                "numba", "numba not installed"
            )


class TestStackedCompiledBackend:
    """Stacked batches on the numba backend: same records as replay/legacy."""

    @pytest.mark.parametrize(
        "method", ["no-abft", "online-abft", "offline-abft"]
    )
    @pytest.mark.parametrize("inject", [False, True])
    def test_stacked_replay_and_legacy_agree(
        self, app, reference, method, inject, numba_backend_default
    ):
        factory = make_protector_factory(method, period=4)
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=6, inject=inject, seed=23
        )
        legacy = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        with CampaignEngine(executor="serial") as engine:
            auto = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            replay = engine.run(
                app.build_grid, factory, config, reference=reference,
                strategy="replay",
            )
        assert_equivalent(legacy, auto)
        assert_equivalent(legacy, replay)
        if method == "offline-abft":
            assert auto.strategy_counts() == {"replay": 6}
            assert any(
                "no stacked implementation" in r
                for r in auto.fallback_reasons()
            )
        else:
            assert auto.strategy_counts() == {"stacked": 6}
            assert auto.fallback_reasons() == []


class TestStrategyReporting:
    def test_support_reasons(self, app):
        from repro.faults.engine import stacked_support_reason

        grid = app.build_grid()
        assert stacked_support_reason(grid, OnlineABFT.for_grid(grid)) is None
        assert stacked_support_reason(grid, NoProtection()) is None
        offline = make_protector_factory("offline-abft", period=4)(grid)
        assert "no stacked implementation" in stacked_support_reason(
            grid, offline
        )
        eager = OnlineABFT.for_grid(grid, eager_row_checksum=True)
        assert "eagerly" in stacked_support_reason(grid, eager)

    def test_forced_replay_reports_the_request(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(iterations=ITERATIONS, repetitions=5, seed=17)
        with CampaignEngine(executor="serial", batch_size=2) as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference,
                strategy="replay",
            )
        assert result.strategy_counts() == {"replay": 5}
        assert [b.width for b in result.batch_strategies] == [2, 2, 1]
        assert [b.start for b in result.batch_strategies] == [0, 2, 4]
        assert result.fallback_reasons() == ["replay strategy requested"]

    def test_non_domain_targets_fall_back_with_reason(self, app, reference):
        from repro.faults.models import make_fault_model

        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=4, seed=5,
            fault_model=make_fault_model("region-checksum"),
        )
        with CampaignEngine(executor="serial") as engine:
            auto = engine.run(
                app.build_grid, factory, config, reference=reference
            )
            with pytest.raises(ValueError, match="non-domain"):
                engine.run(
                    app.build_grid, factory, config, reference=reference,
                    strategy="stacked",
                )
        assert auto.strategy_counts() == {"replay": 4}
        assert any("non-domain" in r for r in auto.fallback_reasons())

    def test_forced_stacked_raises_for_ineligible_protector(
        self, app, reference
    ):
        factory = make_protector_factory("offline-abft", period=4)
        config = CampaignConfig(iterations=ITERATIONS, repetitions=3, seed=1)
        with CampaignEngine(executor="serial") as engine:
            with pytest.raises(ValueError, match="no stacked implementation"):
                engine.run(
                    app.build_grid, factory, config, reference=reference,
                    strategy="stacked",
                )

    def test_forced_stacked_runs_and_reports_stacked(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(iterations=ITERATIONS, repetitions=5, seed=17)
        legacy = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        with CampaignEngine(executor="serial") as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference,
                strategy="stacked",
            )
        assert_equivalent(legacy, result)
        assert result.strategy_counts() == {"stacked": 5}

    def test_legacy_loop_reports_no_batches(self, app, reference):
        factory = make_protector_factory("online-abft")
        config = CampaignConfig(iterations=ITERATIONS, repetitions=2, seed=3)
        legacy = run_campaign(
            app.build_grid, factory, config, reference=reference
        )
        assert legacy.batch_strategies == []
        assert legacy.strategy_counts() == {}


class TestStackedWidth:
    def test_default_width(self, monkeypatch):
        from repro.faults.engine import (
            STACKED_WIDTH_ENV_VAR,
            resolve_stacked_width,
        )

        monkeypatch.delenv(STACKED_WIDTH_ENV_VAR, raising=False)
        assert resolve_stacked_width() == 32
        assert resolve_stacked_width(
            CampaignConfig(iterations=1, repetitions=1)
        ) == 32

    def test_env_override_and_config_precedence(self, monkeypatch):
        from repro.faults.engine import (
            STACKED_WIDTH_ENV_VAR,
            resolve_stacked_width,
        )

        monkeypatch.setenv(STACKED_WIDTH_ENV_VAR, "7")
        assert resolve_stacked_width() == 7
        config = CampaignConfig(iterations=1, repetitions=1, stacked_width=5)
        assert resolve_stacked_width(config) == 5

    @pytest.mark.parametrize("bad", ["zero", "-2", "0"])
    def test_invalid_env_values_raise(self, monkeypatch, bad):
        from repro.faults.engine import (
            STACKED_WIDTH_ENV_VAR,
            resolve_stacked_width,
        )

        monkeypatch.setenv(STACKED_WIDTH_ENV_VAR, bad)
        with pytest.raises(ValueError, match="REPRO_STACKED_WIDTH"):
            resolve_stacked_width()

    def test_config_validates_width(self):
        with pytest.raises(ValueError, match="stacked_width"):
            CampaignConfig(iterations=1, repetitions=1, stacked_width=0)

    def test_width_caps_the_auto_batch(self, app, reference, monkeypatch):
        from repro.faults.engine import STACKED_WIDTH_ENV_VAR

        factory = make_protector_factory("online-abft")
        config = CampaignConfig(
            iterations=ITERATIONS, repetitions=6, seed=9, stacked_width=2
        )
        with CampaignEngine(executor="serial") as engine:
            result = engine.run(
                app.build_grid, factory, config, reference=reference
            )
        assert [b.width for b in result.batch_strategies] == [2, 2, 2]
        # Env var path: picked up when the config does not pin a width.
        monkeypatch.setenv(STACKED_WIDTH_ENV_VAR, "3")
        config_env = CampaignConfig(iterations=ITERATIONS, repetitions=6, seed=9)
        with CampaignEngine(executor="serial") as engine:
            via_env = engine.run(
                app.build_grid, factory, config_env, reference=reference
            )
        assert [b.width for b in via_env.batch_strategies] == [3, 3]
        assert_equivalent(result, via_env)
