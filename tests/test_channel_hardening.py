"""SimChannel link-level integrity: CRCs, retransmission, diagnostics.

The simulated interconnect carries every halo strip of the distributed
runner.  Hardening gives it a per-payload CRC32 with sender-side
retention: a corrupted or dropped message is detected at receive time
and recovered by "retransmission" from the pristine copy, with per-tag
accounting, so in-flight faults never silently poison a rank's ghosts.
An empty mailbox raises a :class:`ChannelError` that names the link
instead of a bare ``KeyError``/``IndexError``.
"""

import numpy as np
import pytest

from repro.faults.models import DistributedFaultInjector, RegionTargeted
from repro.parallel.simmpi import (
    ChannelError,
    DistributedStencilRunner,
    SimChannel,
)
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion


def _grid_2d(rng, shape=(24, 18)):
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())


class TestChannelError:
    def test_empty_mailbox_names_the_link(self):
        with pytest.raises(ChannelError) as exc:
            SimChannel().recv(3, 7, "to_lo")
        msg = str(exc.value)
        assert "rank 3" in msg
        assert "rank 7" in msg
        assert "'to_lo'" in msg

    def test_subclasses_runtime_error(self):
        # Pre-hardening callers guarded the empty mailbox with
        # ``RuntimeError`` and the message prefix "no message".
        with pytest.raises(RuntimeError, match="no message"):
            SimChannel().recv(0, 1, "halo")


class TestScheduledFaults:
    def test_corrupt_is_detected_and_retransmitted(self):
        channel = SimChannel()
        payload = np.arange(8, dtype=np.float64)
        channel.schedule_fault(1, action="corrupt", index=(3,), bit=62)
        channel.send(0, 1, "halo", payload)
        got = channel.recv(0, 1, "halo")
        np.testing.assert_array_equal(got, payload)
        assert channel.messages_corrupted == 1
        assert channel.messages_retransmitted == 1
        assert channel.corrupted_by_tag == {"halo": 1}
        assert channel.retransmitted_by_tag == {"halo": 1}

    def test_drop_is_detected_and_retransmitted(self):
        channel = SimChannel()
        payload = np.arange(6, dtype=np.float32)
        channel.schedule_fault(1, action="drop")
        channel.send(0, 1, "halo", payload)
        got = channel.recv(0, 1, "halo")
        np.testing.assert_array_equal(got, payload)
        assert channel.messages_dropped == 1
        assert channel.messages_retransmitted == 1
        assert channel.dropped_by_tag == {"halo": 1}

    def test_only_the_scheduled_ordinal_is_hit(self):
        channel = SimChannel()
        channel.schedule_fault(2, action="corrupt", index=(0,), bit=62)
        for i in range(3):
            channel.send(0, 1, "halo", np.full(4, float(i)))
        for i in range(3):
            np.testing.assert_array_equal(
                channel.recv(0, 1, "halo"), np.full(4, float(i))
            )
        assert channel.messages_corrupted == 1
        assert channel.messages_retransmitted == 1

    def test_unprotected_wire_lets_corruption_through(self):
        channel = SimChannel(integrity=False)
        payload = np.arange(8, dtype=np.float64)
        channel.schedule_fault(1, action="corrupt", index=(3,), bit=62)
        channel.send(0, 1, "halo", payload)
        got = channel.recv(0, 1, "halo")
        assert not np.array_equal(got, payload)  # silent corruption
        assert channel.messages_retransmitted == 0

    def test_unprotected_wire_raises_on_drop(self):
        channel = SimChannel(integrity=False)
        channel.schedule_fault(1, action="drop")
        channel.send(0, 1, "halo", np.zeros(4))
        with pytest.raises(ChannelError, match="dropped"):
            channel.recv(0, 1, "halo")

    def test_traffic_reports_loss_accounting(self):
        channel = SimChannel()
        channel.schedule_fault(1, action="drop")
        channel.schedule_fault(2, action="corrupt", index=(0,), bit=62)
        channel.send(0, 1, "a", np.zeros(4))
        channel.send(0, 1, "b", np.ones(4))
        channel.recv(0, 1, "a")
        channel.recv(0, 1, "b")
        snapshot = channel.traffic()
        assert snapshot["messages_dropped"] == 1
        assert snapshot["messages_corrupted"] == 1
        assert snapshot["messages_retransmitted"] == 2
        assert snapshot["dropped_by_tag"] == {"a": 1}
        assert snapshot["corrupted_by_tag"] == {"b": 1}
        assert snapshot["retransmitted_by_tag"] == {"a": 1, "b": 1}

    def test_cannot_schedule_a_past_send(self):
        channel = SimChannel()
        channel.send(0, 1, "halo", np.zeros(2))
        with pytest.raises(ValueError):
            channel.schedule_fault(1, action="corrupt", index=(0,), bit=3)


class TestDistributedPayloadFaults:
    """In-flight halo faults end to end on the distributed runner."""

    @pytest.mark.parametrize("action", ["corrupt", "drop"])
    def test_halo_fault_is_recovered_bitwise(self, rng, action):
        grid = _grid_2d(rng)
        clean = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5
        )
        clean.run(10)

        runner = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5
        )
        plans = [[] for _ in runner.ranks]
        plans[1] = RegionTargeted(
            region="payload", action=action, bit=27
        ).draw(np.random.default_rng(3), runner.ranks[1].shape, 10)
        inject = DistributedFaultInjector(runner, plans)
        runner.run(10, inject=inject)

        lost = (
            runner.channel.messages_dropped
            + runner.channel.messages_corrupted
        )
        assert lost == 1
        assert runner.channel.messages_retransmitted == 1
        assert runner.total_detected() == 0
        np.testing.assert_array_equal(runner.gather(), clean.gather())

    def test_ghost_fault_fires_after_ingest(self, rng):
        grid = _grid_2d(rng)
        clean = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5
        )
        clean.run(10)

        runner = DistributedStencilRunner(
            grid.copy(), n_ranks=3, protect=True, epsilon=1e-5
        )
        plans = [[] for _ in runner.ranks]
        plans[1] = RegionTargeted(region="ghost", bit=27).draw(
            np.random.default_rng(5), runner.ranks[1].shape, 10
        )
        inject = DistributedFaultInjector(runner, plans)
        runner.run(10, inject=inject)
        assert inject.fired_count == 1
        # A ghost flipped *after* CRC-verified ingestion corrupts memory,
        # not the wire: the sweep and the checksum interpolation read the
        # same ghost values, so ABFT is structurally blind to it and the
        # trajectory diverges.  (Transport CRCs are the honest defence:
        # the in-flight variant above recovers bitwise.)
        assert not np.array_equal(runner.gather(), clean.gather())

    def test_payload_plans_need_halo_traffic(self, rng):
        grid = _grid_2d(rng)
        runner = DistributedStencilRunner(grid, n_ranks=1, protect=False)
        plans = [RegionTargeted(region="payload").draw(
            np.random.default_rng(0), runner.ranks[0].shape, 5
        )]
        with pytest.raises(ValueError, match="no messages|no neighbours"):
            DistributedFaultInjector(runner, plans)
