"""Unit tests for the named stencil library."""

import pytest

from repro.stencil import kernels
from repro.stencil.spec import StencilSpec


def test_jacobi4_shape():
    spec = kernels.jacobi4()
    assert spec.npoints == 4
    assert spec.weight_sum() == pytest.approx(1.0)
    assert spec.weight_of((0, 0)) == 0.0


def test_five_point_diffusion_weights():
    spec = kernels.five_point_diffusion(0.25)
    assert spec.weight_of((0, 0)) == pytest.approx(0.0)
    assert spec.weight_sum() == pytest.approx(1.0)


def test_five_point_diffusion_rejects_unstable_alpha():
    with pytest.raises(ValueError):
        kernels.five_point_diffusion(0.3)
    with pytest.raises(ValueError):
        kernels.five_point_diffusion(0.0)


def test_nine_point_smoothing_normalised():
    spec = kernels.nine_point_smoothing()
    assert spec.npoints == 9
    assert spec.weight_sum() == pytest.approx(1.0)
    assert spec.is_fully_symmetric()


def test_asymmetric_advection_2d_is_asymmetric():
    spec = kernels.asymmetric_advection_2d(0.2, 0.1)
    assert not spec.is_axis_symmetric(0)
    assert not spec.is_axis_symmetric(1)
    assert spec.weight_sum() == pytest.approx(1.0)


def test_seven_point_diffusion_3d():
    spec = kernels.seven_point_diffusion_3d(0.1)
    assert spec.ndim == 3
    assert spec.npoints == 7
    assert spec.is_fully_symmetric()


def test_seven_point_diffusion_3d_rejects_unstable_alpha():
    with pytest.raises(ValueError):
        kernels.seven_point_diffusion_3d(0.2)


def test_twenty_seven_point_3d():
    spec = kernels.twenty_seven_point_3d()
    assert spec.npoints == 27
    assert spec.weight_sum() == pytest.approx(1.0)
    assert spec.radius() == (1, 1, 1)


def test_asymmetric_advection_3d():
    spec = kernels.asymmetric_advection_3d()
    assert spec.ndim == 3
    assert not spec.is_fully_symmetric()


def test_named_stencil_lookup():
    spec = kernels.named_stencil("jacobi4")
    assert isinstance(spec, StencilSpec)
    assert spec == kernels.jacobi4()


def test_named_stencil_with_kwargs():
    spec = kernels.named_stencil("five_point_diffusion", alpha=0.1)
    assert spec.weight_of((0, 0)) == pytest.approx(0.6)


def test_named_stencil_unknown_name():
    with pytest.raises(KeyError, match="unknown stencil"):
        kernels.named_stencil("does-not-exist")
