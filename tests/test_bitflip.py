"""Unit tests for IEEE-754 bit-flip primitives."""

import numpy as np
import pytest

from repro.faults.bitflip import (
    bit_field,
    bit_width,
    exponent_bits,
    flip_bit,
    flip_bit_in_array,
    fraction_bits,
    sign_bit,
)


class TestBitLayout:
    def test_widths(self):
        assert bit_width(np.float32) == 32
        assert bit_width(np.float64) == 64

    def test_sign_bit_positions(self):
        assert sign_bit(np.float32) == 31
        assert sign_bit(np.float64) == 63

    def test_exponent_ranges(self):
        assert exponent_bits(np.float32) == (23, 30)
        assert exponent_bits(np.float64) == (52, 62)

    def test_fraction_ranges(self):
        assert fraction_bits(np.float32) == (0, 22)
        assert fraction_bits(np.float64) == (0, 51)

    def test_bit_field_classification_float32(self):
        assert bit_field(31, np.float32) == "sign"
        assert bit_field(30, np.float32) == "exponent"
        assert bit_field(23, np.float32) == "exponent"
        assert bit_field(22, np.float32) == "fraction"
        assert bit_field(0, np.float32) == "fraction"

    def test_bit_field_out_of_range(self):
        with pytest.raises(ValueError):
            bit_field(32, np.float32)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            exponent_bits(np.int32)


class TestFlipBit:
    def test_sign_flip_negates(self):
        assert flip_bit(np.float32(1.5), 31) == np.float32(-1.5)

    def test_fraction_flip_small_change(self):
        original = np.float32(1.0)
        flipped = flip_bit(original, 0)
        assert flipped != original
        assert abs(float(flipped) - 1.0) < 1e-6

    def test_exponent_flip_large_change(self):
        original = np.float32(1.0)
        flipped = flip_bit(original, 30)
        assert abs(float(flipped)) > 1e30 or abs(float(flipped)) < 1e-30

    def test_double_flip_restores_value(self):
        value = np.float32(123.456)
        assert flip_bit(flip_bit(value, 17), 17) == value

    def test_python_float_uses_float64(self):
        flipped = flip_bit(2.0, 63)
        assert flipped == -2.0

    def test_out_of_range_bit(self):
        with pytest.raises(ValueError):
            flip_bit(np.float32(1.0), 32)


class TestFlipBitInArray:
    def test_flip_modifies_only_target(self, rng):
        arr = rng.random((5, 5)).astype(np.float32)
        before = arr.copy()
        old, new = flip_bit_in_array(arr, (2, 3), 30)
        assert old == before[2, 3]
        assert new == arr[2, 3]
        assert old != new
        mask = np.ones_like(arr, dtype=bool)
        mask[2, 3] = False
        np.testing.assert_array_equal(arr[mask], before[mask])

    def test_double_flip_restores_array(self, rng):
        arr = rng.random(10).astype(np.float32)
        before = arr.copy()
        flip_bit_in_array(arr, 4, 12)
        flip_bit_in_array(arr, 4, 12)
        np.testing.assert_array_equal(arr, before)

    def test_flat_index_supported(self, rng):
        arr = rng.random((3, 4)).astype(np.float32)
        before = arr.copy()
        flip_bit_in_array(arr, 7, 22)   # flat index 7 -> (1, 3)
        assert arr[1, 3] != before[1, 3]

    def test_float64_array(self, rng):
        arr = rng.random(4)
        old, new = flip_bit_in_array(arr, 1, 63)
        assert new == -old

    def test_3d_index(self, rng):
        arr = rng.random((2, 3, 4)).astype(np.float32)
        old, new = flip_bit_in_array(arr, (1, 2, 3), 28)
        assert arr[1, 2, 3] == np.float32(new)

    def test_out_of_range_bit(self, rng):
        arr = rng.random(3).astype(np.float32)
        with pytest.raises(ValueError):
            flip_bit_in_array(arr, 0, 40)

    def test_integer_array_rejected(self):
        with pytest.raises(TypeError):
            flip_bit_in_array(np.arange(4), 0, 3)

    def test_sign_flip_magnitude_preserved(self, rng):
        arr = (rng.random(6) * 100).astype(np.float32)
        old, new = flip_bit_in_array(arr, 2, 31)
        assert new == -old
