"""Unit tests for detection-threshold selection."""

import numpy as np
import pytest

from repro.core.thresholds import PAPER_EPSILON, recommend_epsilon
from repro.stencil.kernels import five_point_diffusion


def test_paper_epsilon_value():
    assert PAPER_EPSILON == 1e-5


def test_float32_paper_scale_reproduces_paper_threshold():
    eps = recommend_epsilon((64, 64, 8), 0, np.float32)
    assert eps >= PAPER_EPSILON
    assert eps < 1e-3


def test_float64_threshold_much_tighter():
    eps32 = recommend_epsilon((64, 64), 0, np.float32)
    eps64 = recommend_epsilon((64, 64), 0, np.float64)
    assert eps64 < eps32
    assert eps64 < 1e-9


def test_threshold_grows_with_domain_size():
    small = recommend_epsilon((16, 16), 0, np.float64)
    large = recommend_epsilon((4096, 4096), 0, np.float64)
    assert large > small


def test_threshold_grows_with_period():
    p1 = recommend_epsilon((64, 64), 0, np.float64, period=1)
    p16 = recommend_epsilon((64, 64), 0, np.float64, period=16)
    assert p16 > p1


def test_threshold_accounts_for_weight_amplification():
    small_weights = five_point_diffusion(0.1)
    big_weights = small_weights.scaled(50.0)
    eps_small = recommend_epsilon((64, 64), 0, np.float64, spec=small_weights)
    eps_big = recommend_epsilon((64, 64), 0, np.float64, spec=big_weights)
    assert eps_big > eps_small


def test_floor_is_respected():
    eps = recommend_epsilon((4, 4), 0, np.float64, floor=1e-6)
    assert eps >= 1e-6


def test_invalid_axis_rejected():
    with pytest.raises(ValueError):
        recommend_epsilon((8, 8), 3, np.float32)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        recommend_epsilon((8, 8), 0, np.float32, period=0)
