"""Unit tests for boundary conditions and boundary specs."""

import pytest

from repro.stencil.boundary import BoundaryCondition, BoundarySpec


class TestBoundaryCondition:
    def test_clamp_constructor(self):
        bc = BoundaryCondition.clamp()
        assert bc.is_clamp
        assert not bc.is_periodic
        assert bc.pad_mode() == "edge"

    def test_periodic_constructor(self):
        bc = BoundaryCondition.periodic()
        assert bc.is_periodic
        assert bc.pad_mode() == "wrap"

    def test_zero_constructor(self):
        bc = BoundaryCondition.zero()
        assert bc.is_zero
        assert bc.fill_value() == 0.0
        assert bc.pad_mode() == "constant"

    def test_constant_constructor_keeps_value(self):
        bc = BoundaryCondition.constant(80.0)
        assert bc.is_constant
        assert bc.value == 80.0
        assert bc.fill_value() == 80.0

    def test_constant_value_is_coerced_to_float(self):
        bc = BoundaryCondition.constant(3)
        assert isinstance(bc.value, float)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown boundary kind"):
            BoundaryCondition("reflective")

    def test_fill_value_zero_for_non_constant(self):
        assert BoundaryCondition.clamp().fill_value() == 0.0
        assert BoundaryCondition.periodic().fill_value() == 0.0

    def test_equality_and_hash(self):
        assert BoundaryCondition.clamp() == BoundaryCondition.clamp()
        assert BoundaryCondition.constant(1.0) != BoundaryCondition.constant(2.0)
        assert hash(BoundaryCondition.zero()) == hash(BoundaryCondition.zero())


class TestBoundarySpec:
    def test_uniform(self):
        spec = BoundarySpec.uniform(BoundaryCondition.clamp(), 3)
        assert spec.ndim == 3
        assert all(bc.is_clamp for bc in spec)

    def test_named_constructors(self):
        assert BoundarySpec.clamp(2).axis(0).is_clamp
        assert BoundarySpec.periodic(2).axis(1).is_periodic
        assert BoundarySpec.zero(3).axis(2).is_zero
        assert BoundarySpec.constant(5.0, 2).axis(0).value == 5.0

    def test_from_any_with_condition(self):
        spec = BoundarySpec.from_any(BoundaryCondition.periodic(), 2)
        assert spec.ndim == 2
        assert spec.axis(0).is_periodic

    def test_from_any_with_sequence(self):
        spec = BoundarySpec.from_any(
            [BoundaryCondition.clamp(), BoundaryCondition.zero()], 2
        )
        assert spec.axis(0).is_clamp
        assert spec.axis(1).is_zero

    def test_from_any_with_spec_passthrough(self):
        original = BoundarySpec.clamp(2)
        assert BoundarySpec.from_any(original, 2) is original

    def test_from_any_dimension_mismatch(self):
        with pytest.raises(ValueError, match="2 axes"):
            BoundarySpec.from_any(BoundarySpec.clamp(2), 3)

    def test_from_any_sequence_length_mismatch(self):
        with pytest.raises(ValueError, match="expected 3 boundary conditions"):
            BoundarySpec.from_any([BoundaryCondition.clamp()], 3)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            BoundarySpec(())

    def test_wrong_member_type_rejected(self):
        with pytest.raises(TypeError):
            BoundarySpec(("clamp",))

    def test_uniform_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            BoundarySpec.uniform(BoundaryCondition.clamp(), 0)

    def test_indexing_and_iteration(self):
        spec = BoundarySpec(
            (BoundaryCondition.clamp(), BoundaryCondition.periodic())
        )
        assert spec[0].is_clamp
        assert spec[1].is_periodic
        assert [bc.kind for bc in spec] == ["clamp", "periodic"]
