"""Temporal blocking with checksum carry: k fused sweeps per traversal.

The load-bearing property, checked at every layer: a blocked window of
``k`` sub-steps is **bit-identical** to ``k`` single steps — domain,
halos, checksums, protector reports and recovery trajectories included.

The centrepiece is a hypothesis sweep over random stencil specs
(radius ≤ 3, 2D and 3D), random boundary-kind mixes (including
degenerate periodic halos), random external-axis subsets with
``k * r``-deep ghosts and block factors k ∈ {1..4}: the compiled
``step_k`` kernel must reproduce k interpreted single steps bit for
bit, and the window-closing checksum fold (the checksum carry) must
equal the one the verify-every-step path produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import all_boundary_conditions
from repro.backends import get_backend
from repro.backends.base import Backend
from repro.backends.codegen import KernelCompiler
from repro.backends.numba_backend import NumbaBackend
from repro.core.offline import OfflineABFT
from repro.faults.injector import FaultInjector, FaultPlan
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion, nine_point_smoothing
from repro.stencil.shift import interior_view, padded_shape
from repro.stencil.spec import StencilSpec


def _grid(rng, bc=None, spec=None, shape=(20, 14), constant=False):
    spec = spec or five_point_diffusion(0.2)
    bc = bc or BoundaryCondition.clamp()
    u0 = (rng.random(shape) * 100).astype(np.float32)
    const = (rng.random(shape) * 0.1).astype(np.float32) if constant else None
    return Grid2D(u0, spec, bc, constant=const)


# -- grid level: multi_step(k) == k x step() --------------------------------


class TestGridMultiStep:
    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("constant", [False, True], ids=["plain", "const"])
    def test_multi_step_bitwise_equals_k_steps(self, rng, bc, k, constant):
        blocked = _grid(rng, bc=bc, constant=constant)
        stepped = blocked.copy()
        new = blocked.multi_step(k)
        for _ in range(k):
            stepped.step()
        np.testing.assert_array_equal(blocked.u, stepped.u)
        np.testing.assert_array_equal(new, stepped.u)
        # The back buffer must hold the true step t+k-1 state — the only
        # intermediate a protector needs for Theorem-1 interpolation.
        np.testing.assert_array_equal(blocked.previous, stepped.previous)
        np.testing.assert_array_equal(
            blocked.previous_padded, stepped.previous_padded
        )
        assert blocked.iteration == stepped.iteration == k

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("k", [2, 3])
    def test_multi_step_with_checksums_carries_final_fold(self, rng, bc, k):
        blocked = _grid(rng, bc=bc, spec=nine_point_smoothing())
        stepped = blocked.copy()
        new, cs = blocked.multi_step_with_checksums(k, (0, 1))
        for _ in range(k - 1):
            stepped.step()
        ref, ref_cs = stepped.step_with_checksums((0, 1))
        np.testing.assert_array_equal(new, ref)
        for axis in (0, 1):
            np.testing.assert_array_equal(cs[axis], ref_cs[axis])
        np.testing.assert_array_equal(blocked.previous, stepped.previous)

    def test_invalid_block_steps(self, rng):
        with pytest.raises(ValueError, match="block steps"):
            _grid(rng).multi_step(0)


# -- the property sweep: compiled step_k vs k interpreted steps -------------

_KIND_STRATEGY = st.sampled_from(("clamp", "periodic", "constant", "zero"))


def _bc(kind):
    if kind == "constant":
        return BoundaryCondition.constant(2.5)
    return getattr(BoundaryCondition, kind)()


@st.composite
def _blocked_cases(draw):
    ndim = draw(st.integers(2, 3))
    npoints = draw(st.integers(1, 5))
    offsets = draw(
        st.lists(
            st.tuples(*[st.integers(-3, 3)] * ndim),
            min_size=npoints, max_size=npoints, unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(-1.0, 1.0, allow_nan=False, width=32),
            min_size=npoints, max_size=npoints,
        )
    )
    spec = StencilSpec(list(zip(offsets, weights)))
    radius = spec.radius()
    k = draw(st.integers(1, 4))
    # Interior extents deliberately allowed below the ghost width, so
    # degenerate periodic wraps (r > n) are drawn too.
    shape = tuple(draw(st.integers(1, 6)) for _ in range(ndim))
    kinds = tuple(draw(_KIND_STRATEGY) for _ in range(ndim))
    external = tuple(
        a for a in range(ndim) if draw(st.booleans()) and radius[a] > 0
    )
    # A per-point constant cannot be trapezoid-indexed across a deep
    # external halo — that combination is rejected, not drawn.
    has_const = draw(st.booleans()) and not (external and k > 1)
    return spec, shape, kinds, external, has_const, k


@settings(max_examples=60, deadline=None)
@given(case=_blocked_cases(), seed=st.integers(0, 2**31 - 1))
def test_blocked_window_bit_identical_to_k_single_steps(
    case, seed, tmp_path_factory
):
    """Random spec × layout × k: compiled ``step_k`` ≡ k single steps.

    External axes get a ``k * r``-deep ghost slab of random data
    (standing in for an ingested deep halo); the reference advances the
    same buffer pair through k interpreted single steps over the
    trapezoid sub-views (the base-class fallback on the ``numpy``
    backend).  Both clobbered buffers must come out bit-identical, and
    the checksum-carrying form must return exactly the vectors the
    verify-every-step path folds on the final sub-step.
    """
    spec, shape, kinds, external, has_const, k = case
    spec_r = spec.radius()
    layout_radius = tuple(
        k * r if a in external else r for a, r in enumerate(spec_r)
    )
    boundary = BoundarySpec.from_any([_bc(kd) for kd in kinds], spec.ndim)
    refresh_axes = (
        tuple(a for a in range(spec.ndim) if a not in external)
        if external
        else None
    )
    rng = np.random.default_rng(seed)
    pshape = padded_shape(shape, layout_radius)
    src0 = rng.standard_normal(pshape).astype(np.float32)
    dst0 = rng.standard_normal(pshape).astype(np.float32)
    const = (
        rng.standard_normal(shape).astype(np.float32) if has_const else None
    )

    # Reference: the interpreted per-sub-step fallback (k single steps).
    ref_src, ref_dst = src0.copy(), dst0.copy()
    ref_interior = get_backend("numpy").multi_step_into(
        ref_src, ref_dst, k, spec, layout_radius, shape, boundary,
        constant=const, refresh_axes=refresh_axes,
    )

    compiler = KernelCompiler(
        cache_dir=tmp_path_factory.mktemp("blocked"), jit=False
    )
    backend = NumbaBackend(compiler=compiler)

    got_src, got_dst = src0.copy(), dst0.copy()
    got_interior = backend.multi_step_into(
        got_src, got_dst, k, spec, layout_radius, shape, boundary,
        constant=const, refresh_axes=refresh_axes,
    )
    np.testing.assert_array_equal(got_interior, ref_interior)
    if external:
        # Deep-ghost corners outside the final trapezoid are dead cells
        # (never read by any sub-step); the fused kernel and the
        # per-view fallback may refresh them differently.  The contract
        # covers both buffers' interiors — final state and the carried
        # t+k-1 intermediate.
        np.testing.assert_array_equal(
            interior_view(got_src, layout_radius),
            interior_view(ref_src, layout_radius),
        )
        np.testing.assert_array_equal(
            interior_view(got_dst, layout_radius),
            interior_view(ref_dst, layout_radius),
        )
    else:
        np.testing.assert_array_equal(got_src, ref_src)
        np.testing.assert_array_equal(got_dst, ref_dst)

    # Checksum carry: the fused step_k_cs fold must equal the fold the
    # verify-every-step path produces on the same compiled backend.
    axes = (0, 1)
    cs_src, cs_dst = src0.copy(), dst0.copy()
    blocked_interior, blocked_cs = backend.multi_step_into_with_checksums(
        cs_src, cs_dst, k, spec, layout_radius, shape, boundary, axes,
        constant=const, checksum_dtype=np.float64,
        refresh_axes=refresh_axes,
    )
    ss_src, ss_dst = src0.copy(), dst0.copy()
    ss_interior, ss_cs = Backend.multi_step_into_with_checksums(
        backend, ss_src, ss_dst, k, spec, layout_radius, shape, boundary,
        axes, constant=const, checksum_dtype=np.float64,
        refresh_axes=refresh_axes,
    )
    np.testing.assert_array_equal(blocked_interior, ref_interior)
    np.testing.assert_array_equal(ss_interior, ref_interior)
    for axis in axes:
        np.testing.assert_array_equal(blocked_cs[axis], ss_cs[axis])


def test_blocked_window_rejects_constant_with_external_axes(rng):
    spec = five_point_diffusion(0.2)
    shape = (6, 5)
    radius = (2, 1)
    src = np.zeros(padded_shape(shape, radius), dtype=np.float32)
    dst = np.zeros_like(src)
    const = np.zeros(shape, dtype=np.float32)
    with pytest.raises(ValueError, match="constant"):
        get_backend("numpy").multi_step_into(
            src, dst, 2, spec, radius, shape,
            BoundarySpec.from_any(BoundaryCondition.clamp(), 2),
            constant=const, refresh_axes=(1,),
        )


def test_blocked_window_rejects_thin_external_ghosts(rng):
    spec = five_point_diffusion(0.2)
    shape = (6, 5)
    radius = (1, 1)  # k=3 needs 3-deep ghosts along the external axis
    src = np.zeros(padded_shape(shape, radius), dtype=np.float32)
    dst = np.zeros_like(src)
    with pytest.raises(ValueError, match="ghost width"):
        get_backend("numpy").multi_step_into(
            src, dst, 3, spec, radius, shape,
            BoundarySpec.from_any(BoundaryCondition.clamp(), 2),
            refresh_axes=(1,),
        )


def test_warmup_compiles_step_k_kernels(tmp_path):
    compiler = KernelCompiler(cache_dir=tmp_path, jit=False)
    backend = NumbaBackend(compiler=compiler)
    backend.warmup(
        five_point_diffusion(0.2),
        boundary=BoundaryCondition.periodic(),
        block_steps=3,
    )
    entries = backend.compiled_kernels()
    kinds = {(e["kind"], e["block_steps"]) for e in entries}
    # step_k and step_k_cs live in one cache entry, reported as step_k.
    assert ("step_k", 3) in kinds
    blocked = [e for e in entries if e["kind"] == "step_k"]
    assert all("ghost_growth" in e for e in blocked)


# -- OfflineABFT: blocked windows, checksum carry, fault recovery -----------


class TestOfflineBlockedRuns:
    def _protectors(self, grid, **kwargs):
        """A (single-step, blocked) protector pair for mirrored runs."""
        single = OfflineABFT.for_grid(
            grid, track_strips=False, block_steps=1, **kwargs
        )
        blocked = OfflineABFT.for_grid(
            grid, track_strips=False, block_steps=None, **kwargs
        )
        return single, blocked

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
    @pytest.mark.parametrize("iters", [16, 19])  # aligned + partial window
    def test_error_free_run_bitwise_equals_single_step(self, rng, bc, iters):
        g_single = _grid(rng, bc=bc)
        g_blocked = g_single.copy()
        single, blocked = self._protectors(g_single, period=8, epsilon=1e-5)
        rep_s = single.run(g_single, iters)
        rep_b = blocked.run(g_blocked, iters)
        np.testing.assert_array_equal(g_blocked.u, g_single.u)
        assert g_blocked.iteration == g_single.iteration == iters
        assert len(rep_b.steps) == len(rep_s.steps)
        for sb, ss in zip(rep_b.steps, rep_s.steps):
            assert (
                sb.iteration, sb.detection_performed, sb.errors_detected,
                sb.rollback, sb.recomputed_iterations,
            ) == (
                ss.iteration, ss.detection_performed, ss.errors_detected,
                ss.rollback, ss.recomputed_iterations,
            )
        # zero/constant boundaries break the Theorem-1 interpolation
        # identity at this epsilon (identically in both legs, as the
        # per-step comparison above shows); only clamp/periodic runs
        # are genuinely detection-free.
        if bc.kind in ("clamp", "periodic"):
            assert rep_b.total_detected == rep_s.total_detected == 0

    def test_flip_inside_blocked_window_detected_at_same_boundary(self, rng):
        """The injection property: a bit flip *inside* a blocked window
        must be caught at exactly the boundary step where the unblocked
        run catches it, recover through the same rollback replay, and
        land on bit-identical state."""
        g_single = _grid(rng, shape=(24, 18))
        g_blocked = g_single.copy()
        single, blocked = self._protectors(g_single, period=8, epsilon=1e-5)
        # Iteration 5 sits strictly inside the first 8-step window.
        plan = FaultPlan(iteration=5, index=(11, 7), bit=26)
        rep_s = single.run(g_single, 16, inject=FaultInjector([plan]))
        rep_b = blocked.run(g_blocked, 16, inject=FaultInjector([plan]))

        det_s = [s.iteration for s in rep_s.steps if s.errors_detected]
        det_b = [s.iteration for s in rep_b.steps if s.errors_detected]
        assert det_s == det_b == [8]
        assert rep_b.total_rollbacks == rep_s.total_rollbacks >= 1
        assert (
            rep_b.total_recomputed_iterations
            == rep_s.total_recomputed_iterations
        )
        np.testing.assert_array_equal(g_blocked.u, g_single.u)

    def test_opaque_inject_hook_forces_single_steps(self, rng):
        """A hook without introspectable plans must be called once per
        iteration — blocked windows would skip its firing points."""
        g = _grid(rng)
        blocked = OfflineABFT.for_grid(
            g, period=4, epsilon=1e-5, track_strips=False, block_steps=None
        )
        calls = []

        def hook(grid, iteration):
            calls.append(iteration)

        blocked.run(g, 9, inject=hook)
        assert calls == list(range(1, 10))

    def test_blocked_with_track_strips_raises(self, rng):
        with pytest.raises(ValueError, match="track_strips"):
            OfflineABFT.for_grid(
                _grid(rng), period=4, track_strips=True, block_steps=4
            )
