"""Fail-stop rank-crash recovery: models, channel, checkpoints, bit-identity.

The headline invariant of the recovery subsystem is exactness: a run
that loses a rank mid-execution and recovers from buddy checkpoints
must finish **bitwise-identical** to the failure-free run — final
domain *and* detection/correction counters — for every boundary kind,
decomposition axis and temporal-blocking factor, including runs where
silent bit flips strike inside the replayed window or on the rebuilt
rank.  The hypothesis sweep at the bottom pins that invariant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.faults.injector import FaultPlan
from repro.faults.models import (
    DistributedFaultInjector,
    RankCrash,
    available_fault_models,
    make_fault_model,
    make_injector,
)
from repro.parallel.simmpi import (
    CKPT_META_TAG,
    CKPT_TAG,
    DETECTION_PERIOD,
    ChannelError,
    CheckpointCorrupt,
    DistributedStencilRunner,
    RankFailure,
    RecoveryError,
    SimChannel,
)
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.kernels import five_point_diffusion, seven_point_diffusion_3d


def _grid_2d(bc=None, shape=(16, 12), seed=42):
    rng = np.random.default_rng(seed)
    u0 = (rng.random(shape) * 100.0).astype(np.float32)
    return Grid2D(
        u0, five_point_diffusion(0.2), bc or BoundaryCondition.clamp()
    )


def _grid_3d(bc=None, shape=(10, 8, 4), seed=42):
    rng = np.random.default_rng(seed)
    u0 = (rng.random(shape) * 100.0).astype(np.float32)
    return Grid3D(
        u0, seven_point_diffusion_3d(0.1), bc or BoundaryCondition.clamp()
    )


def _crash_plan(iteration: int, rank: int) -> FaultPlan:
    return FaultPlan(
        iteration=iteration, index=(), bit=0, target="crash", rank=rank
    )


def _crash_injector(runner, iteration: int, rank: int, extra=None):
    per_rank = [[] for _ in range(runner.n_ranks)]
    per_rank[rank].append(_crash_plan(iteration, rank))
    for r, plan in extra or []:
        per_rank[r].append(plan)
    return DistributedFaultInjector(runner, per_rank)


# ---------------------------------------------------------------------------
# RankCrash fault model
# ---------------------------------------------------------------------------
class TestRankCrashModel:
    def test_registered(self):
        names = available_fault_models()
        assert "rank-crash" in names
        assert "rank-crash-mtbf" in names

    def test_deterministic_draw(self):
        model = make_fault_model(
            "rank-crash", at_iteration=7, rank=2, n_ranks=4
        )
        plans = model.draw(np.random.default_rng(0), (16, 16), 32)
        assert len(plans) == 1
        (plan,) = plans
        assert plan.target == "crash"
        assert plan.iteration == 7
        assert plan.rank == 2

    def test_uniform_draw_in_range(self):
        model = RankCrash(n_ranks=3)
        for seed in range(20):
            plans = model.draw(np.random.default_rng(seed), (8, 8), 10)
            assert len(plans) == 1
            assert 1 <= plans[0].iteration <= 10
            assert 0 <= plans[0].rank < 3

    def test_mtbf_beyond_horizon_draws_nothing(self):
        model = make_fault_model("rank-crash-mtbf", mtbf=1e12, n_ranks=4)
        assert model.draw(np.random.default_rng(0), (8, 8), 16) == []

    def test_mtbf_short_always_crashes(self):
        model = make_fault_model("rank-crash-mtbf", mtbf=0.25, n_ranks=4)
        for seed in range(10):
            plans = model.draw(np.random.default_rng(seed), (8, 8), 64)
            assert len(plans) == 1
            assert plans[0].target == "crash"

    def test_bitflips_mixed_into_draw(self):
        model = RankCrash(at_iteration=5, rank=0, n_ranks=2, bitflips=3)
        plans = model.draw(np.random.default_rng(1), (8, 8), 16)
        assert len(plans) == 4
        assert plans[0].target == "crash"
        assert all(p.target == "domain" for p in plans[1:])

    def test_draw_for_ranks_places_victim(self):
        model = RankCrash(at_iteration=5, rank=2, n_ranks=4, bitflips=2)
        shapes = [(4, 8)] * 4
        per_rank = model.draw_for_ranks(np.random.default_rng(3), shapes, 16)
        assert len(per_rank) == 4
        assert any(p.target == "crash" for p in per_rank[2])
        n_flips = sum(
            1 for plans in per_rank for p in plans if p.target == "domain"
        )
        assert n_flips == 2

    def test_draw_for_ranks_shape_mismatch(self):
        model = RankCrash(n_ranks=4)
        with pytest.raises(ValueError, match="configured for 4 ranks"):
            model.draw_for_ranks(np.random.default_rng(0), [(4, 8)] * 3, 16)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(n_ranks=1), "n_ranks >= 2"),
            (dict(at_iteration=0), "1-based"),
            (dict(rank=4, n_ranks=4), "out of range"),
            (dict(mtbf=0.0), "mtbf must be > 0"),
            (dict(at_iteration=3, mtbf=8.0), "not both"),
            (dict(bitflips=-1), "bitflips"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RankCrash(**kwargs)

    def test_serial_injector_rejects_crash(self):
        with pytest.raises(ValueError, match="distributed run"):
            make_injector([_crash_plan(3, 0)])


# ---------------------------------------------------------------------------
# Channel resilience
# ---------------------------------------------------------------------------
class TestChannelResilience:
    def test_empty_mailbox_error_names_link_and_inventory(self):
        ch = SimChannel(recv_retries=2)
        ch.send(0, 1, "halo", np.zeros(4, dtype=np.float32))
        with pytest.raises(ChannelError, match="no message") as exc:
            ch.recv(2, 1, "other")
        msg = str(exc.value)
        assert "after 2 drain attempts" in msg
        assert "link rank 2 -> rank 1" in msg
        assert "'halo': 1" in msg
        assert ch.recv_retry_attempts == 2
        assert ch.traffic()["recv_retry_attempts"] == 2

    def test_empty_mailbox_reports_nothing_pending(self):
        ch = SimChannel()
        with pytest.raises(ChannelError, match="nothing pending"):
            ch.recv(0, 1, "halo")

    def test_retry_attempts_configurable(self):
        ch = SimChannel(recv_retries=0)
        with pytest.raises(ChannelError, match="after 0 drain attempts"):
            ch.recv(0, 1, "halo")
        assert ch.recv_retry_attempts == 0
        with pytest.raises(ValueError, match="recv_retries"):
            SimChannel(recv_retries=-1)

    def test_recv_from_failed_rank_raises_rank_failure(self):
        ch = SimChannel()
        ch.mark_failed(3)
        with pytest.raises(RankFailure, match="declared failed") as exc:
            ch.recv(3, 0, "halo")
        assert exc.value.rank == 3

    def test_failed_rank_pending_message_still_delivered(self):
        # Fail-stop means "stops posting", not "the wire loses what was
        # already posted": a message in the mailbox predates the death.
        ch = SimChannel()
        payload = np.arange(4, dtype=np.float32)
        ch.send(2, 0, "halo", payload)
        ch.mark_failed(2)
        np.testing.assert_array_equal(ch.recv(2, 0, "halo"), payload)
        with pytest.raises(RankFailure):
            ch.recv(2, 0, "halo")

    def test_liveness_and_revive(self):
        ch = SimChannel()
        assert not ch.has_failures
        ch.check_liveness(range(4))  # no-op when everyone is alive
        ch.mark_failed(1)
        assert ch.has_failures
        assert ch.failed_ranks == frozenset({1})
        with pytest.raises(RankFailure, match="missed its heartbeat"):
            ch.check_liveness(range(4))
        ch.revive(1)
        assert not ch.has_failures
        ch.check_liveness(range(4))

    def test_purge_and_pending_tags(self):
        ch = SimChannel()
        ch.send(0, 1, "to_hi", np.zeros(3, dtype=np.float32))
        ch.send(2, 1, "to_lo", np.zeros(3, dtype=np.float32))
        ch.send(0, 2, "ckpt", np.zeros(3, dtype=np.float32))
        assert ch.pending_tags(1) == {"to_hi": 1, "to_lo": 1}
        assert ch.pending_tags() == {"to_hi": 1, "to_lo": 1, "ckpt": 1}
        assert ch.purge() == 3
        assert ch.pending() == 0


# ---------------------------------------------------------------------------
# Buddy checkpointing
# ---------------------------------------------------------------------------
class TestBuddyCheckpointing:
    def test_off_by_default(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=2)
        runner.run(8)
        assert runner.recovery.checkpoints_taken == 0
        assert CKPT_TAG not in runner.channel.messages_by_tag

    def test_default_period_is_detection_period(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=2)
        assert DETECTION_PERIOD == 16
        assert runner.checkpoint_period == DETECTION_PERIOD

    def test_explicit_period_cadence_and_traffic(self):
        runner = DistributedStencilRunner(
            _grid_2d(), n_ranks=4, checkpoint_period=5
        )
        runner.run(20)
        stats = runner.recovery
        # Initial commit at iteration 0 plus one per due period.
        assert stats.checkpoints_taken == 1 + 20 // 5
        by_tag = runner.channel.messages_by_tag
        assert by_tag[CKPT_TAG] == stats.checkpoints_taken * 4
        assert by_tag[CKPT_META_TAG] == stats.checkpoints_taken * 4
        bytes_by_tag = runner.channel.bytes_by_tag
        assert (
            bytes_by_tag[CKPT_TAG] + bytes_by_tag[CKPT_META_TAG]
            == stats.checkpoint_bytes
        )
        assert stats.checkpoint_messages == 2 * 4 * stats.checkpoints_taken

    def test_period_aligns_to_blocked_windows(self):
        runner = DistributedStencilRunner(
            _grid_2d(BoundaryCondition.periodic()),
            n_ranks=2,
            protect=False,
            block_steps=4,
            checkpoint_period=6,
        )
        assert runner.effective_block_steps == 4
        assert runner.checkpoint_period == 8

    def test_blocked_run_with_checkpointing_stays_exact(self):
        bc = BoundaryCondition.periodic()
        baseline = DistributedStencilRunner(
            _grid_2d(bc), n_ranks=2, protect=False, block_steps=4
        )
        baseline.run(24)
        ckpt = DistributedStencilRunner(
            _grid_2d(bc),
            n_ranks=2,
            protect=False,
            block_steps=4,
            checkpoint_period=8,
        )
        ckpt.run(24)
        assert ckpt.recovery.checkpoints_taken == 1 + 24 // 8
        np.testing.assert_array_equal(baseline.gather(), ckpt.gather())

    def test_enable_checkpointing_idempotent_and_single_rank_rejected(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=2)
        runner.enable_checkpointing(period=4)
        taken = runner.recovery.checkpoints_taken
        runner.enable_checkpointing()
        assert runner.recovery.checkpoints_taken == taken
        solo = DistributedStencilRunner(_grid_2d(), n_ranks=1)
        with pytest.raises(RecoveryError, match="no partner"):
            solo.enable_checkpointing()

    def test_corrupt_metadata_is_repaired(self):
        runner = DistributedStencilRunner(
            _grid_2d(), n_ranks=4, checkpoint_period=4
        )
        inject = _crash_injector(runner, 3, 2)
        # Strike the buddy copy's checksum duplicate: the PR 8 self-check
        # rule blames the metadata, recomputes it from the healthy domain
        # and recovery proceeds.  Crash at 3 so the struck iteration-0
        # checkpoint is the one recovery actually reads.
        buddy = runner.buddy_of[2]
        runner.ranks[buddy].buddy_store[2].checksum_dup[0] += 1.0
        runner.run(10, inject=inject)
        assert runner.recovery.ranks_rebuilt == 1
        assert runner.recovery.checkpoint_metadata_repairs >= 1

    def test_corrupt_payload_refuses_restore(self):
        runner = DistributedStencilRunner(
            _grid_2d(), n_ranks=4, checkpoint_period=4
        )
        inject = _crash_injector(runner, 3, 2)
        buddy = runner.buddy_of[2]
        # Self-consistent checksums that contradict the domain payload:
        # the payload itself was struck, restoring would resurrect it.
        runner.ranks[buddy].buddy_store[2].interior[0, 0] += 1.0
        with pytest.raises(CheckpointCorrupt, match="refusing to restore"):
            runner.run(10, inject=inject)

    def test_crash_auto_enables_checkpointing(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=4)
        inject = _crash_injector(runner, 5, 1)
        runner.run(12, inject=inject)
        assert runner.recovery.checkpoints_taken >= 1
        assert runner.recovery.ranks_rebuilt == 1

    def test_crash_injector_rejects_single_rank(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=1)
        with pytest.raises(ValueError, match="no buddy checkpoint"):
            DistributedFaultInjector(runner, [[_crash_plan(3, 0)]])

    def test_crash_and_payload_plans_conflict(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=2)
        payload = FaultPlan(
            iteration=2, index=(0,), bit=3, target="payload", side=1
        )
        with pytest.raises(ValueError, match="cannot be combined"):
            DistributedFaultInjector(
                runner, [[_crash_plan(4, 0)], [payload]]
            )


# ---------------------------------------------------------------------------
# Recovery exactness
# ---------------------------------------------------------------------------
_BOUNDARIES = {
    "clamp": BoundaryCondition.clamp,
    "periodic": BoundaryCondition.periodic,
    "zero": BoundaryCondition.zero,
}


class TestRecoveryBitIdentity:
    @given(
        ndim=st.sampled_from([2, 3]),
        bc_kind=st.sampled_from(sorted(_BOUNDARIES)),
        axis=st.integers(min_value=0, max_value=1),
        k=st.sampled_from([1, 2, 4]),
        timing=st.sampled_from(["start", "mid", "boundary"]),
        n_ranks=st.sampled_from([2, 3]),
    )
    def test_recovered_run_matches_failure_free(
        self, ndim, bc_kind, axis, k, timing, n_ranks
    ):
        bc = _BOUNDARIES[bc_kind]()
        make_grid = _grid_2d if ndim == 2 else _grid_3d
        protect = k == 1
        iters = 20
        crash_iter = {"start": 1, "mid": 10, "boundary": DETECTION_PERIOD}[
            timing
        ]
        victim = n_ranks - 1

        baseline = DistributedStencilRunner(
            make_grid(bc), n_ranks=n_ranks, protect=protect, axis=axis,
            block_steps=k,
        )
        baseline.run(iters)

        crashed = DistributedStencilRunner(
            make_grid(bc), n_ranks=n_ranks, protect=protect, axis=axis,
            block_steps=k,
        )
        inject = _crash_injector(crashed, crash_iter, victim)
        crashed.run(iters, inject=inject)

        assert crashed.recovery.ranks_rebuilt >= 1
        assert crashed.iteration == baseline.iteration
        np.testing.assert_array_equal(baseline.gather(), crashed.gather())
        if protect:
            assert crashed.total_detected() == baseline.total_detected()
            assert crashed.total_corrected() == baseline.total_corrected()

    def test_sdc_inside_replay_window_and_on_rebuilt_rank(self):
        # Flips at iteration 10 (inside the replayed window of a crash at
        # 13) and at iteration 20 (striking the *rebuilt* rank after
        # recovery) must be detected/corrected exactly as in a run that
        # never crashed — counters and final state bitwise-equal.
        flips = [
            (1, FaultPlan(iteration=10, index=(2, 3), bit=20)),
            (2, FaultPlan(iteration=20, index=(1, 5), bit=21)),
        ]

        def build(with_crash: bool):
            runner = DistributedStencilRunner(
                _grid_2d(shape=(24, 16)), n_ranks=4, protect=True
            )
            per_rank = [[] for _ in range(4)]
            for r, plan in flips:
                per_rank[r].append(
                    FaultPlan(
                        iteration=plan.iteration, index=plan.index,
                        bit=plan.bit,
                    )
                )
            if with_crash:
                per_rank[2].append(_crash_plan(13, 2))
            return runner, DistributedFaultInjector(runner, per_rank)

        baseline, base_inject = build(with_crash=False)
        baseline.run(28, inject=base_inject)
        crashed, crash_inject = build(with_crash=True)
        crashed.run(28, inject=crash_inject)

        assert crashed.recovery.ranks_rebuilt == 1
        assert crashed.recovery.rollbacks >= 1
        np.testing.assert_array_equal(baseline.gather(), crashed.gather())
        assert crashed.total_detected() == baseline.total_detected()
        assert crashed.total_corrected() == baseline.total_corrected()
        assert baseline.total_detected() >= 2

    def test_recovery_accounting_fields(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=4)
        inject = _crash_injector(runner, 13, 2)
        runner.run(30, inject=inject)
        stats = runner.recovery.as_dict()
        assert stats["rank_failures"] == 1
        assert stats["ranks_rebuilt"] == 1
        assert stats["rollbacks"] == 1
        assert stats["replayed_iterations"] == 12
        assert stats["max_rollback_depth"] == 12
        assert stats["checkpoint_bytes"] > 0
        assert stats["recovery_seconds"] > 0.0

    def test_uncheckpointed_failure_is_a_recovery_error(self):
        runner = DistributedStencilRunner(_grid_2d(), n_ranks=2)
        runner.channel.mark_failed(1)
        runner.ranks[1].alive = False
        with pytest.raises(RecoveryError, match="never[\\s\\S]*enabled"):
            runner.step()

    def test_buddy_also_dead_is_unrecoverable(self):
        runner = DistributedStencilRunner(
            _grid_2d(), n_ranks=4, checkpoint_period=8
        )
        for r in (1, 2):  # rank 2 is rank 1's buddy
            runner.channel.mark_failed(r)
            runner.ranks[r].alive = False
        with pytest.raises(RecoveryError, match="both failed"):
            runner.step()


# ---------------------------------------------------------------------------
# Campaign integration
# ---------------------------------------------------------------------------
class TestCampaignCrash:
    def _factories(self):
        u0 = (
            np.random.default_rng(9).random((24, 16)) * 100.0
        ).astype(np.float32)

        def grid_factory():
            return Grid2D(
                u0.copy(), five_point_diffusion(0.2), BoundaryCondition.clamp()
            )

        return grid_factory, lambda g: OnlineABFT.for_grid(g)

    def test_legacy_loop_routes_crash_runs(self):
        from repro.faults.campaign import CampaignConfig, run_campaign

        gf, pf = self._factories()
        model = make_fault_model(
            "rank-crash", at_iteration=9, rank=1, n_ranks=4
        )
        config = CampaignConfig(
            iterations=24, repetitions=2, seed=5, fault_model=model
        )
        result = run_campaign(gf, pf, config)
        for record in result.records:
            assert record.arithmetic_error == 0.0
            assert record.ranks_rebuilt == 1
            assert record.rollbacks >= 1
            assert record.checkpoint_bytes > 0
            assert record.fault is not None
            assert record.fault.target == "crash"

    def test_engine_matches_legacy_bitwise(self):
        from repro.faults.campaign import CampaignConfig, run_campaign
        from repro.faults.engine import CampaignEngine

        gf, pf = self._factories()
        model = make_fault_model(
            "rank-crash", at_iteration=9, rank=1, n_ranks=4, bitflips=1
        )
        config = CampaignConfig(
            iterations=24, repetitions=3, seed=5, fault_model=model
        )
        legacy = run_campaign(gf, pf, config)
        with CampaignEngine(executor="serial") as engine:
            fast = engine.run(gf, pf, config)
        assert fast.fallback_reasons() == ["non-domain fault target"]
        for a, b in zip(legacy.records, fast.records):
            assert a.arithmetic_error == b.arithmetic_error
            assert a.errors_detected == b.errors_detected
            assert a.errors_corrected == b.errors_corrected
            assert a.errors_uncorrected == b.errors_uncorrected
            assert a.rollbacks == b.rollbacks
            assert a.recomputed_iterations == b.recomputed_iterations
            assert a.ranks_rebuilt == b.ranks_rebuilt
            assert a.checkpoint_bytes == b.checkpoint_bytes

    def test_forced_stacked_fails_fast(self):
        from repro.faults.campaign import CampaignConfig
        from repro.faults.engine import CampaignEngine

        gf, pf = self._factories()
        model = make_fault_model("rank-crash", n_ranks=2)
        config = CampaignConfig(
            iterations=8, repetitions=2, seed=0, fault_model=model
        )
        with CampaignEngine(executor="serial") as engine:
            with pytest.raises(ValueError, match="'crash'"):
                engine.run(gf, pf, config, strategy="stacked")

    def test_run_with_crashes_rejects_unknown_protector(self):
        from repro.faults.campaign import run_with_crashes

        gf, _ = self._factories()
        grid = gf()

        class Oddball:
            name = "oddball"

        with pytest.raises(ValueError, match="oddball"):
            run_with_crashes(
                grid, Oddball(), [_crash_plan(3, 0)], 8, RankCrash(n_ranks=2)
            )

    def test_run_with_crashes_unprotected(self):
        from repro.faults.campaign import crash_run_counters, run_with_crashes

        gf, _ = self._factories()
        reference = gf()
        reference.run(16)
        elapsed, runner = run_with_crashes(
            gf(),
            NoProtection(),
            [_crash_plan(7, 1)],
            16,
            RankCrash(at_iteration=7, rank=1, n_ranks=4),
        )
        assert elapsed >= 0.0
        det, cor, unc, rb, rec, rebuilt, ck_bytes = crash_run_counters(runner)
        assert (det, cor, unc) == (0, 0, 0)
        assert rb >= 1 and rebuilt == 1 and ck_bytes > 0
        np.testing.assert_array_equal(reference.u, runner.gather())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestRecoveryCLI:
    def test_distributed_crash_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "distributed", "--ranks", "4", "--iters", "20", "--size",
                "48", "--crash-rank", "2", "--crash-iter", "9",
                "--checkpoint-period", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpointing   : period 5" in out
        assert "recovery        : 1 rank failure, 1 rebuilt from buddy" in out

    def test_distributed_crash_defaults(self, capsys):
        from repro.cli import main

        code = main(
            ["distributed", "--ranks", "2", "--iters", "12", "--size", "32",
             "--crash-iter", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rebuilt from buddy" in out

    def test_campaign_rank_crash(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign", "--tile", "16", "16", "4", "--iterations", "12",
                "--repetitions", "2", "--fault-model", "rank-crash",
                "--crash-ranks", "2", "--crash-rank", "1", "--crash-iter",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "model rank-crash" in out
        assert "recovery : 2/2 runs lost a rank" in out
