"""Tests for the shared-memory tiled runner with per-tile ABFT."""

import numpy as np
import pytest

from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.parallel.executor import ThreadPoolTileExecutor
from repro.parallel.runner import TiledStencilRunner
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.kernels import (
    asymmetric_advection_2d,
    five_point_diffusion,
    seven_point_diffusion_3d,
)


def _grid_2d(rng, shape=(24, 20), spec=None, bc=None):
    spec = spec or five_point_diffusion(0.2)
    bc = bc or BoundaryCondition.clamp()
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, spec, bc)


def _grid_3d(rng, shape=(12, 12, 4)):
    u0 = (rng.random(shape) * 100).astype(np.float32)
    constant = (rng.random(shape) * 0.1).astype(np.float32)
    return Grid3D(u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp(),
                  constant=constant)


class TestTiledSweepEquivalence:
    @pytest.mark.parametrize("parts", [(1, 1), (2, 2), (3, 2), (4, 1)])
    def test_tiled_run_bitwise_equals_single_grid_run(self, rng, parts):
        grid_tiled = _grid_2d(rng)
        grid_single = grid_tiled.copy()
        runner = TiledStencilRunner(grid_tiled, parts)
        runner.run(10)
        NoProtection().run(grid_single, 10)
        np.testing.assert_array_equal(grid_tiled.u, grid_single.u)

    @pytest.mark.parametrize(
        "bc", [BoundaryCondition.periodic(), BoundaryCondition.zero(),
               BoundaryCondition.constant(5.0)],
        ids=["periodic", "zero", "constant"],
    )
    def test_equivalence_for_other_boundaries(self, rng, bc):
        grid_tiled = _grid_2d(rng, bc=bc)
        grid_single = grid_tiled.copy()
        TiledStencilRunner(grid_tiled, (2, 3)).run(6)
        NoProtection().run(grid_single, 6)
        np.testing.assert_array_equal(grid_tiled.u, grid_single.u)

    def test_equivalence_with_asymmetric_stencil(self, rng):
        grid_tiled = _grid_2d(rng, spec=asymmetric_advection_2d(0.3, 0.2))
        grid_single = grid_tiled.copy()
        TiledStencilRunner(grid_tiled, (2, 2)).run(8)
        NoProtection().run(grid_single, 8)
        np.testing.assert_array_equal(grid_tiled.u, grid_single.u)

    def test_3d_layer_decomposition_equivalence(self, rng):
        grid_tiled = _grid_3d(rng)
        grid_single = grid_tiled.copy()
        TiledStencilRunner(grid_tiled, "layers").run(6)
        NoProtection().run(grid_single, 6)
        np.testing.assert_array_equal(grid_tiled.u, grid_single.u)

    def test_thread_executor_equivalence(self, rng):
        grid_tiled = _grid_2d(rng)
        grid_single = grid_tiled.copy()
        with ThreadPoolTileExecutor(workers=4) as pool:
            TiledStencilRunner(grid_tiled, (2, 2), executor=pool).run(6)
        NoProtection().run(grid_single, 6)
        np.testing.assert_array_equal(grid_tiled.u, grid_single.u)

    def test_unknown_decomposition_string(self, rng):
        with pytest.raises(ValueError):
            TiledStencilRunner(_grid_2d(rng), "columns")


class TestTiledProtection:
    def test_error_free_no_detection(self, rng):
        grid = _grid_2d(rng)
        runner = TiledStencilRunner.with_online_abft(grid, (2, 2), epsilon=1e-5)
        runner.run(12)
        assert runner.total_detected() == 0
        assert runner.n_tiles == 4

    def test_fault_detected_by_owning_tile_only(self, rng):
        grid = _grid_2d(rng)
        runner = TiledStencilRunner.with_online_abft(grid, (2, 2), epsilon=1e-5)
        fault_index = (17, 15)  # inside tile (1, 1)
        injector = FaultInjector([FaultPlan(iteration=5, index=fault_index, bit=26)])
        runner.run(10, inject=injector)
        assert runner.total_detected() >= 1
        owning = runner.tile_of(fault_index)
        for box in runner.boxes:
            protector = runner.protectors[box.index]
            if box.index == owning.index:
                assert protector.total_detections >= 1
            else:
                assert protector.total_detections == 0

    def test_fault_corrected_in_global_domain(self, rng):
        grid = _grid_2d(rng)
        reference = grid.copy()
        reference.run(12)
        injector = FaultInjector([FaultPlan(iteration=6, index=(5, 5), bit=25)])
        runner = TiledStencilRunner.with_online_abft(grid, (2, 2), epsilon=1e-5)
        runner.run(12, inject=injector)
        assert runner.total_corrected() >= 1
        assert l2_error(reference.u, grid.u) < 1.0

    def test_per_layer_protection_of_3d_domain(self, rng):
        grid = _grid_3d(rng)
        reference = grid.copy()
        reference.run(10)
        injector = FaultInjector([FaultPlan(iteration=4, index=(6, 7, 2), bit=26)])
        runner = TiledStencilRunner.with_online_abft(grid, "layers", epsilon=1e-5)
        runner.run(10, inject=injector)
        assert runner.total_detected() >= 1
        assert runner.total_corrected() >= 1
        assert l2_error(reference.u, grid.u) < 1.0
        # only the struck layer's protector fired
        firing = [
            box.index for box in runner.boxes
            if runner.protectors[box.index].total_detections > 0
        ]
        assert firing == [(2,)]

    def test_reports_one_per_tile_per_step(self, rng):
        grid = _grid_2d(rng)
        runner = TiledStencilRunner.with_online_abft(grid, (2, 2), epsilon=1e-5)
        reports = runner.step()
        assert len(reports) == 4
        assert all(r.detection_performed for r in reports)

    def test_unprotected_runner_reports_no_detection(self, rng):
        grid = _grid_2d(rng)
        runner = TiledStencilRunner(grid, (2, 2))
        reports = runner.step()
        assert all(not r.detection_performed for r in reports)
        assert runner.total_detected() == 0

    def test_tile_of_unknown_point(self, rng):
        runner = TiledStencilRunner(_grid_2d(rng), (2, 2))
        with pytest.raises(ValueError):
            runner.tile_of((1000, 1000))
