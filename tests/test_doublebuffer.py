"""Property tests for the zero-copy halo pipeline.

The core contract: a grid advancing through its persistent buffer pair
(ghost refresh in place + ``sweep_into`` the back buffer + swap) must be
**bit-identical**, after any number of steps, to the old pipeline that
built a fresh ``pad_array`` copy every iteration — for every boundary
condition, stencil and dimensionality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import all_boundary_conditions
from repro.backends import get_backend
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import (
    asymmetric_advection_2d,
    five_point_diffusion,
    seven_point_diffusion_3d,
)
from repro.stencil.shift import (
    interior_view,
    pad_array,
    padded_shape,
    refresh_ghosts,
)

BC_IDS = [bc.kind for bc in all_boundary_conditions()]


class TestRefreshGhosts:
    """``refresh_ghosts`` must reproduce ``pad_array`` bit for bit."""

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    @pytest.mark.parametrize("radius", [1, 2, (1, 2)])
    def test_matches_pad_array_2d(self, rng, bc, radius):
        u = (rng.random((7, 9)) * 100.0).astype(np.float32)
        expected = pad_array(u, radius, bc)
        padded = np.full(padded_shape(u.shape, radius), np.nan, dtype=u.dtype)
        interior_view(padded, radius)[...] = u
        refresh_ghosts(padded, radius, bc)
        np.testing.assert_array_equal(padded, expected)

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    def test_matches_pad_array_3d(self, rng, bc):
        u = (rng.random((5, 6, 4)) * 100.0).astype(np.float32)
        expected = pad_array(u, 1, bc)
        padded = np.full(padded_shape(u.shape, 1), np.nan, dtype=u.dtype)
        interior_view(padded, 1)[...] = u
        refresh_ghosts(padded, 1, bc)
        np.testing.assert_array_equal(padded, expected)

    def test_mixed_per_axis_boundaries(self, rng):
        """Corner ownership must match pad_array's axis-order semantics."""
        u = (rng.random((6, 5)) * 10.0).astype(np.float32)
        spec = BoundarySpec(
            (BoundaryCondition.periodic(), BoundaryCondition.constant(7.5))
        )
        expected = pad_array(u, 2, spec)
        padded = np.full(padded_shape(u.shape, 2), np.nan, dtype=u.dtype)
        interior_view(padded, 2)[...] = u
        refresh_ghosts(padded, 2, spec)
        np.testing.assert_array_equal(padded, expected)

    def test_stale_ghosts_overwritten(self, rng):
        """A refresh after interior mutation must forget the old halo."""
        u = (rng.random((6, 6)) * 10.0).astype(np.float32)
        bc = BoundaryCondition.clamp()
        padded = pad_array(u, 1, bc)
        interior_view(padded, 1)[...] += 3.0
        refresh_ghosts(padded, 1, bc)
        np.testing.assert_array_equal(
            padded, pad_array(interior_view(padded, 1).copy(), 1, bc)
        )

    def test_periodic_radius_exceeding_interior_falls_back(self, rng):
        # Degenerate wrap (ghost wider than interior): np.pad tiling
        # semantics must be preserved via the allocating fallback.
        u = (rng.random((2, 2)) * 10.0).astype(np.float32)
        expected = pad_array(u, 3, BoundaryCondition.periodic())
        padded = np.full(padded_shape(u.shape, 3), np.nan, dtype=u.dtype)
        interior_view(padded, 3)[...] = u
        refresh_ghosts(padded, 3, BoundaryCondition.periodic())
        np.testing.assert_array_equal(padded, expected)

    @given(
        nx=st.integers(min_value=3, max_value=12),
        ny=st.integers(min_value=3, max_value=12),
        kinds=st.tuples(
            st.sampled_from(["clamp", "periodic", "constant", "zero"]),
            st.sampled_from(["clamp", "periodic", "constant", "zero"]),
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40)
    def test_property_any_shape_any_boundary(self, nx, ny, kinds, seed):
        rng = np.random.default_rng(seed)
        u = (rng.random((nx, ny)) * 100.0).astype(np.float32)
        spec = BoundarySpec(
            tuple(
                BoundaryCondition.constant(2.5)
                if k == "constant"
                else BoundaryCondition(k)
                for k in kinds
            )
        )
        expected = pad_array(u, 1, spec)
        padded = np.full(padded_shape(u.shape, 1), np.nan, dtype=u.dtype)
        interior_view(padded, 1)[...] = u
        refresh_ghosts(padded, 1, spec)
        np.testing.assert_array_equal(padded, expected)

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    def test_partial_refresh_matches_pad_of_extended_block(self, rng, bc):
        """``axes=`` treats the skipped axis as pre-extended halo storage.

        Refreshing only axis 1 over a buffer whose axis-0 ghost range
        was filled externally must equal padding axis 0 first (the halo
        exchange) and then axis 1 over the extended block — the
        distributed rank-buffer contract.
        """
        u = (rng.random((6, 5)) * 10.0).astype(np.float32)
        # pad_array on axis 0 stands in for the halo exchange (for the
        # periodic kind it produces exactly the wrapped strips a ring of
        # neighbours would send).
        extended = pad_array(u, (2, 0), bc)
        expected = pad_array(extended, (0, 1), bc)
        padded = np.full(padded_shape(u.shape, (2, 1)), np.nan, dtype=u.dtype)
        padded[:, 1:-1] = extended
        refresh_ghosts(padded, (2, 1), bc, axes=(1,))
        np.testing.assert_array_equal(padded, expected)
        # The externally filled axis-0 slabs were left untouched.
        np.testing.assert_array_equal(padded[0:2, 1:-1], extended[0:2])

    def test_refresh_axes_out_of_range_rejected(self, rng):
        padded = np.zeros((5, 5))
        with pytest.raises(ValueError, match="out of range"):
            refresh_ghosts(padded, 1, BoundaryCondition.clamp(), axes=(2,))


def _reference_run(u0, spec, bc, backend, steps):
    """N sweeps the old way: a fresh pad_array copy every iteration."""
    be = get_backend(backend)
    u = u0.copy()
    for _ in range(steps):
        padded = pad_array(u, spec.radius(), bc)
        u = be.sweep_padded(padded, spec, spec.radius(), u.shape)
    return u


class TestDoubleBufferedGridEquivalence:
    """N buffer-pair swaps == N fresh ``pad_array`` sweeps, bit for bit."""

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    @pytest.mark.parametrize("backend", ["numpy", "fused"])
    @pytest.mark.parametrize("steps", [1, 4, 9])
    def test_2d(self, rng, bc, backend, steps):
        u0 = (rng.random((13, 11)) * 100.0).astype(np.float32)
        spec = five_point_diffusion(0.2)
        grid = Grid2D(u0, spec, bc, backend=backend)
        grid.run(steps)
        np.testing.assert_array_equal(
            grid.u, _reference_run(u0, spec, bc, backend, steps)
        )

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    def test_2d_asymmetric_stencil(self, rng, bc):
        u0 = (rng.random((10, 12)) * 50.0).astype(np.float32)
        spec = asymmetric_advection_2d(0.3, 0.15)
        grid = Grid2D(u0, spec, bc)
        grid.run(5)
        np.testing.assert_array_equal(
            grid.u, _reference_run(u0, spec, bc, None, 5)
        )

    @pytest.mark.parametrize("bc", all_boundary_conditions(), ids=BC_IDS)
    def test_3d(self, rng, bc):
        from repro.stencil.grid import Grid3D

        u0 = (rng.random((8, 7, 5)) * 100.0).astype(np.float32)
        spec = seven_point_diffusion_3d(0.1)
        grid = Grid3D(u0, spec, bc)
        grid.run(4)
        np.testing.assert_array_equal(
            grid.u, _reference_run(u0, spec, bc, None, 4)
        )

    def test_interior_mutation_between_steps_is_respected(self, rng):
        """Corrections/injections into grid.u must reach the next halo."""
        bc = BoundaryCondition.periodic()
        spec = five_point_diffusion(0.2)
        u0 = (rng.random((9, 9)) * 10.0).astype(np.float32)
        grid = Grid2D(u0, spec, bc)
        grid.step()
        grid.u[0, 0] += 5.0  # mutate a point whose value wraps into ghosts
        mutated = grid.u.copy()
        grid.step()
        np.testing.assert_array_equal(
            grid.u, _reference_run(mutated, spec, bc, None, 1)
        )


class TestDoubleBufferedGridUnit:
    def test_interior_is_view_of_front(self, rng):
        u = rng.random((5, 5)).astype(np.float32)
        pair = DoubleBufferedGrid(u, 1, BoundaryCondition.clamp())
        assert np.shares_memory(pair.interior, pair.front)
        np.testing.assert_array_equal(pair.interior, u)

    def test_swap_exchanges_buffers(self, rng):
        pair = DoubleBufferedGrid(
            rng.random((4, 4)).astype(np.float32), 1, BoundaryCondition.zero()
        )
        front, back = pair.front, pair.back
        pair.swap()
        assert pair.front is back and pair.back is front

    def test_load_shape_validated(self, rng):
        pair = DoubleBufferedGrid(
            rng.random((4, 4)).astype(np.float32), 1, BoundaryCondition.zero()
        )
        with pytest.raises(ValueError, match="interior shape"):
            pair.load(np.zeros((3, 3)))

    def test_refresh_returns_front(self, rng):
        pair = DoubleBufferedGrid(
            rng.random((4, 4)).astype(np.float32), 1, BoundaryCondition.clamp()
        )
        assert pair.refresh() is pair.front

    def test_shared_memory_roundtrip(self, rng):
        u = rng.random((6, 6)).astype(np.float32)
        pair = DoubleBufferedGrid(u, 1, BoundaryCondition.clamp())
        assert not pair.is_shared and pair.shm_names is None
        names = pair.share()
        try:
            assert pair.is_shared
            assert pair.shm_names == names
            np.testing.assert_array_equal(pair.interior, u)
            # share() is idempotent
            assert pair.share() == names
            # names follow the swap
            pair.swap()
            assert pair.shm_names == (names[1], names[0])
        finally:
            pair.close()
        assert not pair.is_shared
        # contents survive on the heap (swap above: interior is old back)
        pair.swap()
        np.testing.assert_array_equal(pair.interior, u)

    def test_nbytes(self, rng):
        pair = DoubleBufferedGrid(
            rng.random((4, 4)).astype(np.float32), 1, BoundaryCondition.zero()
        )
        assert pair.nbytes() == 2 * 6 * 6 * 4


class TestExternallyManagedAxes:
    """``external_axes``: ghost slabs owned by a halo exchange, not refresh."""

    def test_refresh_skips_external_axis_slabs(self, rng):
        u = rng.random((5, 4)).astype(np.float32)
        pair = DoubleBufferedGrid(
            u, 1, BoundaryCondition.clamp(), external_axes=(0,)
        )
        assert pair.refresh_axes == (1,)
        sentinel = 123.25
        pair.front[0, :] = sentinel  # the "ingested halo" row
        pair.front[-1, :] = sentinel
        pair.refresh()
        # External axis-0 rows kept the ingested values (corners
        # included: axis 1's refresh spans the halo rows like interior,
        # overwriting only the axis-1 ghost columns).
        np.testing.assert_array_equal(pair.front[0, 1:-1], sentinel)
        np.testing.assert_array_equal(pair.front[-1, 1:-1], sentinel)
        # Axis-1 slabs were refreshed from the clamp boundary — over the
        # full axis-0 extent, halo rows included.
        np.testing.assert_array_equal(pair.front[:, 0], pair.front[:, 1])
        np.testing.assert_array_equal(pair.front[:, -1], pair.front[:, -2])

    def test_no_external_axes_refreshes_everything(self, rng):
        pair = DoubleBufferedGrid(
            rng.random((5, 4)).astype(np.float32), 1, BoundaryCondition.clamp()
        )
        assert pair.external_axes == ()
        assert pair.refresh_axes is None

    def test_out_of_range_external_axis_rejected(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            DoubleBufferedGrid(
                rng.random((4, 4)).astype(np.float32),
                1,
                BoundaryCondition.clamp(),
                external_axes=(2,),
            )
