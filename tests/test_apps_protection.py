"""Cross-application protection tests.

The paper's claim is that the ABFT scheme works for *arbitrary* stencil
applications, not just HotSpot3D. These tests run every application in
``repro.apps`` under both protectors — error-free (no false positives,
bitwise-identical results) and with an injected fault (detected and
repaired) — which is exactly the "adapting the method to different
applications" direction of the paper's future work.
"""

import numpy as np
import pytest

from repro.apps.advection import AdvectionConfig, build_advection_grid
from repro.apps.heat2d import Heat2DConfig, build_heat2d_grid
from repro.apps.hotspot3d import HotSpot3D, HotSpot3DConfig
from repro.apps.jacobi import JacobiConfig, build_jacobi_grid
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error

ITERATIONS = 24


def _app_grids():
    """(name, grid factory, fault plan) for every bundled application."""
    hotspot = HotSpot3D(HotSpot3DConfig(nx=16, ny=16, nz=4, seed=3))
    return [
        (
            "jacobi",
            lambda: build_jacobi_grid(JacobiConfig(nx=28, ny=24, seed=5)),
            FaultPlan(iteration=10, index=(13, 11), bit=27),
        ),
        (
            "heat2d",
            lambda: build_heat2d_grid(Heat2DConfig(nx=30, ny=26, seed=5)),
            FaultPlan(iteration=12, index=(14, 12), bit=26),
        ),
        (
            "advection-clamp",
            lambda: build_advection_grid(
                AdvectionConfig(nx=32, ny=32, boundary="clamp", seed=5)
            ),
            FaultPlan(iteration=8, index=(16, 17), bit=26),
        ),
        (
            "advection-periodic",
            lambda: build_advection_grid(
                AdvectionConfig(nx=32, ny=32, boundary="periodic", seed=5)
            ),
            FaultPlan(iteration=8, index=(16, 17), bit=26),
        ),
        (
            "hotspot3d",
            hotspot.build_grid,
            FaultPlan(iteration=10, index=(8, 9, 2), bit=26),
        ),
    ]


APPS = _app_grids()
APP_IDS = [name for name, _, _ in APPS]


@pytest.mark.parametrize("name, factory, plan", APPS, ids=APP_IDS)
@pytest.mark.parametrize("protector_cls", [OnlineABFT, OfflineABFT],
                         ids=["online", "offline"])
class TestEveryApplication:
    def _protector(self, protector_cls, grid):
        if protector_cls is OnlineABFT:
            return OnlineABFT.for_grid(grid, epsilon=1e-5)
        return OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)

    def test_error_free_run_matches_unprotected_bitwise(
        self, name, factory, plan, protector_cls
    ):
        protected = factory()
        unprotected = factory()
        report = self._protector(protector_cls, protected).run(protected, ITERATIONS)
        NoProtection().run(unprotected, ITERATIONS)
        assert report.total_detected == 0
        np.testing.assert_array_equal(protected.u, unprotected.u)

    def test_injected_fault_detected_and_repaired(
        self, name, factory, plan, protector_cls
    ):
        reference = factory()
        reference.run(ITERATIONS)

        protected = factory()
        unprotected = factory()
        protector = self._protector(protector_cls, protected)
        report = protector.run(protected, ITERATIONS, inject=FaultInjector([plan]))
        NoProtection().run(unprotected, ITERATIONS, inject=FaultInjector([plan]))

        err_protected = l2_error(reference.u, protected.u)
        err_unprotected = l2_error(reference.u, unprotected.u)
        assert report.total_detected >= 1
        assert err_protected < 1e-2 * max(err_unprotected, 1e-30)
