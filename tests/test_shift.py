"""Unit tests for ghost-cell padding and shifted views."""

import numpy as np
import pytest

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import (
    interior_slices,
    interior_view,
    normalize_radius,
    pad_array,
    shifted_view,
)


class TestNormalizeRadius:
    def test_scalar(self):
        assert normalize_radius(2, 3) == (2, 2, 2)

    def test_sequence(self):
        assert normalize_radius((1, 2), 2) == (1, 2)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            normalize_radius((1, 2, 3), 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_radius(-1, 2)


class TestPadArray:
    def test_clamp_replicates_edges(self):
        u = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        assert padded.shape == (4, 4)
        assert padded[0, 1] == 1.0  # above row 0, column 0
        assert padded[3, 2] == 4.0
        assert padded[0, 0] == 1.0  # corner: clamp of clamp

    def test_periodic_wraps(self):
        u = np.arange(6, dtype=float).reshape(2, 3)
        padded = pad_array(u, 1, BoundaryCondition.periodic())
        # ghost row above row 0 is the last row
        np.testing.assert_array_equal(padded[0, 1:-1], u[-1])
        # ghost column left of column 0 is the last column
        np.testing.assert_array_equal(padded[1:-1, 0], u[:, -1])

    def test_zero_fills_zero(self):
        u = np.ones((3, 3))
        padded = pad_array(u, 2, BoundaryCondition.zero())
        assert padded.shape == (7, 7)
        assert padded[0, 0] == 0.0
        assert padded[:2].sum() == 0.0

    def test_constant_fills_value(self):
        u = np.ones((3, 3))
        padded = pad_array(u, 1, BoundaryCondition.constant(7.5))
        assert padded[0, 2] == 7.5
        assert padded[4, 4] == 7.5

    def test_per_axis_radius_and_conditions(self):
        u = np.arange(12, dtype=float).reshape(3, 4)
        spec = BoundarySpec(
            (BoundaryCondition.zero(), BoundaryCondition.clamp())
        )
        padded = pad_array(u, (1, 2), spec)
        assert padded.shape == (5, 8)
        # zero ghost along axis 0
        assert padded[0, 3] == 0.0
        # clamp ghost along axis 1 replicates the first column
        assert padded[1, 0] == u[0, 0]
        assert padded[1, 1] == u[0, 0]

    def test_zero_radius_returns_copy(self):
        u = np.ones((2, 2))
        padded = pad_array(u, 0, BoundaryCondition.clamp())
        assert padded.shape == u.shape
        padded[0, 0] = 99.0
        assert u[0, 0] == 1.0  # not a view

    def test_interior_preserved(self):
        u = np.random.default_rng(0).random((5, 6))
        padded = pad_array(u, 2, BoundaryCondition.constant(-1.0))
        np.testing.assert_array_equal(padded[2:-2, 2:-2], u)

    def test_3d_padding(self):
        u = np.arange(24, dtype=float).reshape(2, 3, 4)
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        assert padded.shape == (4, 5, 6)
        np.testing.assert_array_equal(padded[1:-1, 1:-1, 1:-1], u)


class TestInteriorHelpers:
    def test_interior_slices(self):
        assert interior_slices((1, 2), 2) == (slice(1, -1), slice(2, -2))

    def test_interior_slices_zero_radius(self):
        assert interior_slices((0, 1), 2) == (slice(0, None), slice(1, -1))

    def test_interior_view_round_trip(self):
        u = np.random.default_rng(1).random((4, 5))
        padded = pad_array(u, 1, BoundaryCondition.zero())
        np.testing.assert_array_equal(interior_view(padded, 1), u)


class TestShiftedView:
    def test_zero_offset_is_interior(self):
        u = np.random.default_rng(2).random((4, 4))
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        np.testing.assert_array_equal(
            shifted_view(padded, (0, 0), 1, u.shape), u
        )

    def test_positive_offset_clamp(self):
        u = np.arange(9, dtype=float).reshape(3, 3)
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        east = shifted_view(padded, (1, 0), 1, u.shape)
        # east[x, y] == u[min(x+1, 2), y]
        expected = u[np.minimum(np.arange(3) + 1, 2), :]
        np.testing.assert_array_equal(east, expected)

    def test_negative_offset_periodic(self):
        u = np.arange(9, dtype=float).reshape(3, 3)
        padded = pad_array(u, 1, BoundaryCondition.periodic())
        west = shifted_view(padded, (-1, 0), 1, u.shape)
        expected = u[(np.arange(3) - 1) % 3, :]
        np.testing.assert_array_equal(west, expected)

    def test_offset_exceeding_radius_rejected(self):
        u = np.ones((3, 3))
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        with pytest.raises(ValueError, match="exceeds ghost radius"):
            shifted_view(padded, (2, 0), 1, u.shape)

    def test_offset_dimension_mismatch_rejected(self):
        u = np.ones((3, 3))
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        with pytest.raises(ValueError, match="components"):
            shifted_view(padded, (1, 0, 0), 1, u.shape)

    def test_view_not_copy(self):
        u = np.zeros((3, 3))
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        view = shifted_view(padded, (0, 1), 1, u.shape)
        padded[1, 2] = 42.0
        assert view[0, 0] == 42.0
