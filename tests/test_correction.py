"""Unit tests for error localisation and correction (Eq. 10)."""

import numpy as np
import pytest

from repro.core.checksums import both_checksums, checksum
from repro.core.correction import correct_errors, match_detections
from repro.core.detection import detect_errors
from repro.core.interpolation import interpolate_checksum
from repro.stencil.boundary import BoundarySpec
from repro.stencil.kernels import five_point_diffusion, jacobi4, seven_point_diffusion_3d
from repro.stencil.sweep import sweep


def _corrupt_and_detect_2d(rng, spec, corrupt_index, delta, epsilon=1e-8):
    """One sweep, one corruption; returns everything the corrector needs."""
    bspec = BoundarySpec.clamp(2)
    u_prev = rng.random((10, 8)) + 1.0
    a_prev, b_prev = both_checksums(u_prev)
    u_new = sweep(u_prev, spec, bspec)
    truth = u_new.copy()
    u_new[corrupt_index] += delta

    a_comp, b_comp = both_checksums(u_new)
    a_interp = interpolate_checksum(a_prev, u_prev, spec, bspec, 1)
    b_interp = interpolate_checksum(b_prev, u_prev, spec, bspec, 0)
    det_a = detect_errors(a_comp, a_interp, epsilon)
    det_b = detect_errors(b_comp, b_interp, epsilon)
    return u_new, truth, (a_comp, a_interp, b_comp, b_interp), (det_a, det_b)


class TestMatchDetections2D:
    def test_single_error_location(self, rng):
        u_new, truth, cs, (det_a, det_b) = _corrupt_and_detect_2d(
            rng, five_point_diffusion(0.2), (4, 5), 3.0
        )
        a_comp, a_interp, b_comp, b_interp = cs
        locations, unresolved = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        assert locations == [(4, 5)]
        assert unresolved == 0

    def test_two_errors_in_distinct_rows_and_columns(self, rng):
        spec = jacobi4()
        bspec = BoundarySpec.clamp(2)
        u_prev = rng.random((12, 12)) + 1.0
        a_prev, b_prev = both_checksums(u_prev)
        u_new = sweep(u_prev, spec, bspec)
        u_new[2, 3] += 5.0
        u_new[7, 9] -= 2.0
        a_comp, b_comp = both_checksums(u_new)
        a_interp = interpolate_checksum(a_prev, u_prev, spec, bspec, 1)
        b_interp = interpolate_checksum(b_prev, u_prev, spec, bspec, 0)
        det_a = detect_errors(a_comp, a_interp, 1e-8)
        det_b = detect_errors(b_comp, b_interp, 1e-8)
        locations, unresolved = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        assert set(locations) == {(2, 3), (7, 9)}
        assert unresolved == 0

    def test_unpaired_flag_reported_as_unresolved(self, rng):
        # A row flag with no column flag cannot be localised.
        a_comp = np.array([10.0, 20.0])
        a_interp = np.array([10.0, 25.0])
        b_comp = np.array([30.0, 40.0])
        b_interp = b_comp.copy()
        det_a = detect_errors(a_comp, a_interp, 1e-5)
        det_b = detect_errors(b_comp, b_interp, 1e-5)
        locations, unresolved = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        assert locations == []
        assert unresolved == 1

    def test_invalid_ndim(self, rng):
        det = detect_errors(np.ones(2), np.ones(2), 1e-5)
        with pytest.raises(ValueError, match="domain_ndim"):
            match_detections(det, det, np.ones(2), np.ones(2), np.ones(2), np.ones(2), 4)


class TestMatchDetections3D:
    def test_single_error_in_layer(self, rng):
        spec = seven_point_diffusion_3d(0.1)
        bspec = BoundarySpec.clamp(3)
        u_prev = rng.random((8, 7, 3)) + 1.0
        a_prev = checksum(u_prev, 1)
        b_prev = checksum(u_prev, 0)
        u_new = sweep(u_prev, spec, bspec)
        u_new[5, 2, 1] += 4.0
        a_comp = checksum(u_new, 1)
        b_comp = checksum(u_new, 0)
        a_interp = interpolate_checksum(a_prev, u_prev, spec, bspec, 1)
        b_interp = interpolate_checksum(b_prev, u_prev, spec, bspec, 0)
        det_a = detect_errors(a_comp, a_interp, 1e-8)
        det_b = detect_errors(b_comp, b_interp, 1e-8)
        locations, unresolved = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 3
        )
        assert locations == [(5, 2, 1)]
        assert unresolved == 0

    def test_errors_in_different_layers_are_independent(self, rng):
        spec = seven_point_diffusion_3d(0.1)
        bspec = BoundarySpec.clamp(3)
        u_prev = rng.random((6, 6, 4)) + 1.0
        a_prev = checksum(u_prev, 1)
        b_prev = checksum(u_prev, 0)
        u_new = sweep(u_prev, spec, bspec)
        u_new[1, 2, 0] += 3.0
        u_new[4, 5, 3] += 1.5
        a_comp = checksum(u_new, 1)
        b_comp = checksum(u_new, 0)
        a_interp = interpolate_checksum(a_prev, u_prev, spec, bspec, 1)
        b_interp = interpolate_checksum(b_prev, u_prev, spec, bspec, 0)
        det_a = detect_errors(a_comp, a_interp, 1e-8)
        det_b = detect_errors(b_comp, b_interp, 1e-8)
        locations, unresolved = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 3
        )
        assert set(locations) == {(1, 2, 0), (4, 5, 3)}
        assert unresolved == 0


class TestCorrectErrors:
    def test_single_error_recovered(self, rng):
        u_new, truth, cs, (det_a, det_b) = _corrupt_and_detect_2d(
            rng, five_point_diffusion(0.2), (4, 5), 3.0
        )
        a_comp, a_interp, b_comp, b_interp = cs
        locations, _ = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        records = correct_errors(u_new, locations, a_comp, a_interp, b_comp, b_interp)
        assert len(records) == 1
        assert records[0].index == (4, 5)
        assert records[0].old_value == pytest.approx(truth[4, 5] + 3.0)
        np.testing.assert_allclose(u_new, truth, rtol=1e-8)

    def test_correction_patches_checksums(self, rng):
        u_new, truth, cs, (det_a, det_b) = _corrupt_and_detect_2d(
            rng, five_point_diffusion(0.2), (2, 2), -1.5
        )
        a_comp, a_interp, b_comp, b_interp = cs
        locations, _ = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        correct_errors(u_new, locations, a_comp, a_interp, b_comp, b_interp)
        # After correction the patched checksums describe the repaired domain.
        np.testing.assert_allclose(a_comp, u_new.sum(axis=1), rtol=1e-8)
        np.testing.assert_allclose(b_comp, u_new.sum(axis=0), rtol=1e-8)

    @pytest.mark.parametrize("strategy", ["average", "row", "column"])
    def test_strategies_all_recover_value(self, rng, strategy):
        u_new, truth, cs, (det_a, det_b) = _corrupt_and_detect_2d(
            rng, jacobi4(), (6, 1), 2.0
        )
        a_comp, a_interp, b_comp, b_interp = cs
        locations, _ = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        records = correct_errors(
            u_new, locations, a_comp, a_interp, b_comp, b_interp, strategy=strategy
        )
        assert records[0].row_estimate == pytest.approx(truth[6, 1], rel=1e-8)
        assert records[0].column_estimate == pytest.approx(truth[6, 1], rel=1e-8)
        np.testing.assert_allclose(u_new, truth, rtol=1e-7)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            correct_errors(
                np.zeros((2, 2)), [], np.zeros(2), np.zeros(2), np.zeros(2),
                np.zeros(2), strategy="vote",
            )

    def test_location_dimension_mismatch_rejected(self, rng):
        u = rng.random((3, 3))
        with pytest.raises(ValueError, match="dimensionality"):
            correct_errors(
                u, [(1, 1, 1)], np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3)
            )

    def test_3d_correction(self, rng):
        spec = seven_point_diffusion_3d(0.1)
        bspec = BoundarySpec.clamp(3)
        u_prev = rng.random((6, 5, 3)) + 1.0
        a_prev = checksum(u_prev, 1)
        b_prev = checksum(u_prev, 0)
        u_new = sweep(u_prev, spec, bspec)
        truth = u_new.copy()
        u_new[3, 1, 2] += 2.5
        a_comp = checksum(u_new, 1)
        b_comp = checksum(u_new, 0)
        a_interp = interpolate_checksum(a_prev, u_prev, spec, bspec, 1)
        b_interp = interpolate_checksum(b_prev, u_prev, spec, bspec, 0)
        det_a = detect_errors(a_comp, a_interp, 1e-8)
        det_b = detect_errors(b_comp, b_interp, 1e-8)
        locations, _ = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 3
        )
        records = correct_errors(u_new, locations, a_comp, a_interp, b_comp, b_interp)
        assert records[0].index == (3, 1, 2)
        np.testing.assert_allclose(u_new, truth, rtol=1e-8)

    def test_applied_change_property(self, rng):
        u_new, truth, cs, (det_a, det_b) = _corrupt_and_detect_2d(
            rng, jacobi4(), (0, 0), 1.0
        )
        a_comp, a_interp, b_comp, b_interp = cs
        locations, _ = match_detections(
            det_a, det_b, a_comp, a_interp, b_comp, b_interp, 2
        )
        rec = correct_errors(u_new, locations, a_comp, a_interp, b_comp, b_interp)[0]
        assert rec.applied_change == pytest.approx(-1.0, rel=1e-6)
