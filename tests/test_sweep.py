"""Unit tests for the vectorised sweeps against the loop reference."""

import numpy as np
import pytest

from conftest import all_boundary_conditions, stencil_library_2d, stencil_library_3d
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.reference import reference_sweep2d, reference_sweep3d
from repro.stencil.shift import pad_array
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep, sweep_padded
from repro.stencil.sweep2d import sweep2d
from repro.stencil.sweep3d import sweep3d


@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
@pytest.mark.parametrize(
    "spec", stencil_library_2d(), ids=["jacobi4", "diffusion5", "smooth9", "advection"]
)
def test_sweep2d_matches_reference(rng, bc, spec):
    u = rng.random((9, 11))
    expected = reference_sweep2d(u, spec, bc)
    actual = sweep2d(u, spec, bc)
    np.testing.assert_allclose(actual, expected, rtol=1e-12)


@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
def test_sweep2d_with_constant_matches_reference(rng, bc):
    spec = stencil_library_2d()[1]
    u = rng.random((8, 7))
    constant = rng.random((8, 7))
    expected = reference_sweep2d(u, spec, bc, constant=constant)
    actual = sweep2d(u, spec, bc, constant=constant)
    np.testing.assert_allclose(actual, expected, rtol=1e-12)


@pytest.mark.parametrize("bc", all_boundary_conditions(), ids=lambda b: b.kind)
@pytest.mark.parametrize(
    "spec", stencil_library_3d(), ids=["diffusion7", "box27", "advection3d"]
)
def test_sweep3d_matches_reference(rng, bc, spec):
    u = rng.random((5, 6, 4))
    expected = reference_sweep3d(u, spec, bc)
    actual = sweep3d(u, spec, bc)
    np.testing.assert_allclose(actual, expected, rtol=1e-12)


def test_sweep3d_with_constant_matches_reference(rng):
    spec = stencil_library_3d()[0]
    u = rng.random((5, 4, 3))
    constant = rng.random((5, 4, 3))
    expected = reference_sweep3d(u, spec, BoundaryCondition.clamp(), constant=constant)
    actual = sweep3d(u, spec, BoundaryCondition.clamp(), constant=constant)
    np.testing.assert_allclose(actual, expected, rtol=1e-12)


def test_mixed_boundary_conditions_per_axis(rng):
    spec = stencil_library_2d()[0]
    u = rng.random((6, 8))
    bspec = BoundarySpec((BoundaryCondition.periodic(), BoundaryCondition.zero()))
    expected = reference_sweep2d(u, spec, bspec)
    actual = sweep2d(u, spec, bspec)
    np.testing.assert_allclose(actual, expected, rtol=1e-12)


def test_sweep_preserves_dtype(rng):
    spec = stencil_library_2d()[1]
    u32 = rng.random((6, 6)).astype(np.float32)
    assert sweep2d(u32, spec, BoundaryCondition.clamp()).dtype == np.float32
    u64 = rng.random((6, 6))
    assert sweep2d(u64, spec, BoundaryCondition.clamp()).dtype == np.float64


def test_sweep_out_parameter_reused(rng):
    spec = stencil_library_2d()[0]
    u = rng.random((5, 5))
    out = np.empty_like(u)
    result = sweep2d(u, spec, BoundaryCondition.clamp(), out=out)
    assert result is out


def test_sweep_out_shape_mismatch_rejected(rng):
    spec = stencil_library_2d()[0]
    u = rng.random((5, 5))
    with pytest.raises(ValueError, match="out has shape"):
        sweep2d(u, spec, BoundaryCondition.clamp(), out=np.empty((4, 4)))


def test_sweep_constant_shape_mismatch_rejected(rng):
    spec = stencil_library_2d()[0]
    u = rng.random((5, 5))
    with pytest.raises(ValueError, match="constant has shape"):
        sweep2d(u, spec, BoundaryCondition.clamp(), constant=np.zeros((2, 2)))


def test_sweep2d_rejects_3d_input(rng):
    spec = stencil_library_2d()[0]
    with pytest.raises(ValueError, match="2D array"):
        sweep2d(rng.random((3, 3, 3)), spec, BoundaryCondition.clamp())


def test_sweep3d_rejects_2d_input(rng):
    spec = stencil_library_3d()[0]
    with pytest.raises(ValueError, match="3D array"):
        sweep3d(rng.random((3, 3)), spec, BoundaryCondition.clamp())


def test_sweep2d_rejects_3d_stencil(rng):
    spec = stencil_library_3d()[0]
    with pytest.raises(ValueError, match="2D stencil"):
        sweep2d(rng.random((3, 3)), spec, BoundaryCondition.clamp())


def test_sweep_generic_dimension_mismatch(rng):
    spec = stencil_library_2d()[0]
    with pytest.raises(ValueError, match="dimensions"):
        sweep(rng.random((3, 3, 3)), spec, BoundaryCondition.clamp())


def test_sweep_padded_equals_sweep(rng):
    spec = stencil_library_2d()[2]
    u = rng.random((7, 9))
    bc = BoundaryCondition.periodic()
    padded = pad_array(u, spec.radius(), bc)
    direct = sweep2d(u, spec, bc)
    via_padded = sweep_padded(padded, spec, spec.radius(), u.shape)
    np.testing.assert_array_equal(direct, via_padded)


def test_identity_stencil_reproduces_input(rng):
    identity = StencilSpec.from_dict({(0, 0): 1.0})
    u = rng.random((6, 6))
    np.testing.assert_allclose(sweep2d(u, identity, BoundaryCondition.zero()), u)


def test_averaging_stencil_preserves_constant_field_with_clamp():
    spec = StencilSpec.four_point_average()
    u = np.full((10, 10), 5.0)
    result = sweep2d(u, spec, BoundaryCondition.clamp())
    np.testing.assert_allclose(result, u)


def test_periodic_sweep_preserves_total_mass_for_conservative_stencil(rng):
    # A stencil whose weights sum to 1 redistributes mass; with periodic
    # boundaries nothing leaves the domain, so the total is conserved.
    spec = StencilSpec.four_point_average()
    u = rng.random((16, 16))
    result = sweep2d(u, spec, BoundaryCondition.periodic())
    assert result.sum() == pytest.approx(u.sum(), rel=1e-12)
