"""Unit tests for the double-buffered grid containers."""

import numpy as np
import pytest

from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D, GridSnapshot
from repro.stencil.kernels import five_point_diffusion, seven_point_diffusion_3d
from repro.stencil.sweep2d import sweep2d


class TestGridConstruction:
    def test_basic_properties(self, small_grid_2d):
        g = small_grid_2d
        assert g.shape == (20, 16)
        assert g.nx == 20 and g.ny == 16
        assert g.ndim == 2
        assert g.size == 320
        assert g.iteration == 0
        assert g.previous is None
        assert g.previous_padded is None

    def test_initial_data_copied_by_default(self, rng):
        u0 = rng.random((4, 4)).astype(np.float32)
        g = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())
        u0[0, 0] = 999.0
        assert g.u[0, 0] != 999.0

    def test_non_float_input_promoted(self):
        u0 = np.arange(16).reshape(4, 4)  # integer array
        g = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())
        assert np.issubdtype(g.dtype, np.floating)

    def test_dimension_validation(self, rng):
        with pytest.raises(ValueError, match="2D domain"):
            Grid2D(rng.random((3, 3, 3)), seven_point_diffusion_3d(0.1),
                   BoundaryCondition.clamp())
        with pytest.raises(ValueError, match="3D domain"):
            Grid3D(rng.random((3, 3)), five_point_diffusion(0.2),
                   BoundaryCondition.clamp())

    def test_spec_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="stencil is"):
            Grid2D(rng.random((3, 3)), seven_point_diffusion_3d(0.1),
                   BoundaryCondition.clamp())

    def test_constant_shape_validated(self, rng):
        with pytest.raises(ValueError, match="constant term"):
            Grid2D(
                rng.random((4, 4)),
                five_point_diffusion(0.2),
                BoundaryCondition.clamp(),
                constant=np.zeros((2, 2)),
            )

    def test_repr(self, small_grid_2d):
        assert "Grid2D" in repr(small_grid_2d)


class TestGridStepping:
    def test_step_matches_sweep(self, small_grid_2d):
        g = small_grid_2d
        expected = sweep2d(g.u.copy(), g.spec, g.boundary)
        g.step()
        np.testing.assert_array_equal(g.u, expected)

    def test_step_advances_iteration_and_buffers(self, small_grid_2d):
        g = small_grid_2d
        before = g.u.copy()
        g.step()
        assert g.iteration == 1
        np.testing.assert_array_equal(g.previous, before)
        assert g.previous_padded is not None
        assert g.previous_padded.shape == (22, 18)

    def test_run_accumulates_iterations(self, small_grid_2d):
        small_grid_2d.run(5)
        assert small_grid_2d.iteration == 5

    def test_run_rejects_negative(self, small_grid_2d):
        with pytest.raises(ValueError):
            small_grid_2d.run(-1)

    def test_constant_term_applied_every_step(self, rng):
        u0 = np.zeros((6, 6), dtype=np.float32)
        constant = np.full((6, 6), 1.0, dtype=np.float32)
        g = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp(),
                   constant=constant)
        g.step()
        np.testing.assert_allclose(g.u, 1.0)
        g.step()
        np.testing.assert_allclose(g.u, 2.0, rtol=1e-6)

    def test_step_with_external_padded(self, small_grid_2d):
        g = small_grid_2d
        padded = g.padded_current()
        expected = sweep2d(g.u.copy(), g.spec, g.boundary)
        g.step(padded=padded)
        np.testing.assert_array_equal(g.u, expected)

    def test_3d_step(self, small_grid_3d):
        g = small_grid_3d
        g.step()
        assert g.iteration == 1
        assert g.u.shape == (12, 10, 4)
        assert g.layer(2).shape == (12, 10)


class TestSnapshotRestore:
    def test_snapshot_is_deep_copy(self, small_grid_2d):
        snap = small_grid_2d.snapshot()
        small_grid_2d.u[0, 0] = -1.0
        assert snap.u[0, 0] != -1.0

    def test_restore_round_trip(self, small_grid_2d):
        g = small_grid_2d
        snap = g.snapshot()
        original = g.u.copy()
        g.run(4)
        g.restore(snap)
        assert g.iteration == 0
        np.testing.assert_array_equal(g.u, original)
        assert g.previous is None

    def test_restore_shape_mismatch(self, small_grid_2d, rng):
        bad = GridSnapshot(rng.random((2, 2)), 0)
        with pytest.raises(ValueError, match="snapshot shape"):
            small_grid_2d.restore(bad)

    def test_snapshot_nbytes(self, small_grid_2d):
        snap = small_grid_2d.snapshot()
        assert snap.nbytes() == small_grid_2d.u.nbytes

    def test_copy_is_independent(self, small_grid_2d):
        clone = small_grid_2d.copy()
        clone.step()
        assert small_grid_2d.iteration == 0
        assert clone.iteration == 1
