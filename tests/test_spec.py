"""Unit tests for stencil specifications."""

import numpy as np
import pytest

from repro.stencil.spec import StencilPoint, StencilSpec


class TestStencilPoint:
    def test_basic_construction(self):
        p = StencilPoint((0, 1), 0.25)
        assert p.offset == (0, 1)
        assert p.weight == 0.25
        assert p.ndim == 2

    def test_coercion_to_int_and_float(self):
        p = StencilPoint((np.int64(1), np.int64(-1)), np.float32(0.5))
        assert p.offset == (1, -1)
        assert isinstance(p.offset[0], int)
        assert isinstance(p.weight, float)

    def test_invalid_dimensionality(self):
        with pytest.raises(ValueError):
            StencilPoint((1, 2, 3, 4), 1.0)


class TestStencilSpecConstruction:
    def test_from_pairs(self):
        spec = StencilSpec([((0, 0), 0.5), ((1, 0), 0.5)])
        assert spec.npoints == 2
        assert spec.ndim == 2

    def test_from_dict(self):
        spec = StencilSpec.from_dict({(0, 0): 1.0, (0, 1): -1.0})
        assert spec.weight_of((0, 1)) == -1.0

    def test_duplicate_offsets_are_merged(self):
        spec = StencilSpec([((0, 0), 0.25), ((0, 0), 0.25)])
        assert spec.npoints == 1
        assert spec.weight_of((0, 0)) == 0.5

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="same dimensionality"):
            StencilSpec([((0, 0), 1.0), ((0, 0, 0), 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            StencilSpec([])

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2D and 3D"):
            StencilSpec([((1,), 1.0)])

    def test_five_point(self):
        spec = StencilSpec.five_point(0.6, 0.1, 0.1, 0.1, 0.1)
        assert spec.npoints == 5
        assert spec.weight_of((0, 0)) == pytest.approx(0.6)
        assert spec.weight_of((-1, 0)) == pytest.approx(0.1)

    def test_four_point_average(self):
        spec = StencilSpec.four_point_average()
        assert spec.npoints == 4
        assert spec.weight_sum() == pytest.approx(1.0)
        assert spec.weight_of((0, 0)) == 0.0

    def test_nine_point_requires_nine_weights(self):
        with pytest.raises(ValueError):
            StencilSpec.nine_point([1.0] * 8)

    def test_seven_point_3d(self):
        spec = StencilSpec.seven_point_3d(0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
        assert spec.ndim == 3
        assert spec.npoints == 7
        assert spec.weight_of((0, 0, 1)) == pytest.approx(0.1)


class TestStencilSpecProperties:
    def test_radius(self):
        spec = StencilSpec.from_dict({(0, 0): 1.0, (-2, 0): 0.5, (0, 1): 0.5})
        assert spec.radius() == (2, 1)
        assert spec.max_radius() == 2

    def test_weight_sums(self):
        spec = StencilSpec.from_dict({(0, 0): -0.5, (1, 0): 0.75})
        assert spec.weight_sum() == pytest.approx(0.25)
        assert spec.abs_weight_sum() == pytest.approx(1.25)

    def test_axis_symmetry_symmetric(self):
        spec = StencilSpec.four_point_average()
        assert spec.is_axis_symmetric(0)
        assert spec.is_axis_symmetric(1)
        assert spec.is_fully_symmetric()

    def test_axis_symmetry_asymmetric(self):
        spec = StencilSpec.from_dict({(0, 0): 0.7, (-1, 0): 0.3})
        assert not spec.is_axis_symmetric(0)
        assert spec.is_axis_symmetric(1)
        assert not spec.is_fully_symmetric()

    def test_scaled(self):
        spec = StencilSpec.four_point_average().scaled(2.0)
        assert spec.weight_of((0, 1)) == pytest.approx(0.5)

    def test_points_round_trip(self):
        spec = StencilSpec.five_point(0.2, 0.2, 0.2, 0.2, 0.2)
        rebuilt = StencilSpec(spec.points())
        assert rebuilt == spec

    def test_iteration_yields_sorted_offsets(self):
        spec = StencilSpec.from_dict({(1, 0): 1.0, (-1, 0): 2.0, (0, 0): 3.0})
        offsets = [o for o, _ in spec]
        assert offsets == sorted(offsets)

    def test_weight_of_missing_offset(self):
        spec = StencilSpec.four_point_average()
        assert spec.weight_of((5, 5)) == 0.0

    def test_equality_and_hash(self):
        a = StencilSpec.four_point_average()
        b = StencilSpec.four_point_average()
        assert a == b
        assert hash(a) == hash(b)
        assert a != StencilSpec.from_dict({(0, 0): 1.0})

    def test_len_and_repr(self):
        spec = StencilSpec.four_point_average()
        assert len(spec) == 4
        assert "StencilSpec" in repr(spec)

    def test_offsets_and_weights_arrays(self):
        spec = StencilSpec.five_point(0.6, 0.1, 0.1, 0.1, 0.1)
        assert spec.offsets.shape == (5, 2)
        assert spec.weights.shape == (5,)
        assert spec.offsets.dtype == np.int64
