"""Unit tests for accuracy, timing and statistics metrics."""

import math
import time

import numpy as np
import pytest

from repro.metrics.accuracy import l2_error, max_abs_error, relative_l2_error
from repro.metrics.statistics import geometric_mean, quartile_summary, summarize
from repro.metrics.timing import Timer, overhead_percent, time_callable


class TestAccuracy:
    def test_l2_error_zero_for_identical(self, rng):
        u = rng.random((5, 5))
        assert l2_error(u, u) == 0.0

    def test_l2_error_matches_manual_computation(self):
        ref = np.array([1.0, 2.0, 3.0])
        comp = np.array([1.0, 2.0, 5.0])
        assert l2_error(ref, comp) == pytest.approx(2.0)

    def test_l2_error_matches_paper_equation(self, rng):
        ref = rng.random((4, 4, 2))
        comp = rng.random((4, 4, 2))
        expected = math.sqrt(((ref - comp) ** 2).sum())
        assert l2_error(ref, comp) == pytest.approx(expected)

    def test_l2_error_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            l2_error(rng.random(3), rng.random(4))

    def test_relative_l2_error(self):
        ref = np.array([3.0, 4.0])  # norm 5
        comp = np.array([3.0, 4.5])
        assert relative_l2_error(ref, comp) == pytest.approx(0.1)

    def test_relative_l2_error_zero_reference(self):
        assert relative_l2_error(np.zeros(3), np.ones(3)) == pytest.approx(math.sqrt(3))

    def test_max_abs_error(self):
        ref = np.array([[1.0, 2.0], [3.0, 4.0]])
        comp = np.array([[1.0, 2.5], [3.0, 3.0]])
        assert max_abs_error(ref, comp) == pytest.approx(1.0)

    def test_max_abs_error_empty(self):
        assert max_abs_error(np.empty(0), np.empty(0)) == 0.0


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.02
        assert len(timer.intervals) == 2

    def test_start_stop(self):
        timer = Timer()
        timer.start()
        assert timer.running
        interval = timer.stop()
        assert interval >= 0.0
        assert not timer.running

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.intervals == []

    def test_time_callable(self):
        elapsed, result = time_callable(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert elapsed >= 0.0


class TestOverhead:
    def test_overhead_percent(self):
        assert overhead_percent(1.08, 1.0) == pytest.approx(8.0)
        assert overhead_percent(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            overhead_percent(1.0, 0.0)


class TestStatistics:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_summarize_single_sample_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_summarize_empty_is_nan(self):
        stats = summarize([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_summary_as_dict(self):
        d = summarize([1.0, 3.0]).as_dict()
        assert set(d) == {"count", "mean", "median", "min", "max", "std"}

    def test_quartile_summary(self):
        box = quartile_summary(list(range(1, 101)))
        assert box["median"] == pytest.approx(50.5)
        assert box["q1"] == pytest.approx(25.75)
        assert box["q3"] == pytest.approx(75.25)
        assert box["whisker_low"] < box["q1"]
        assert box["whisker_high"] > box["q3"]

    def test_quartile_summary_empty(self):
        box = quartile_summary([])
        assert all(math.isnan(v) for v in box.values())

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_with_zero_uses_floor(self):
        value = geometric_mean([0.0, 1.0], floor=1e-10)
        assert value == pytest.approx(1e-5)

    def test_geometric_mean_empty(self):
        assert math.isnan(geometric_mean([]))
