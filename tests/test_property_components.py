"""Property-based tests for supporting components: sweeps, bit flips,
decomposition and checksums."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksums import column_checksum, row_checksum
from repro.faults.bitflip import bit_field, flip_bit_in_array
from repro.parallel.decomposition import decompose, partition_extent
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.reference import reference_sweep2d
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep2d import sweep2d


def boundary_conditions():
    return st.sampled_from(
        [
            BoundaryCondition.clamp(),
            BoundaryCondition.periodic(),
            BoundaryCondition.zero(),
            BoundaryCondition.constant(-2.5),
        ]
    )


@st.composite
def small_domains(draw):
    nx = draw(st.integers(3, 8))
    ny = draw(st.integers(3, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).uniform(-5.0, 5.0, size=(nx, ny))


@st.composite
def small_specs(draw):
    offsets = st.tuples(st.integers(-1, 1), st.integers(-1, 1))
    points = draw(
        st.dictionaries(
            offsets,
            st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=5,
        )
    )
    return StencilSpec.from_dict(points)


@given(domain=small_domains(), spec=small_specs(), bc=boundary_conditions())
@settings(max_examples=40)
def test_vectorised_sweep_equals_reference_sweep(domain, spec, bc):
    """The vectorised sweep agrees with the literal loop implementation."""
    bspec = BoundarySpec.uniform(bc, 2)
    np.testing.assert_allclose(
        sweep2d(domain, spec, bspec),
        reference_sweep2d(domain, spec, bspec),
        rtol=1e-10,
        atol=1e-12,
    )


@given(domain=small_domains())
def test_checksum_totals_agree(domain):
    """Row and column checksums always sum to the same domain total."""
    assert np.isclose(row_checksum(domain).sum(), column_checksum(domain).sum())


@given(
    seed=st.integers(0, 2**31 - 1),
    bit=st.integers(0, 31),
    nx=st.integers(2, 10),
    ny=st.integers(2, 10),
)
def test_bitflip_is_an_involution_and_local(seed, bit, nx, ny):
    """Flipping the same bit twice restores the array; one flip touches one cell."""
    rng = np.random.default_rng(seed)
    arr = rng.uniform(0.1, 100.0, size=(nx, ny)).astype(np.float32)
    original = arr.copy()
    index = (int(rng.integers(0, nx)), int(rng.integers(0, ny)))

    old, new = flip_bit_in_array(arr, index, bit)
    assert old == original[index]
    changed = np.argwhere(arr != original)
    assert len(changed) <= 1  # NaN payloads compare unequal at exactly one site
    flip_bit_in_array(arr, index, bit)
    np.testing.assert_array_equal(arr, original)


@given(seed=st.integers(0, 2**31 - 1), bit=st.integers(23, 30))
def test_exponent_flip_changes_magnitude_significantly(seed, bit):
    """Exponent bit-flips change the value by at least a factor of 2."""
    rng = np.random.default_rng(seed)
    arr = rng.uniform(1.0, 100.0, size=4).astype(np.float32)
    old, new = flip_bit_in_array(arr, 1, bit)
    assert bit_field(bit, np.float32) == "exponent"
    if np.isfinite(new) and new != 0.0:
        ratio = abs(new) / abs(old)
        assert ratio >= 2.0 or ratio <= 0.5


@given(n=st.integers(1, 500), parts=st.integers(1, 16))
def test_partition_extent_is_a_partition(n, parts):
    """Block partitioning covers the range exactly, in order, without gaps."""
    if parts > n:
        parts = n
    bounds = partition_extent(n, parts)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == n
    for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
        assert a1 == b0
        assert a1 > a0
    sizes = [b - a for a, b in bounds]
    assert max(sizes) - min(sizes) <= 1


@given(
    nx=st.integers(4, 20),
    ny=st.integers(4, 20),
    px=st.integers(1, 4),
    py=st.integers(1, 4),
)
def test_decomposition_covers_domain_exactly_once(nx, ny, px, py):
    """Every domain point belongs to exactly one tile."""
    px, py = min(px, nx), min(py, ny)
    boxes = decompose((nx, ny), (px, py))
    counts = np.zeros((nx, ny), dtype=int)
    for box in boxes:
        counts[box.slices] += 1
    assert (counts == 1).all()
