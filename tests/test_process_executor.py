"""Tests for the shared-memory process-pool tile executor.

The process pipeline must be indistinguishable from the serial one:
bit-identical domains, identical detection/correction counts (including
under fault injection, where checksums are recomputed in the parent
after the hook runs), and clean shared-memory lifecycle.

CI runs this file with ``REPRO_TEST_WORKERS=2`` to pin the pool width.
"""

import os

import numpy as np
import pytest

from repro.parallel.executor import (
    ProcessPoolTileExecutor,
    SerialExecutor,
    ThreadPoolTileExecutor,
    default_executor_kind,
    make_executor,
    resolve_workers,
    set_default_executor,
    set_default_workers,
)
from repro.parallel.runner import TiledStencilRunner
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D, Grid3D
from repro.stencil.kernels import five_point_diffusion, seven_point_diffusion_3d

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def _double(x):
    return x * 2


def _grid_2d(rng, constant=False, size=(32, 24)):
    u0 = (rng.random(size) * 100.0).astype(np.float32)
    const = (
        (rng.random(size) * 0.1).astype(np.float32) if constant else None
    )
    return Grid2D(
        u0, five_point_diffusion(0.2), BoundaryCondition.clamp(), constant=const
    )


class TestProcessPoolExecutor:
    def test_map_matches_serial(self):
        items = list(range(20))
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            result = pool.map(_double, items)
        assert result == [x * 2 for x in items]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolTileExecutor(workers=0)

    def test_shutdown_idempotent(self):
        pool = ProcessPoolTileExecutor(workers=1)
        pool.map(_double, [1])
        pool.shutdown()
        pool.shutdown()

    def test_kind_attribute(self):
        assert ProcessPoolTileExecutor(workers=1).kind == "process"
        assert ThreadPoolTileExecutor(workers=1).kind == "threads"
        assert SerialExecutor().kind == "serial"


class TestMakeExecutorAndDefaults:
    def test_make_process(self):
        ex = make_executor("process", workers=WORKERS)
        assert isinstance(ex, ProcessPoolTileExecutor)
        assert ex.workers == WORKERS
        ex.shutdown()

    def test_make_process_aliases(self):
        for alias in ("processes", "processpool", "shm"):
            assert isinstance(
                make_executor(alias, workers=1), ProcessPoolTileExecutor
            )

    def test_default_chain(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_kind() == "serial"
        assert isinstance(make_executor(None), SerialExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        assert default_executor_kind() == "threads"
        try:
            set_default_executor("process")
            assert default_executor_kind() == "process"
        finally:
            set_default_executor(None)
        assert default_executor_kind() == "threads"

    def test_set_default_validates(self):
        with pytest.raises(ValueError, match="unknown executor"):
            set_default_executor("mpi")

    def test_runner_consults_default_chain(self, monkeypatch):
        """--executor/REPRO_EXECUTOR must reach runners built without one."""
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        rng = np.random.default_rng(42)
        runner = TiledStencilRunner(_grid_2d(rng), (2, 2))
        try:
            assert isinstance(runner.executor, ThreadPoolTileExecutor)
            assert runner.executor.workers == 2
            runner.step()
        finally:
            runner.shutdown()
        # a runner-built executor IS shut down by runner.shutdown()
        assert runner.executor._pool is None

    def test_runner_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        rng = np.random.default_rng(42)
        runner = TiledStencilRunner(_grid_2d(rng), (2, 2))
        assert isinstance(runner.executor, SerialExecutor)


class TestResolveWorkers:
    """The single worker-resolution helper (executors, runners, benches)."""

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_none_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        try:
            set_default_workers(3)
            assert resolve_workers(None) == 3
        finally:
            set_default_workers(None)
        assert resolve_workers(None) == 5

    def test_override_validated(self):
        with pytest.raises(ValueError):
            set_default_workers(0)

    def test_explicit_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(-3)

    def test_malformed_env_gets_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_every_executor_resolves_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert ThreadPoolTileExecutor().workers == 2
        assert ProcessPoolTileExecutor().workers == 2
        assert make_executor("threads").workers == 2


class TestProcessRunnerEquivalence:
    def _run_pair(self, seed, inject=None, steps=5, **grid_kwargs):
        # Fresh generator per build so both grids see identical data.
        serial = TiledStencilRunner.with_online_abft(
            _grid_2d(np.random.default_rng(seed), **grid_kwargs), (2, 2),
            executor=SerialExecutor(), epsilon=1e-5,
        )
        serial.run(steps, inject=inject)
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            proc = TiledStencilRunner.with_online_abft(
                _grid_2d(np.random.default_rng(seed), **grid_kwargs), (2, 2),
                executor=pool, epsilon=1e-5,
            )
            try:
                proc.run(steps, inject=inject)
                np.testing.assert_array_equal(serial.grid.u, proc.grid.u)
                return serial, proc
            finally:
                proc.shutdown()

    def test_fault_free_bitwise_identical(self):
        serial, proc = self._run_pair(seed=11)
        assert proc.total_detected() == serial.total_detected() == 0

    def test_constant_term_travels_by_shared_memory(self):
        self._run_pair(seed=12, constant=True)

    def test_injection_checksums_identical_to_serial(self):
        def inject(grid, iteration):
            if iteration == 2:
                grid.u[10, 10] += 2048.0

        serial, proc = self._run_pair(seed=13, inject=inject, steps=4)
        assert serial.total_detected() == proc.total_detected() == 1
        assert serial.total_corrected() == proc.total_corrected() == 1

    def test_3d_layers_decomposition(self):
        rng = np.random.default_rng(14)
        u0 = (rng.random((16, 14, 4)) * 100.0).astype(np.float32)

        def build():
            return Grid3D(
                u0, seven_point_diffusion_3d(0.1), BoundaryCondition.clamp()
            )

        serial = TiledStencilRunner.with_online_abft(
            build(), "layers", executor=SerialExecutor(), epsilon=1e-5
        )
        serial.run(3)
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            with TiledStencilRunner.with_online_abft(
                build(), "layers", executor=pool, epsilon=1e-5
            ) as proc:
                proc.run(3)
                np.testing.assert_array_equal(serial.grid.u, proc.grid.u)

    def test_unprotected_tiles(self):
        rng = np.random.default_rng(15)
        u0 = (rng.random((20, 20)) * 10.0).astype(np.float32)
        ref = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.periodic())
        ref.run(4)
        grid = Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.periodic())
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            with TiledStencilRunner(grid, (2, 2), executor=pool) as runner:
                runner.run(4)
                np.testing.assert_array_equal(grid.u, ref.u)

    def test_thread_executor_also_bitwise_identical(self):
        rng = np.random.default_rng(16)
        serial = TiledStencilRunner.with_online_abft(
            _grid_2d(rng), (2, 2), executor=SerialExecutor(), epsilon=1e-5
        )
        serial.run(5)
        rng = np.random.default_rng(16)
        with ThreadPoolTileExecutor(workers=WORKERS) as pool:
            threaded = TiledStencilRunner.with_online_abft(
                _grid_2d(rng), (2, 2), executor=pool, epsilon=1e-5
            )
            threaded.run(5)
            np.testing.assert_array_equal(serial.grid.u, threaded.grid.u)


class TestTileBatching:
    """map_tiles groups tiles into one task per worker per step."""

    def test_empty_task_list(self):
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            assert pool.map_tiles([]) == []

    def test_more_tiles_than_workers_matches_serial(self):
        """A 3x3 tiling on a narrower pool: batches are uneven (the
        first batches carry the extra tiles) and the flattened results
        must keep per-tile order and serial semantics bit for bit."""
        seed = 21
        serial = TiledStencilRunner.with_online_abft(
            _grid_2d(np.random.default_rng(seed), size=(33, 27)), (3, 3),
            executor=SerialExecutor(), epsilon=1e-5,
        )
        serial.run(4)
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            proc = TiledStencilRunner.with_online_abft(
                _grid_2d(np.random.default_rng(seed), size=(33, 27)), (3, 3),
                executor=pool, epsilon=1e-5,
            )
            try:
                proc.run(4)
                np.testing.assert_array_equal(serial.grid.u, proc.grid.u)
                assert proc.total_detected() == serial.total_detected() == 0
            finally:
                proc.shutdown()

    def test_injection_with_batched_tiles(self):
        def inject(grid, iteration):
            if iteration == 2:
                grid.u[20, 20] += 1024.0

        seed = 22
        serial = TiledStencilRunner.with_online_abft(
            _grid_2d(np.random.default_rng(seed), size=(33, 27)), (3, 3),
            executor=SerialExecutor(), epsilon=1e-5,
        )
        serial.run(4, inject=inject)
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            proc = TiledStencilRunner.with_online_abft(
                _grid_2d(np.random.default_rng(seed), size=(33, 27)), (3, 3),
                executor=pool, epsilon=1e-5,
            )
            try:
                proc.run(4, inject=inject)
                np.testing.assert_array_equal(serial.grid.u, proc.grid.u)
                assert proc.total_detected() == serial.total_detected() == 1
                assert proc.total_corrected() == serial.total_corrected() == 1
            finally:
                proc.shutdown()


class TestSharedMemoryLifecycle:
    def test_buffers_migrate_once_and_release(self):
        rng = np.random.default_rng(17)
        grid = _grid_2d(rng)
        with ProcessPoolTileExecutor(workers=WORKERS) as pool:
            runner = TiledStencilRunner.with_online_abft(
                grid, (2, 2), executor=pool, epsilon=1e-5
            )
            assert not grid.buffers.is_shared
            runner.step()
            assert grid.buffers.is_shared
            names = grid.buffers.shm_names
            runner.step()  # no re-migration: same blocks, swapped roles
            assert set(grid.buffers.shm_names) == set(names)
            before = grid.u.copy()
            runner.shutdown()
            assert not grid.buffers.is_shared
            np.testing.assert_array_equal(grid.u, before)
            # a caller-provided executor survives runner.shutdown()
            assert pool._pool is not None
            # the grid keeps working on heap buffers after shutdown
            grid.step()

    def test_grid_share_buffers_rebinds_views(self):
        rng = np.random.default_rng(18)
        grid = _grid_2d(rng)
        before = grid.u.copy()
        grid.share_buffers()
        assert grid.buffers.is_shared
        np.testing.assert_array_equal(grid.u, before)
        grid.step()  # stepping works on shared buffers
        grid.close_buffers()
        assert not grid.buffers.is_shared
        grid.step()
