"""Unit tests for executors and halo helpers."""

import numpy as np
import pytest

from repro.parallel.decomposition import decompose
from repro.parallel.executor import (
    SerialExecutor,
    ThreadPoolTileExecutor,
    make_executor,
)
from repro.parallel.halo import (
    boundary_strip,
    ghost_slab,
    ingest_halo,
    padded_tile_view,
    stack_with_halos,
    synthesize_ghost,
    synthesize_ghost_into,
    tile_constant,
)
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.shift import pad_array


class TestExecutors:
    def test_serial_map_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_thread_pool_map_matches_serial(self):
        items = list(range(50))
        with ThreadPoolTileExecutor(workers=4) as pool:
            result = pool.map(lambda x: x * x, items)
        assert result == [x * x for x in items]

    def test_thread_pool_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadPoolTileExecutor(workers=0)

    def test_thread_pool_shutdown_idempotent(self):
        pool = ThreadPoolTileExecutor(workers=2)
        pool.map(lambda x: x, [1])
        pool.shutdown()
        pool.shutdown()

    def test_serial_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map(len, ["ab"]) == [2]

    def test_make_executor(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("threads", workers=2), ThreadPoolTileExecutor)
        with pytest.raises(ValueError):
            make_executor("mpi")

    def test_none_workers_uses_cpu_count(self):
        import os

        expected = max(1, os.cpu_count() or 1)
        assert ThreadPoolTileExecutor(workers=None).workers == expected
        assert ThreadPoolTileExecutor().workers == expected
        assert make_executor("threads").workers == expected
        assert make_executor("threads", workers=None).workers == expected


class TestPaddedTileView:
    def test_interior_tile_halo_holds_neighbor_data(self, rng):
        u = rng.random((8, 8))
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        boxes = decompose(u.shape, (2, 2))
        # tile (1, 1): its low-side ghost rows must be the last row of tile (0, 1)
        box = [b for b in boxes if b.index == (1, 1)][0]
        view = padded_tile_view(padded, box, 1)
        assert view.shape == (6, 6)
        np.testing.assert_array_equal(view[0, 1:-1], u[3, 4:8])

    def test_domain_edge_tile_halo_holds_boundary_condition(self, rng):
        u = rng.random((6, 6))
        padded = pad_array(u, 1, BoundaryCondition.constant(9.0))
        box = decompose(u.shape, (2, 2))[0]  # tile (0, 0) touches the domain edge
        view = padded_tile_view(padded, box, 1)
        assert view[0, 0] == 9.0

    def test_tile_interior_preserved(self, rng):
        u = rng.random((9, 7))
        padded = pad_array(u, 2, BoundaryCondition.zero())
        for box in decompose(u.shape, (3, 1)):
            view = padded_tile_view(padded, box, 2)
            np.testing.assert_array_equal(view[2:-2, 2:-2], u[box.slices])


class TestTileConstant:
    def test_none_passthrough(self):
        box = decompose((4, 4), (2, 2))[0]
        assert tile_constant(None, box) is None

    def test_slicing(self, rng):
        c = rng.random((6, 6))
        box = decompose((6, 6), (2, 2))[3]
        np.testing.assert_array_equal(tile_constant(c, box), c[3:, 3:])


class TestHaloStrips:
    def test_boundary_strip_low_high(self, rng):
        u = rng.random((5, 4))
        np.testing.assert_array_equal(boundary_strip(u, 0, "low", 2), u[:2])
        np.testing.assert_array_equal(boundary_strip(u, 0, "high", 1), u[4:])
        np.testing.assert_array_equal(boundary_strip(u, 1, "high", 2), u[:, 2:])

    def test_boundary_strip_is_a_copy(self, rng):
        u = rng.random((4, 4))
        strip = boundary_strip(u, 0, "low", 1)
        u[0, 0] = 77.0
        assert strip[0, 0] != 77.0

    def test_boundary_strip_validation(self, rng):
        u = rng.random((4, 4))
        with pytest.raises(ValueError):
            boundary_strip(u, 0, "middle", 1)
        with pytest.raises(ValueError):
            boundary_strip(u, 0, "low", 0)

    def test_synthesize_clamp_ghost(self, rng):
        u = rng.random((4, 3))
        ghost = synthesize_ghost(u, 0, "high", 2, BoundaryCondition.clamp())
        assert ghost.shape == (2, 3)
        np.testing.assert_array_equal(ghost[0], u[-1])
        np.testing.assert_array_equal(ghost[1], u[-1])

    def test_synthesize_constant_and_zero_ghost(self, rng):
        u = rng.random((4, 3))
        np.testing.assert_array_equal(
            synthesize_ghost(u, 1, "low", 1, BoundaryCondition.zero()),
            np.zeros((4, 1)),
        )
        np.testing.assert_array_equal(
            synthesize_ghost(u, 1, "low", 1, BoundaryCondition.constant(2.0)),
            np.full((4, 1), 2.0),
        )

    def test_synthesize_periodic_rejected(self, rng):
        with pytest.raises(ValueError, match="exchanged"):
            synthesize_ghost(rng.random((3, 3)), 0, "low", 1, BoundaryCondition.periodic())

    def test_stack_with_halos(self, rng):
        interior = rng.random((4, 3))
        lo = rng.random((1, 3))
        hi = rng.random((1, 3))
        stacked = stack_with_halos(lo, interior, hi, 0)
        assert stacked.shape == (6, 3)
        np.testing.assert_array_equal(stacked[0:1], lo)
        np.testing.assert_array_equal(stacked[1:5], interior)

    def test_stack_with_halos_shape_validation(self, rng):
        interior = rng.random((4, 3))
        with pytest.raises(ValueError, match="ghost strip"):
            stack_with_halos(rng.random((1, 2)), interior, rng.random((1, 3)), 0)


class TestInPlaceHaloIngestion:
    """The zero-copy receive path: ghost slabs written in place."""

    def test_ghost_slab_is_view_excluding_corners(self, rng):
        padded = rng.random((8, 7))  # interior (4, 5) with radius (2, 1)
        lo = ghost_slab(padded, (2, 1), 0, "low")
        hi = ghost_slab(padded, (2, 1), 0, "high")
        assert lo.base is padded and hi.base is padded
        np.testing.assert_array_equal(lo, padded[0:2, 1:6])
        np.testing.assert_array_equal(hi, padded[6:8, 1:6])
        side = ghost_slab(padded, (2, 1), 1, "low")
        np.testing.assert_array_equal(side, padded[2:6, 0:1])

    def test_ghost_slab_validation(self, rng):
        padded = rng.random((6, 5))
        with pytest.raises(ValueError, match="radius 0"):
            ghost_slab(padded, (1, 0), 1, "low")
        with pytest.raises(ValueError, match="side"):
            ghost_slab(padded, (1, 1), 0, "middle")

    def test_ingest_halo_writes_payload_in_place(self, rng):
        padded = np.zeros((6, 5))
        payload = rng.random((1, 3))
        slab = ingest_halo(padded, (1, 1), 0, "low", payload)
        assert slab.base is padded
        np.testing.assert_array_equal(padded[0:1, 1:4], payload)
        # Corners stay untouched: they belong to the later axes' refresh.
        assert padded[0, 0] == 0.0 and padded[0, 4] == 0.0

    def test_ingest_halo_shape_mismatch_rejected(self, rng):
        padded = np.zeros((6, 5))
        with pytest.raises(ValueError, match="ghost slab expects"):
            ingest_halo(padded, (1, 1), 0, "low", rng.random((2, 3)))

    @pytest.mark.parametrize(
        "bc",
        [
            BoundaryCondition.clamp(),
            BoundaryCondition.zero(),
            BoundaryCondition.constant(4.5),
        ],
        ids=lambda b: b.kind,
    )
    def test_synthesize_into_matches_allocating_form(self, rng, bc):
        u = rng.random((4, 3))
        for side in ("low", "high"):
            padded = pad_array(u, (2, 1), BoundaryCondition.zero())
            slab = synthesize_ghost_into(padded, (2, 1), 0, side, bc)
            expected = synthesize_ghost(u, 0, side, 2, bc)
            np.testing.assert_array_equal(slab, expected)
            assert slab.base is padded

    def test_synthesize_into_periodic_rejected(self, rng):
        padded = np.zeros((5, 5))
        with pytest.raises(ValueError, match="exchanged"):
            synthesize_ghost_into(
                padded, (1, 1), 0, "low", BoundaryCondition.periodic()
            )
