"""Unit tests for checkpoint storage and rollback recovery."""

import numpy as np
import pytest

from repro.checkpoint.recovery import rollback_and_recompute
from repro.checkpoint.store import Checkpoint, InMemoryCheckpointStore
from repro.core.checksums import column_checksum


class TestCheckpointStore:
    def _checkpoint(self, grid, iteration=None):
        return Checkpoint(
            iteration=grid.iteration if iteration is None else iteration,
            snapshot=grid.snapshot(),
            checksums={0: column_checksum(grid.u)},
        )

    def test_save_and_latest(self, small_grid_2d):
        store = InMemoryCheckpointStore()
        assert store.latest() is None
        ckpt = self._checkpoint(small_grid_2d)
        store.save(ckpt)
        assert store.latest() is ckpt
        assert len(store) == 1
        assert store.saves == 1

    def test_capacity_eviction(self, small_grid_2d):
        store = InMemoryCheckpointStore(max_checkpoints=2)
        c0 = self._checkpoint(small_grid_2d, 0)
        c1 = self._checkpoint(small_grid_2d, 1)
        c2 = self._checkpoint(small_grid_2d, 2)
        store.save(c0)
        store.save(c1)
        store.save(c2)
        assert len(store) == 2
        assert store.latest() is c2
        assert store.at_or_before(0) is None  # evicted

    def test_at_or_before(self, small_grid_2d):
        store = InMemoryCheckpointStore(max_checkpoints=5)
        for it in (0, 4, 8):
            store.save(self._checkpoint(small_grid_2d, it))
        assert store.at_or_before(5).iteration == 4
        assert store.at_or_before(8).iteration == 8
        assert store.at_or_before(100).iteration == 8

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            InMemoryCheckpointStore(max_checkpoints=0)

    def test_clear_and_restore_counter(self, small_grid_2d):
        store = InMemoryCheckpointStore()
        store.save(self._checkpoint(small_grid_2d))
        store.mark_restore()
        assert store.restores == 1
        store.clear()
        assert len(store) == 0

    def test_nbytes_accounts_for_domain_and_checksums(self, small_grid_2d):
        store = InMemoryCheckpointStore()
        ckpt = self._checkpoint(small_grid_2d)
        store.save(ckpt)
        assert store.nbytes() == ckpt.nbytes()
        assert ckpt.nbytes() >= small_grid_2d.u.nbytes

    def test_checkpoint_snapshot_isolated_from_grid(self, small_grid_2d):
        ckpt = self._checkpoint(small_grid_2d)
        small_grid_2d.u[0, 0] = 1e9
        assert ckpt.snapshot.u[0, 0] != 1e9


class TestRollbackAndRecompute:
    def test_recompute_reproduces_clean_run(self, small_grid_2d):
        grid = small_grid_2d
        ckpt = Checkpoint(iteration=0, snapshot=grid.snapshot(), checksums={})
        clean = grid.copy()
        clean.run(6)
        # Corrupt the grid arbitrarily, then recover.
        grid.run(6)
        grid.u[3, 3] = 1e12
        recomputed = rollback_and_recompute(grid, ckpt, 6)
        assert recomputed == 6
        assert grid.iteration == 6
        np.testing.assert_array_equal(grid.u, clean.u)

    def test_on_step_callback_invoked_per_sweep(self, small_grid_2d):
        grid = small_grid_2d
        ckpt = Checkpoint(iteration=0, snapshot=grid.snapshot(), checksums={})
        grid.run(4)
        seen = []
        rollback_and_recompute(grid, ckpt, 4, on_step=lambda g: seen.append(g.iteration))
        assert seen == [1, 2, 3, 4]

    def test_inject_hook_forwarded(self, small_grid_2d):
        grid = small_grid_2d
        ckpt = Checkpoint(iteration=0, snapshot=grid.snapshot(), checksums={})
        grid.run(3)
        calls = []
        rollback_and_recompute(
            grid, ckpt, 3, inject=lambda g, it: calls.append(it)
        )
        assert calls == [1, 2, 3]

    def test_negative_iterations_rejected(self, small_grid_2d):
        ckpt = Checkpoint(
            iteration=0, snapshot=small_grid_2d.snapshot(), checksums={}
        )
        with pytest.raises(ValueError):
            rollback_and_recompute(small_grid_2d, ckpt, -1)
