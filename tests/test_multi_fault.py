"""Behaviour under multiple silent errors.

Theorem 2 guarantees *detection* as long as errors do not cancel in the
checksums; localisation/correction of several simultaneous errors is only
possible when the row/column mismatch pattern pairs up. These tests pin
down both behaviours, plus the multi-fault campaign support.
"""

import numpy as np
import pytest

from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import Grid2D
from repro.stencil.kernels import five_point_diffusion


def _make_grid(rng, shape=(24, 20)):
    u0 = (rng.random(shape) * 100).astype(np.float32)
    return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())


class TestMultipleErrorsOnline:
    def test_two_errors_in_same_iteration_distinct_rows_and_columns(self, rng):
        grid = _make_grid(rng)
        ref = grid.copy()
        ref.run(20)
        plans = [
            FaultPlan(iteration=9, index=(3, 4), bit=26),
            FaultPlan(iteration=9, index=(15, 12), bit=25),
        ]
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = protector.run(grid, 20, inject=FaultInjector(plans))
        assert run.total_detected >= 2
        assert run.total_corrected >= 2
        assert l2_error(ref.u, grid.u) < 1.0

    def test_two_errors_in_same_column_detected_even_if_not_correctable(self, rng):
        # Both corruptions land in the same column: the column checksum
        # flags one entry, the row checksum flags two - the pattern cannot
        # always be resolved, but it must never go unnoticed.
        grid = _make_grid(rng)
        plans = [
            FaultPlan(iteration=7, index=(3, 10), bit=26),
            FaultPlan(iteration=7, index=(15, 10), bit=26),
        ]
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = protector.run(grid, 14, inject=FaultInjector(plans))
        assert run.total_detected >= 1

    def test_errors_in_consecutive_iterations_both_corrected(self, rng):
        grid = _make_grid(rng)
        ref = grid.copy()
        ref.run(20)
        plans = [
            FaultPlan(iteration=5, index=(6, 6), bit=27),
            FaultPlan(iteration=6, index=(12, 3), bit=27),
        ]
        protector = OnlineABFT.for_grid(grid, epsilon=1e-5)
        run = protector.run(grid, 20, inject=FaultInjector(plans))
        assert run.total_corrected >= 2
        assert l2_error(ref.u, grid.u) < 1.0


class TestMultipleErrorsOffline:
    def test_several_faults_in_one_window_erased_by_one_rollback(self, rng):
        grid = _make_grid(rng)
        ref = grid.copy()
        ref.run(24)
        plans = [
            FaultPlan(iteration=10, index=(4, 4), bit=27),
            FaultPlan(iteration=12, index=(18, 15), bit=28),
            FaultPlan(iteration=14, index=(9, 2), bit=26),
        ]
        protector = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = protector.run(grid, 24, inject=FaultInjector(plans))
        assert run.total_detected >= 1
        assert run.total_rollbacks == 1  # all three land in the same window
        assert l2_error(ref.u, grid.u) == pytest.approx(0.0, abs=1e-12)

    def test_faults_in_different_windows_need_separate_rollbacks(self, rng):
        grid = _make_grid(rng)
        ref = grid.copy()
        ref.run(24)
        plans = [
            FaultPlan(iteration=3, index=(4, 4), bit=27),
            FaultPlan(iteration=20, index=(18, 15), bit=27),
        ]
        protector = OfflineABFT.for_grid(grid, epsilon=1e-5, period=8)
        run = protector.run(grid, 24, inject=FaultInjector(plans))
        assert run.total_rollbacks == 2
        assert l2_error(ref.u, grid.u) == pytest.approx(0.0, abs=1e-12)


class TestMultiFaultCampaign:
    def test_faults_per_run_draws_that_many_plans(self):
        rng = np.random.default_rng(0)
        u0 = (rng.random((16, 12)) * 100).astype(np.float32)

        def factory():
            return Grid2D(u0, five_point_diffusion(0.2), BoundaryCondition.clamp())

        config = CampaignConfig(
            iterations=10, repetitions=3, inject=True, faults_per_run=3, seed=5
        )
        result = run_campaign(
            factory, lambda g: OnlineABFT.for_grid(g, epsilon=1e-5), config
        )
        assert all(len(r.faults) == 3 for r in result.records)
        assert all(r.fault is r.faults[0] for r in result.records)

    def test_invalid_faults_per_run(self):
        with pytest.raises(ValueError):
            CampaignConfig(iterations=5, repetitions=1, faults_per_run=0)
