"""In-memory checkpointing and rollback recovery.

The offline ABFT variant (Section 4 of the paper) cannot correct errors
by itself: it couples the periodic checksum-based detector with the
standard checkpoint/rollback-recovery technique. This subpackage
provides the lightweight in-memory checkpoint store ("a lightweight
memory copy of the current state of the grid and of the checksums",
Section 5.4) and the recompute-from-checkpoint recovery driver.
"""

from repro.checkpoint.store import Checkpoint, InMemoryCheckpointStore
from repro.checkpoint.recovery import rollback_and_recompute

__all__ = ["Checkpoint", "InMemoryCheckpointStore", "rollback_and_recompute"]
