"""Rollback-and-recompute recovery.

When the offline detector flags a corrupted detection window, the domain
is restored from the last verified checkpoint and the window is
recomputed (Section 4.2 of the paper). Recomputation uses plain stencil
sweeps; transient faults (the paper's single bit-flips) do not reoccur,
so the recomputed window is clean.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.checkpoint.store import Checkpoint
from repro.stencil.grid import GridBase

__all__ = ["rollback_and_recompute"]

#: Called after every recomputed sweep: ``callback(grid)``.
StepCallback = Callable[[GridBase], None]


def rollback_and_recompute(
    grid: GridBase,
    checkpoint: Checkpoint,
    iterations: int,
    inject: Optional[Callable[[GridBase, int], None]] = None,
    on_step: Optional[StepCallback] = None,
    backend=None,
) -> int:
    """Restore ``grid`` from ``checkpoint`` and recompute ``iterations`` sweeps.

    Parameters
    ----------
    grid:
        The grid to recover (modified in place).
    checkpoint:
        A verified checkpoint whose iteration precedes the corrupted
        window.
    iterations:
        Number of sweeps between the checkpoint and the detection point.
    inject:
        Optional fault-injection hook, forwarded so that *persistent*
        fault models can re-strike during recomputation (the paper's
        one-shot bit-flips never re-fire).
    on_step:
        Optional callback invoked after every recomputed sweep — the
        offline protector uses it to re-record the boundary strips it
        needs for re-verification.
    backend:
        Optional compute backend (name or instance) for the recomputed
        sweeps. The offline protector forwards its own backend so the
        replayed window uses the same numerics as the original sweeps;
        ``None`` uses the grid's backend.

    Returns
    -------
    int
        The number of recomputed sweeps (equal to ``iterations``).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    grid.restore(checkpoint.snapshot)
    for _ in range(iterations):
        grid.step(backend=backend)
        if inject is not None:
            inject(grid, grid.iteration)
        if on_step is not None:
            on_step(grid)
    return iterations
