"""In-memory checkpoint storage.

A checkpoint captures everything needed to restart the stencil
computation from a verified point: the domain snapshot, the iteration
number and the checksum vector(s) that were verified when the checkpoint
was taken. Checkpoints live in memory (the paper performs "a lightweight
memory copy of the current state of the grid and of the checksums every
Δ iterations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.stencil.grid import GridSnapshot

__all__ = ["Checkpoint", "InMemoryCheckpointStore"]


@dataclass
class Checkpoint:
    """A verified restart point."""

    iteration: int
    snapshot: GridSnapshot
    checksums: Dict[int, np.ndarray] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        total = self.snapshot.nbytes()
        for cs in self.checksums.values():
            total += int(cs.nbytes)
        return total


class InMemoryCheckpointStore:
    """Bounded LIFO store of in-memory checkpoints.

    Parameters
    ----------
    max_checkpoints:
        Maximum number of checkpoints kept alive; older ones are dropped.
        The offline protector only ever needs the most recent verified
        checkpoint, so the default of 1 reproduces the paper's behaviour
        while larger values support multi-level rollback experiments.
    """

    def __init__(self, max_checkpoints: int = 1) -> None:
        if max_checkpoints < 1:
            raise ValueError("max_checkpoints must be >= 1")
        self.max_checkpoints = int(max_checkpoints)
        self._checkpoints: List[Checkpoint] = []
        self.saves = 0
        self.restores = 0

    def save(self, checkpoint: Checkpoint) -> None:
        """Store a checkpoint, evicting the oldest if over capacity."""
        self._checkpoints.append(checkpoint)
        self.saves += 1
        while len(self._checkpoints) > self.max_checkpoints:
            self._checkpoints.pop(0)

    def latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint, or ``None`` if empty."""
        if not self._checkpoints:
            return None
        return self._checkpoints[-1]

    def at_or_before(self, iteration: int) -> Optional[Checkpoint]:
        """The most recent checkpoint taken at or before ``iteration``."""
        best = None
        for ckpt in self._checkpoints:
            if ckpt.iteration <= iteration:
                best = ckpt
        return best

    def mark_restore(self) -> None:
        self.restores += 1

    def clear(self) -> None:
        self._checkpoints.clear()

    def __len__(self) -> int:
        return len(self._checkpoints)

    def nbytes(self) -> int:
        """Total memory footprint of all stored checkpoints."""
        return sum(c.nbytes() for c in self._checkpoints)
