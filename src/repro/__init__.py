"""repro — Algorithm-Based Fault Tolerance for Parallel Stencil Computations.

This package is a from-scratch Python reproduction of:

    Aurélien Cavelan and Florina M. Ciorba,
    "Algorithm-Based Fault Tolerance for Parallel Stencil Computations",
    IEEE International Conference on Cluster Computing (CLUSTER), 2019.
    arXiv:1909.00709.

The library is organised as a set of small, composable subsystems:

``repro.backends``
    Pluggable compute backends behind every sweep and checksum: the
    ``numpy`` reference and the optimised ``fused`` backend (the paper's
    fused sweep+checksum kernel), selected via ``backend=`` keywords,
    the ``REPRO_BACKEND`` environment variable or the ``--backend`` CLI
    flag.

``repro.stencil``
    Arbitrary 2D/3D stencil specifications, boundary conditions and
    vectorised sweep operators (the computational substrate the paper's
    method protects).

``repro.core``
    The paper's primary contribution: checksum computation (Eqs. 2-3),
    checksum interpolation (Theorem 1, Eqs. 4-5/8-9), silent-data-corruption
    detection (Theorem 2) and correction (Eq. 10), packaged as online and
    offline ABFT protectors, including per-layer application to 3D domains.

``repro.faults``
    IEEE-754 bit-flip fault injection and seeded fault campaigns used by
    the paper's evaluation (Section 5).

``repro.checkpoint``
    In-memory checkpoint / rollback-recovery used by the offline ABFT
    variant (Section 4).

``repro.parallel``
    Tile and layer decomposition, shared-memory executors and a simulated
    message-passing layer so the scheme's "intrinsically parallel, no extra
    synchronisation" property can be exercised.

``repro.apps``
    Stencil applications, most importantly a NumPy port of the Rodinia
    HotSpot3D mini-app used in the paper's experiments.

``repro.baselines``
    Unprotected execution, triple modular redundancy and a spatial
    interpolation SDC detector used as comparison points.

``repro.metrics`` / ``repro.experiments``
    The l2-norm accuracy metric (Eq. 11), timing harnesses, and one module
    per paper table/figure that regenerates the published results.

Quickstart
----------
>>> import numpy as np
>>> from repro import OnlineABFT, StencilSpec, BoundaryCondition
>>> from repro.stencil import Grid2D
>>> spec = StencilSpec.five_point(0.2, 0.2, 0.2, 0.2, 0.2)
>>> grid = Grid2D(np.random.rand(64, 64).astype(np.float32),
...               spec, BoundaryCondition.clamp())
>>> protector = OnlineABFT.for_grid(grid)
>>> report = protector.step(grid)
>>> report.errors_detected
0
"""

from repro.version import __version__
# NOTE: the stencil imports must come first — repro.stencil.sweep is what
# (fully) initialises repro.backends; importing repro.backends directly
# here would re-enter it half-initialised via backends.base -> stencil.
from repro.stencil.spec import StencilPoint, StencilSpec
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.grid import Grid2D, Grid3D
from repro.backends import (
    Backend,
    available_backends,
    get_backend,
    set_default_backend,
)
from repro.core.online import OnlineABFT
from repro.core.offline import OfflineABFT
from repro.core.protector import NoProtection, StepReport
from repro.core.checksums import row_checksum, column_checksum
from repro.core.detection import DetectionResult
from repro.faults.bitflip import flip_bit
from repro.faults.injector import FaultInjector, FaultPlan
from repro.metrics.accuracy import l2_error

__all__ = [
    "__version__",
    "Backend",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "StencilPoint",
    "StencilSpec",
    "BoundaryCondition",
    "BoundarySpec",
    "Grid2D",
    "Grid3D",
    "OnlineABFT",
    "OfflineABFT",
    "NoProtection",
    "StepReport",
    "row_checksum",
    "column_checksum",
    "DetectionResult",
    "flip_bit",
    "FaultInjector",
    "FaultPlan",
    "l2_error",
]
