"""High-throughput campaign engine: persistent workers, in-place resets.

:func:`repro.faults.campaign.run_campaign` is the reference serial loop:
every run allocates a fresh grid and a fresh protector and steps them
one at a time.  Monte Carlo campaigns repeat the *same* configuration up
to 1,000 times (Table 1 of the paper), so almost all of that per-run
setup — buffer allocation, protector construction, epsilon/constant
checksum precomputation — is redundant.  :class:`CampaignEngine` removes
it:

* **Batched dispatch.**  Runs are split into contiguous batches and
  dispatched through the executor machinery of
  :mod:`repro.parallel.executor` (``serial`` / ``threads`` / ``process``,
  selected exactly like the tile executors: explicit kind, else the
  process-wide default, else ``REPRO_EXECUTOR``, else serial).  Only the
  campaign payload travels out once per batch and only compact per-run
  record tuples travel back.

* **Persistent per-worker state, reset in place.**  Each worker builds
  the campaign state once (grid, protector, float64 reference scratch)
  and reuses it for every subsequent batch of the same campaign: the
  shared initial domain is copied back into the grid's persistent front
  buffer (:meth:`~repro.stencil.grid.GridBase.restore`), the protector's
  statistics are cleared (:meth:`~repro.core.protector.Protector.reset`)
  and the next run starts — no per-run grid or protector allocation.

* **Pre-drawn fault plans.**  The parent draws every run's fault plans
  up front with the exact ``seed + run_index`` generator sequence of the
  legacy loop, so the injected faults — and therefore every detection,
  correction and arithmetic-error record — are bitwise-identical to
  :func:`run_campaign` regardless of executor kind, worker count or
  batch size.

Two run strategies share that lifecycle:

``replay``
    The universal strategy: the persistent protector drives the
    persistent grid through ``Protector.run`` exactly as the legacy loop
    does, stepping through the backend-owned fused
    ``step_into_with_checksums`` path — so a compiled backend (numba)
    accelerates campaigns the same way it accelerates single runs.
    Bitwise-identical to the legacy loop by construction (same code
    path).  Used for the offline protector (checkpoint/rollback state),
    custom protectors, custom inject hooks, and non-domain fault
    targets (checksum/ghost/payload strikes must replay the exact
    machinery they attack; fail-stop crash plans additionally route to
    the distributed runner's buddy-checkpoint recovery path).

``stacked``
    The batched fast path: the whole batch of runs is laid out as one
    extra trailing axis of a single persistent padded buffer pair, and
    each campaign iteration drives the backend-owned
    :meth:`~repro.backends.base.Backend.batch_step_into_with_checksums`
    primitive — one vectorised NumPy pass on the interpreted backends,
    one generated ``bstep_cs`` kernel call (outer ``prange`` over runs)
    on the compiled numba backend — followed by one stacked Theorem-1
    interpolation and detection screen for all runs at once.  Every
    backend's batched step is per-slot bit-identical to its single-run
    step, and the per-run checksum *chains* are selected to match what
    replay would have fed the protector (fault-carrying runs recompute
    ``np.sum`` checksums after injection, exactly like the hook-driven
    replay path; clean runs trust the fused kernel checksums), so every
    run's numbers are identical to its serial execution.  The rare
    steps on which the vectorised detection screen flags a run are
    delegated, for that run only, to the ordinary
    :meth:`OnlineABFT.process` on per-run views — corrections reuse the
    library implementation verbatim.  Eligibility is checked per
    campaign (:func:`stacked_support_reason`, which names the fallback
    reason the records report); anything else replays.  Stacked versus
    replay is a pure throughput choice — records are bitwise-identical
    either way.

The engine powers every experiment harness
(:mod:`repro.experiments.campaign_runner`, figures 10/11, sensitivity)
and the ``repro campaign`` CLI subcommand;
``benchmarks/bench_campaign.py`` gates the record equivalence, the
zero-allocation property and the throughput gain in CI.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.online import OnlineABFT
from repro.core.protector import NoProtection, Protector
from repro.faults.bitflip import flip_bit_in_array
from repro.faults.campaign import (
    BatchStrategy,
    CampaignConfig,
    CampaignResult,
    GridFactory,
    ProtectorFactory,
    RunRecord,
    compute_reference,
    crash_run_counters,
    resolve_run_counters,
    run_with_crashes,
)
from repro.faults.injector import FaultPlan
from repro.faults.models import make_injector
from repro.parallel.executor import make_executor
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.grid import GridBase
from repro.stencil.shift import interior_view

__all__ = [
    "CampaignEngine",
    "STACKED_WIDTH_ENV_VAR",
    "draw_fault_plans",
    "resolve_stacked_width",
    "stacked_support_reason",
    "stacked_supported",
]

#: Environment variable arming chaos injection into the engine's own
#: worker pool (``worker-kill`` | ``worker-hang``): one pool worker is
#: sacrificed mid-campaign to exercise the detect/restart/re-dispatch
#: path.  Only ever honoured on the process executor.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Environment variable setting the per-dispatch worker timeout (seconds).
WORKER_TIMEOUT_ENV_VAR = "REPRO_WORKER_TIMEOUT"

#: Chaos modes the engine understands.
_CHAOS_MODES = ("worker-kill", "worker-hang")

#: Timeout armed automatically when a hang is being injected and the
#: caller set none — a hung worker must not stall the campaign forever.
_DEFAULT_CHAOS_TIMEOUT = 30.0

#: Per-worker campaign states kept alive between batches (the whole
#: point of the engine).  Bounded so a long-lived pool sweeping many
#: campaign configurations does not accumulate stacked buffer pairs.
_STATE_CACHE_MAX = 4

#: Environment variable overriding the stacked batch-width cap (lowest
#: precedence is the built-in default; ``CampaignConfig.stacked_width``
#: wins over both).
STACKED_WIDTH_ENV_VAR = "REPRO_STACKED_WIDTH"

#: Default cap on the stacked batch width.  Wider batches amortise the
#: per-call/per-kernel-launch overhead further but grow the persistent
#: buffer pair linearly; 32 runs of the paper's 64x64x8 tile keep the
#: pair ~11 MB.
_DEFAULT_STACKED_WIDTH = 32

#: Signature of a per-run hook factory (sensitivity-style experiments):
#: called in the parent, in run order, so stateful RNG draws match the
#: equivalent serial loop.
HookFactory = Callable[[int], Callable]


def draw_fault_plans(
    config: CampaignConfig, shape: Sequence[int], dtype
) -> List[List[FaultPlan]]:
    """Pre-draw every run's fault plans with the legacy ``seed + i`` scheme.

    Returns one (possibly empty) plan list per run, drawn from the
    campaign's resolved :class:`~repro.faults.models.FaultModel`.  The
    draws replicate :func:`repro.faults.campaign.run_campaign` exactly —
    one fresh ``default_rng(seed + run_index)`` per run, the model's
    plans from it — so engine campaigns inject bit-for-bit the same
    faults as the legacy loop (for the default single-bit-flip model
    this is byte-identical to the historical ``random_fault_plan``
    loop).
    """
    if not config.inject:
        return [[] for _ in range(config.repetitions)]
    fault_model = config.resolved_fault_model()
    plans: List[List[FaultPlan]] = []
    for run_index in range(config.repetitions):
        rng = np.random.default_rng(config.seed + run_index)
        plans.append(
            fault_model.draw(rng, shape, config.iterations, dtype=dtype)
        )
    return plans


def resolve_stacked_width(config: Optional[CampaignConfig] = None) -> int:
    """Resolve the stacked batch-width cap.

    Precedence: ``config.stacked_width`` (when set) over the
    ``REPRO_STACKED_WIDTH`` environment variable over the built-in
    default of 32.  The width is a pure throughput knob — records are
    bitwise-independent of it.
    """
    if config is not None and config.stacked_width is not None:
        return int(config.stacked_width)
    env = os.environ.get(STACKED_WIDTH_ENV_VAR)
    if env:
        try:
            width = int(env)
        except ValueError:
            raise ValueError(
                f"{STACKED_WIDTH_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if width < 1:
            raise ValueError(
                f"{STACKED_WIDTH_ENV_VAR} must be >= 1, got {width}"
            )
        return width
    return _DEFAULT_STACKED_WIDTH


def _resolved_backend(grid: GridBase, protector: Protector):
    """The backend the protector's sweeps will actually run through."""
    backend = getattr(protector, "backend", None)
    return backend if backend is not None else grid.backend


def stacked_support_reason(
    grid: GridBase, protector: Protector
) -> Optional[str]:
    """Why a campaign cannot take the stacked fast path (``None`` = it can).

    The stacked strategy drives the backend-owned batched step
    primitive, which every backend guarantees per-slot bit-identical to
    its single-run step — so backend choice no longer matters.  What
    still forces replay is *protocol* the batched loop does not
    re-implement: grid subclasses with their own stepping, protectors
    other than the default online one or the unprotected baseline, and
    the online protector's eager row-checksum mode (a second paired
    checksum chain per step).  The returned string is the fallback
    reason campaigns report per batch.
    """
    if not isinstance(grid, GridBase) or grid.ndim not in (2, 3):
        return "grid is not a standard 2D/3D double-buffered grid"
    # A subclass that reimplements stepping owns semantics the stacked
    # sweep would silently bypass.
    if (
        type(grid).step is not GridBase.step
        or type(grid).step_with_checksums is not GridBase.step_with_checksums
    ):
        return "grid subclass overrides stepping"
    if isinstance(protector, NoProtection):
        return None
    if isinstance(protector, OnlineABFT):
        if protector.eager_row_checksum:
            return "online protector pairs row checksums eagerly"
        return None
    name = getattr(protector, "name", type(protector).__name__)
    return f"protector {name!r} has no stacked implementation"


def stacked_supported(grid: GridBase, protector: Protector) -> bool:
    """Whether a campaign qualifies for the stacked batched fast path."""
    return stacked_support_reason(grid, protector) is None


# ---------------------------------------------------------------------------
# Worker-side campaign state
# ---------------------------------------------------------------------------
@dataclass
class _CampaignMeta:
    """Engine-side cache entry for one (grid, protector) factory pair.

    Holding the factories keeps them (and therefore the identity/value
    keys referring to them) alive for the cache's lifetime.
    """

    key_prefix: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    protector_name: str
    grid_factory: GridFactory
    protector_factory: ProtectorFactory
    #: Why this factory pair cannot stack (``None`` = it can) — used to
    #: fail fast, in the parent, when ``strategy="stacked"`` is forced.
    stacked_reason: Optional[str] = None


@dataclass
class _CampaignPayload:
    """Everything a worker needs to (re)build one campaign's state."""

    grid_factory: GridFactory
    protector_factory: ProtectorFactory
    config: CampaignConfig
    reference: np.ndarray


@dataclass
class _BatchTask:
    """One contiguous batch of runs of one campaign.

    The payload rides along with every task (any pool worker may receive
    any batch); workers cache the built state under ``key`` so only the
    first batch a worker sees pays the construction cost.
    """

    key: str
    payload: _CampaignPayload
    start: int
    plans: Tuple[Tuple[FaultPlan, ...], ...]
    hooks: Optional[Tuple] = None
    #: The campaign's full batch width.  A worker may receive the
    #: (smaller) final batch first, so the stacked state is sized from
    #: this hint rather than from the batch that happens to build it.
    width_hint: int = 1
    #: Caller requested the replay strategy even where stacking is
    #: eligible (per-run timing fidelity; see ``CampaignEngine.run``).
    force_replay: bool = False
    #: Chaos marker (``worker-kill`` | ``worker-hang``): the worker that
    #: picks this batch up sabotages itself before running it, so the
    #: engine's failure detection and re-dispatch can be exercised end
    #: to end.  Only ever set by the engine on the process executor, and
    #: stripped when the lost batch is re-dispatched.
    chaos: Optional[str] = None


class _StackedBatch:
    """Persistent stacked buffer pair executing whole batches of runs.

    The batch of runs is one trailing axis of a single padded
    :class:`DoubleBufferedGrid` pair.  Per campaign iteration: one
    backend-owned batched step
    (:meth:`~repro.backends.base.Backend.batch_step_into_with_checksums`
    — fused ghost refresh, sweep and checksum fold for every run in one
    vectorised pass or one compiled ``prange``-over-runs kernel), one
    Theorem-1 interpolation and one detection screen — each acting on
    every run of the batch at once.  All buffers are allocated once and
    reset in place between batches.
    """

    def __init__(
        self,
        grid: GridBase,
        protector: Protector,
        width: int,
        initial: np.ndarray,
    ) -> None:
        self.width = int(width)
        self.base_shape = grid.shape
        self.base_radius = grid.radius
        self.dtype = grid.dtype
        self.spec = grid.spec
        self.backend = _resolved_backend(grid, protector)
        # Domain-axis boundary: the backend's batched step treats the
        # trailing run axis itself (ghost width 0, never refreshed).
        self.base_boundary = BoundarySpec.from_any(
            grid.boundary, len(self.base_shape)
        )
        shape = self.base_shape + (self.width,)
        radius = tuple(self.base_radius) + (0,)
        boundary = BoundarySpec(
            tuple(self.base_boundary) + (BoundaryCondition.clamp(),)
        )
        self.shape = shape
        self.radius = radius
        self.boundary = boundary
        # The campaign's shared initial domain — passed explicitly (the
        # worker grid may hold the final state of an earlier replay run).
        self.initial = np.ascontiguousarray(initial)[..., None]
        self.pair = DoubleBufferedGrid(
            np.broadcast_to(self.initial, shape), radius, boundary,
            dtype=self.dtype,
        )
        self.constant = grid.constant
        # Batch-extended (offset, weight) pairs for the stacked Theorem-1
        # interpolation: the batch axis never shifts.
        self.spec_ext = tuple((tuple(o) + (0,), w) for o, w in self.spec)

        self.protector: Optional[OnlineABFT] = None
        if isinstance(protector, OnlineABFT):
            self.protector = protector
            self.verify_axis = protector.verify_axis
            self.cs_dtype = protector.checksum_dtype
            self.epsilon = protector.epsilon
            cs = protector._constant_sums[self.verify_axis]
            self.constant_sum = None if cs is None else cs[..., None]

    def run_batch(
        self,
        plans: Sequence[Sequence[FaultPlan]],
        config: CampaignConfig,
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Execute one batch of runs; returns (counters, finals, elapsed).

        ``counters`` has shape ``(batch, 3)`` — detections, corrections,
        uncorrected — ``finals`` is the stacked final interiors (a view
        into the pair, valid until the next batch), and ``elapsed`` is
        the wall-clock time of the iteration loop only (resets and error
        norms excluded, matching what the legacy loop times).
        """
        width = len(plans)
        if width > self.width:
            raise ValueError(
                f"batch of {width} runs exceeds stacked width {self.width}"
            )
        iterations = config.iterations
        # In-place reset: every slot restarts from the shared initial
        # domain; no allocation.
        interior_view(self.pair.front, self.radius)[..., :width] = self.initial

        by_iteration: Dict[int, List[Tuple[int, FaultPlan]]] = {}
        for slot, run_plans in enumerate(plans):
            for plan in run_plans:
                by_iteration.setdefault(plan.iteration, []).append((slot, plan))

        counters = np.zeros((width, 3), dtype=np.int64)
        protector = self.protector
        verify = self.verify_axis if protector is not None else 0
        # Which slots carry fault plans decides each slot's checksum
        # *chain*: the replay strategy computes ``np.sum`` checksums on
        # every step of a hook-driven (fault-carrying) run but trusts
        # the fused kernel checksums on clean runs, so the stacked loop
        # reproduces both chains — that keeps records bitwise-identical
        # to replay on every backend, compiled ones included.
        fault_slots = np.array(
            [bool(run_plans) for run_plans in plans], dtype=bool
        )
        any_fault = bool(fault_slots.any())
        all_fault = bool(fault_slots.all())
        backend = self.backend

        start = time.perf_counter()
        interior = interior_view(self.pair.front, self.radius)[..., :width]
        if protector is not None:
            # Step t=0 data assumed correct (Theorem 2), as in
            # OnlineABFT.step's first-iteration checksum seed.
            prev_cs = np.sum(interior, axis=verify, dtype=self.cs_dtype)
        for t in range(1, iterations + 1):
            src = self.pair.front[..., :width]
            dst = self.pair.back[..., :width]
            if protector is None or all_fault:
                # No clean slot wants kernel checksums: take the plain
                # batched step and reduce after injection (below).
                backend.batch_step_into(
                    src, dst, self.spec, self.base_radius, self.base_shape,
                    self.base_boundary, constant=self.constant,
                )
                cs = None
            else:
                _, cs_map = backend.batch_step_into_with_checksums(
                    src, dst, self.spec, self.base_radius, self.base_shape,
                    self.base_boundary, (verify,), constant=self.constant,
                    checksum_dtype=self.cs_dtype,
                )
                cs = cs_map[verify]
            self.pair.swap()
            interior = interior_view(self.pair.front, self.radius)[..., :width]
            fired = by_iteration.get(t)
            if fired is not None:
                for slot, plan in fired:
                    flip_bit_in_array(interior[..., slot], plan.index, plan.bit)
            if protector is None:
                continue
            if any_fault:
                # Post-injection ``np.sum`` chain for fault-carrying
                # slots, exactly like replay's hook-driven path.
                post = np.sum(interior, axis=verify, dtype=self.cs_dtype)
                if cs is None:
                    cs = post
                else:
                    cs[..., fault_slots] = post[..., fault_slots]
            predicted = _interpolate_stacked(
                prev_cs,
                self.pair.back[..., :width],
                self.spec_ext,
                self.radius,
                self.base_shape + (width,),
                verify,
                self.constant_sum,
            )
            flagged = _detection_screen(cs, predicted, self.epsilon)
            if flagged is not None:
                for slot in flagged:
                    # Delegate the rare detection step to the library
                    # protector on per-run views: the checksum recompute,
                    # interpolation, localisation and correction are the
                    # exact legacy code (bitwise-equal inputs, so the
                    # same decision the screen made), and corrections
                    # write back into the stacked pair through the view.
                    protector.reset()
                    # Route through the protector's store helper so its
                    # duplicated-checksum self-check state stays
                    # consistent with the seeded checksum.
                    protector._store_prev_cs(
                        verify, np.ascontiguousarray(prev_cs[..., slot])
                    )
                    report = protector.process(
                        interior[..., slot], self.pair.back[..., slot], t
                    )
                    counters[slot, 0] += report.errors_detected
                    counters[slot, 1] += report.errors_corrected
                    counters[slot, 2] += report.errors_uncorrected
                    cs[..., slot] = protector._prev_cs[verify]
            prev_cs = cs
        elapsed = time.perf_counter() - start
        if protector is not None:
            protector.reset()
        return counters, interior, elapsed


def _interpolate_stacked(
    prev_cs: np.ndarray,
    padded_prev: np.ndarray,
    spec_ext,
    radius,
    shape,
    verify: int,
    constant_sum: Optional[np.ndarray],
) -> np.ndarray:
    """Theorem-1 interpolation of the whole batch in one call.

    ``interpolate_checksum_padded`` is dimension-generic and only
    iterates ``(offset, weight)`` pairs from its ``spec`` argument, so
    handing it the batch-extended offsets (batch axis shift 0, ghost
    radius 0) interpolates every run's checksum at once; the boundary
    strips it reduces are per-run independent, keeping the result
    bitwise equal to the per-run calls of the serial protector.
    """
    from repro.core.interpolation import interpolate_checksum_padded

    return interpolate_checksum_padded(
        prev_cs, padded_prev, spec_ext, radius, shape, verify,
        constant_sum=constant_sum,
    )


def _detection_screen(
    computed: np.ndarray, predicted: np.ndarray, epsilon: float
) -> Optional[np.ndarray]:
    """Batch slots whose checksums mismatch, or ``None`` when all clean.

    Replicates :func:`repro.core.detection.relative_discrepancy`
    elementwise over the stacked checksums, so a slot is flagged exactly
    when the serial protector's ``detect_errors`` would have flagged the
    run — the flagged slots then re-run the full detection on their own
    views.
    """
    from repro.core.detection import relative_discrepancy

    rel = relative_discrepancy(computed, predicted)
    flagged = rel > epsilon
    if not flagged.any():
        return None
    return np.unique(np.argwhere(flagged)[:, -1])


class _WorkerCampaign:
    """One worker's persistent state for one campaign configuration."""

    def __init__(self, payload: _CampaignPayload, batch_width: int) -> None:
        self.config = payload.config
        self.batch_width = max(1, int(batch_width))
        self.grid = payload.grid_factory()
        self.protector = payload.protector_factory(self.grid)
        self.snapshot0 = self.grid.snapshot()
        # Float64 reference + scratch for the allocation-free l2 error
        # (bitwise-identical to repro.metrics.accuracy.l2_error).
        self.reference64 = np.asarray(payload.reference, dtype=np.float64)
        self._diff64 = np.empty(self.reference64.shape, dtype=np.float64)
        self._final32 = np.empty(self.grid.shape, dtype=self.grid.dtype)
        self.stacked: Optional[_StackedBatch] = None
        self.stacked_reason = stacked_support_reason(self.grid, self.protector)
        self.use_stacked = self.stacked_reason is None
        # One short warm-up pays the one-off costs (lazy imports, scratch
        # growth, JIT cache loads) outside the timed runs, mirroring the
        # legacy loop's untimed warm-up run.
        self.protector.reset()
        self.protector.run(self.grid, min(3, self.config.iterations))
        self.grid.restore(self.snapshot0)
        self.protector.reset()
        if self.use_stacked:
            # Warm the backend's batched layout too (a no-op on the
            # interpreted backends; the numba backend compiles — or
            # loads from its disk cache — the bstep/bstep_cs kernels
            # for both the contiguous full batch and the strided final
            # partial batch), so no timed stacked batch pays JIT cost.
            _resolved_backend(self.grid, self.protector).warmup(
                self.grid.spec,
                boundary=self.grid.boundary,
                dtype=self.grid.dtype,
                checksum_dtype=getattr(
                    self.protector, "checksum_dtype", np.float64
                ),
                radius=self.grid.radius,
                batch_width=3,
            )

    def _ensure_stacked(self, width: int) -> _StackedBatch:
        # Built lazily (hook-driven campaigns replay and never need the
        # stacked pair) and regrown if a wider batch ever arrives.  The
        # snapshot — never the grid, which an earlier replay batch may
        # have left at its final state — seeds every stacked slot.
        if self.stacked is None or self.stacked.width < width:
            self.stacked = _StackedBatch(
                self.grid,
                self.protector,
                max(width, self.batch_width),
                self.snapshot0.u,
            )
        return self.stacked

    def _l2_error(self, u: np.ndarray) -> float:
        """``l2_error(reference, u)`` without the full-domain temporaries."""
        np.subtract(self.reference64, u, out=self._diff64)
        np.multiply(self._diff64, self._diff64, out=self._diff64)
        return float(np.sqrt(np.sum(self._diff64)))

    def execute(self, task: _BatchTask) -> Tuple[str, Optional[str], List[Tuple]]:
        """Run one batch; returns ``(strategy, fallback_reason, rows)``.

        ``strategy`` is the strategy actually used (``"stacked"`` |
        ``"replay"``); ``fallback_reason`` names why replay was chosen
        when it was (``None`` under stacked).
        """
        # The stacked fast path only knows how to flip domain values;
        # checksum/ghost/payload-targeted plans replay through the full
        # protector machinery they attack.
        only_domain = all(
            p.target == "domain" for run_plans in task.plans for p in run_plans
        )
        if task.force_replay:
            reason: Optional[str] = "replay strategy requested"
        elif task.hooks is not None:
            reason = "opaque inject hook replaces the plan injector"
        elif not only_domain:
            reason = "non-domain fault target"
        else:
            reason = self.stacked_reason
        if reason is None:
            return "stacked", None, self._execute_stacked(task)
        return "replay", reason, self._execute_replay(task)

    def _execute_stacked(self, task: _BatchTask) -> List[Tuple]:
        stacked = self._ensure_stacked(len(task.plans))
        counters, finals, elapsed = stacked.run_batch(task.plans, self.config)
        width = len(task.plans)
        per_run = elapsed / max(1, width)
        results: List[Tuple] = []
        for slot in range(width):
            # Contiguous copy first: the error norm then reduces exactly
            # the arrays the serial loop reduces.
            self._final32[...] = finals[..., slot]
            error = self._l2_error(self._final32)
            det, cor, unc = (int(v) for v in counters[slot])
            results.append(
                (task.start + slot, per_run, error, det, cor, unc, 0, 0, 0, 0)
            )
        return results

    def _execute_replay(self, task: _BatchTask) -> List[Tuple]:
        results: List[Tuple] = []
        for slot, run_plans in enumerate(task.plans):
            if any(p.target == "crash" for p in run_plans):
                results.append(self._execute_crash(task.start + slot, run_plans))
                continue
            self.grid.restore(self.snapshot0)
            self.protector.reset()
            if task.hooks is not None:
                hook = task.hooks[slot]
            else:
                hook = make_injector(list(run_plans), self.protector)
            start = time.perf_counter()
            report = self.protector.run(
                self.grid, self.config.iterations, inject=hook
            )
            elapsed = time.perf_counter() - start
            det, cor, unc, rb, rec = resolve_run_counters(self.protector, report)
            error = self._l2_error(self.grid.u)
            results.append(
                (task.start + slot, elapsed, error, det, cor, unc, rb, rec, 0, 0)
            )
        return results

    def _execute_crash(self, run_index: int, run_plans) -> Tuple:
        """One fail-stop run on the distributed recovery path.

        The persistent grid is restored to the shared initial state and
        handed to :func:`run_with_crashes` exactly as the legacy loop
        hands it a fresh factory grid — the runner scatters a copy, so
        the worker's persistent buffers survive untouched for the next
        slot.  Counters and recovery accounting come from the same
        :func:`crash_run_counters` helper, keeping engine records
        bitwise-identical to the serial loop.
        """
        self.grid.restore(self.snapshot0)
        self.protector.reset()
        elapsed, runner = run_with_crashes(
            self.grid,
            self.protector,
            list(run_plans),
            self.config.iterations,
            self.config.resolved_fault_model(),
        )
        det, cor, unc, rb, rec, rebuilt, ck_bytes = crash_run_counters(runner)
        self._final32[...] = runner.gather()
        error = self._l2_error(self._final32)
        return (
            run_index, elapsed, error, int(det), int(cor), int(unc),
            int(rb), int(rec), int(rebuilt), int(ck_bytes),
        )


_WORKER_LOCAL = threading.local()


def _trigger_chaos(mode: str) -> None:
    """Sabotage this worker process (chaos testing of the dispatch loop).

    Only ever reached inside a process-pool worker — the engine refuses
    to set chaos markers on the serial/thread executors, where an
    ``os._exit`` would take the parent (or the whole test process) down
    with it.
    """
    if mode == "worker-kill":
        os._exit(43)
    if mode == "worker-hang":
        time.sleep(3600)
        return
    raise ValueError(f"unknown chaos mode {mode!r}; expected {_CHAOS_MODES}")


def _execute_batch(task: _BatchTask) -> Tuple[str, Optional[str], List[Tuple]]:
    """Worker entry point: resolve (or build) the cached state, run one batch.

    Module-level so process pools can import it by reference; the state
    cache is thread-local so the thread executor's workers never share
    mutable campaign state.
    """
    if task.chaos is not None:
        _trigger_chaos(task.chaos)
    cache: Dict[str, _WorkerCampaign] = getattr(_WORKER_LOCAL, "cache", None)
    if cache is None:
        cache = _WORKER_LOCAL.cache = {}
    state = cache.get(task.key)
    if state is None:
        if len(cache) >= _STATE_CACHE_MAX:
            cache.clear()
        state = cache[task.key] = _WorkerCampaign(task.payload, task.width_hint)
    return state.execute(task)


def _execute_batch_group(
    tasks: Sequence[_BatchTask],
) -> List[Tuple[str, Optional[str], List[Tuple]]]:
    """Run a contiguous group of batches in one pool task.

    The process executor dispatches one group per worker: all batches of
    a group travel in a single pickle graph, where the shared campaign
    payload (reference array, factories) is memoised and serialised
    once — instead of once per batch — keeping the pipe traffic at
    "payload once per worker plus compact record tuples".
    """
    return [_execute_batch(task) for task in tasks]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class CampaignEngine:
    """Throughput-oriented campaign harness over a persistent worker pool.

    Parameters
    ----------
    executor:
        Executor kind (``"serial"``, ``"threads"``, ``"process"``) or
        ``None`` to follow the process-wide default chain (what
        ``--executor`` / ``REPRO_EXECUTOR`` select), exactly like
        :func:`repro.parallel.executor.make_executor`.
    workers:
        Worker count for the pool executors (``None`` →
        :func:`resolve_workers`' default chain).
    batch_size:
        Runs per dispatched batch (``None`` → automatic: bounded by 32
        and by an even split across the workers).  Batch size affects
        scheduling and the stacked width only — records are
        bitwise-independent of it.
    worker_timeout:
        Seconds to wait for each dispatched wave of batches on the
        process executor before declaring the stragglers hung,
        restarting the pool and re-dispatching them (``None`` → wait
        forever, unless a hang is being chaos-injected, in which case a
        default timeout is armed; also settable via
        ``REPRO_WORKER_TIMEOUT``).  Timeouts never change records: a
        re-dispatched batch replays the same pre-drawn plans.
    max_dispatch_attempts:
        Upper bound on dispatch waves for one campaign (first attempt
        included) before the engine gives up with a ``RuntimeError`` —
        the guard against a factory that crashes every worker it
        touches.
    chaos:
        Chaos-testing mode (``"worker-kill"`` | ``"worker-hang"``;
        also settable via ``REPRO_CHAOS``): one batch per campaign is
        marked so the pool worker that picks it up kills or hangs
        itself, exercising the detect/restart/re-dispatch path.
        Honoured on the process executor only — records must stay
        bitwise-identical to an undisturbed run, which
        :attr:`worker_restarts` (incremented per pool restart) makes
        observable.

    Notes
    -----
    Results are identical to :func:`run_campaign` for every field except
    ``elapsed_seconds`` (a measurement, not a result; under the stacked
    strategy each run of a batch reports the batch mean).  The engine is
    reusable and cheap to keep around: worker-side campaign state is
    cached between :meth:`run` calls with the same factories, which is
    what makes chunked benchmark loops and multi-scenario experiment
    sweeps fast.  Use as a context manager (or call :meth:`shutdown`) to
    release pool workers deterministically.
    """

    def __init__(
        self,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        worker_timeout: Optional[float] = None,
        max_dispatch_attempts: int = 3,
        chaos: Optional[str] = None,
    ) -> None:
        self._kind = executor
        self._workers = workers
        self.batch_size = None if batch_size is None else max(1, int(batch_size))
        if worker_timeout is None:
            env = os.environ.get(WORKER_TIMEOUT_ENV_VAR)
            if env:
                worker_timeout = float(env)
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError("worker_timeout must be > 0 seconds")
        self.worker_timeout = worker_timeout
        self.max_dispatch_attempts = max(1, int(max_dispatch_attempts))
        if chaos is None:
            chaos = os.environ.get(CHAOS_ENV_VAR) or None
        if chaos is not None and str(chaos).lower() in ("off", "none", "0"):
            # Explicit disable: lets a caller pin an undisturbed engine
            # even when REPRO_CHAOS is set in the environment (the chaos
            # smoke benchmark compares exactly such a pair).
            chaos = None
        if chaos is not None and chaos not in _CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {chaos!r}; expected one of {_CHAOS_MODES}"
            )
        self.chaos = chaos
        #: Pool restarts performed after a worker death/hang (cumulative
        #: across :meth:`run` calls) — the observable proof that a chaos
        #: run actually lost and re-dispatched a batch.
        self.worker_restarts = 0
        self._executor = None
        # Campaign metadata keyed by the factory pair *by value* (bound
        # methods and the experiment factory dataclasses hash/compare by
        # content, so repeated ``engine.run(app.build_grid, factory)``
        # calls — the chunked-benchmark and figure-sweep pattern — hit
        # the same entry and reuse the worker-side state).  Unhashable
        # factories fall back to identity keys.
        self._campaigns: Dict[object, "_CampaignMeta"] = {}
        self._key_serial = 0
        self._token = f"{id(self):x}-{time.monotonic_ns():x}"

    # -- executor lifecycle -------------------------------------------------
    @property
    def executor(self):
        """The lazily built executor running this engine's batches."""
        if self._executor is None:
            self._executor = make_executor(self._kind, self._workers)
        return self._executor

    def shutdown(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @classmethod
    @contextmanager
    def shared(
        cls, engine: Optional["CampaignEngine"] = None, **kwargs
    ) -> Iterator["CampaignEngine"]:
        """Yield ``engine`` as-is, or a private one shut down on exit.

        The experiment harnesses all take an optional engine so a caller
        can keep one worker pool alive across figures; this is the one
        place the create-if-absent/shutdown-if-owned lifecycle lives.
        """
        if engine is not None:
            yield engine
            return
        own = cls(**kwargs)
        try:
            yield own
        finally:
            own.shutdown()

    # -- dispatch ------------------------------------------------------------
    def _campaign_meta(
        self, grid_factory, protector_factory
    ) -> "_CampaignMeta":
        """Per-campaign metadata, resolved once per factory pair.

        Besides the worker-cache key prefix, the entry caches the sample
        grid's shape/dtype and the protector name, so repeated
        :meth:`run` calls (chunked benchmarks, figure sweeps) skip the
        sample-grid construction entirely.  The key deliberately
        excludes ``seed`` and ``repetitions``, which do not enter the
        persistent worker state.
        """
        try:
            ident: object = (grid_factory, protector_factory)
            meta = self._campaigns.get(ident)
        except TypeError:  # unhashable factory
            ident = (id(grid_factory), id(protector_factory))
            meta = self._campaigns.get(ident)
        if meta is None:
            if len(self._campaigns) >= 64:
                self._campaigns.clear()
            self._key_serial += 1
            sample = grid_factory()
            sample_protector = protector_factory(sample)
            meta = _CampaignMeta(
                key_prefix=f"engine-{self._token}-{self._key_serial}",
                shape=sample.shape,
                dtype=sample.dtype,
                protector_name=getattr(sample_protector, "name", "protector"),
                grid_factory=grid_factory,
                protector_factory=protector_factory,
                stacked_reason=stacked_support_reason(
                    sample, sample_protector
                ),
            )
            self._campaigns[ident] = meta
        return meta

    @staticmethod
    def _campaign_key(
        meta: "_CampaignMeta", config: CampaignConfig, reference: np.ndarray
    ) -> str:
        """Worker-cache key: factory pair + iterations + reference digest.

        The digest guards against a caller handing a different baseline
        for the same factories — a stale error scratch would silently
        skew every arithmetic-error record.
        """
        digest = hashlib.sha1(
            np.ascontiguousarray(reference).tobytes()
        ).hexdigest()[:12]
        return f"{meta.key_prefix}-i{config.iterations}-r{digest}"

    def _auto_batch(self, repetitions: int, config: CampaignConfig) -> int:
        if self.batch_size is not None:
            return min(self.batch_size, repetitions)
        workers = getattr(self.executor, "workers", 1) or 1
        spread = -(-repetitions // workers)  # ceil
        return max(1, min(resolve_stacked_width(config), spread))

    def run(
        self,
        grid_factory: GridFactory,
        protector_factory: ProtectorFactory,
        config: CampaignConfig,
        reference: Optional[np.ndarray] = None,
        hook_factory: Optional[HookFactory] = None,
        strategy: Optional[str] = None,
    ) -> CampaignResult:
        """Execute a campaign; same contract as :func:`run_campaign`.

        Parameters
        ----------
        grid_factory, protector_factory, config, reference:
            As for :func:`repro.faults.campaign.run_campaign`.  With the
            process executor both factories must be picklable (the
            experiment factories are; ad-hoc closures are not — use the
            serial or thread executor for those).
        hook_factory:
            Optional per-run inject-hook factory, called in the parent
            in run order (so factories drawing from a shared RNG see the
            same sequence as an explicit serial loop).  Hooks force the
            replay strategy and *replace* the fault-plan injector, so
            they are only valid on campaigns with ``inject=False`` — a
            record must never carry fault plans that did not fire.
            Hooks must be picklable under the process executor.
        strategy:
            ``None``/``"auto"`` picks the fastest eligible strategy per
            campaign; ``"replay"`` forces the per-run replay even where
            stacking is eligible; ``"stacked"`` demands the stacked fast
            path and raises ``ValueError`` (naming the fallback reason)
            when the campaign cannot take it.  Use ``"replay"`` when the
            *per-run time distribution* is the experiment's measurand
            (Figure 8): the stacked strategy executes a whole batch
            together and can only report the batch-mean elapsed per run.
            The strategy each batch actually used is reported in
            :attr:`CampaignResult.batch_strategies`.
        """
        if hook_factory is not None and config.inject:
            raise ValueError(
                "hook_factory replaces the fault-plan injector; use "
                "inject=False (records would otherwise carry fault plans "
                "that never fired)"
            )
        if strategy not in (None, "auto", "stacked", "replay"):
            raise ValueError(
                f"unknown strategy {strategy!r}; expected 'auto', "
                f"'stacked' or 'replay'"
            )
        force_replay = strategy == "replay"
        if reference is None:
            reference = compute_reference(grid_factory, config.iterations)
        meta = self._campaign_meta(grid_factory, protector_factory)
        plans = draw_fault_plans(config, meta.shape, meta.dtype)
        if strategy == "stacked":
            # Fail fast in the parent: every blocker a worker would hit
            # is decidable here from the meta sample and the pre-drawn
            # plans, so a forced-stacked campaign never silently replays.
            if hook_factory is not None:
                raise ValueError(
                    "strategy 'stacked' is unavailable: opaque inject "
                    "hooks replace the plan injector and force replay"
                )
            if meta.stacked_reason is not None:
                raise ValueError(
                    f"strategy 'stacked' is unavailable: "
                    f"{meta.stacked_reason}"
                )
            bad_targets = sorted(
                {
                    p.target
                    for run_plans in plans
                    for p in run_plans
                    if p.target != "domain"
                }
            )
            if bad_targets:
                raise ValueError(
                    f"strategy 'stacked' is unavailable: non-domain "
                    f"fault target(s) {bad_targets} replay the "
                    f"protector machinery they attack"
                )
        hooks = None
        if hook_factory is not None:
            hooks = [hook_factory(i) for i in range(config.repetitions)]

        payload = _CampaignPayload(
            grid_factory=grid_factory,
            protector_factory=protector_factory,
            config=config,
            reference=np.asarray(reference),
        )
        key = self._campaign_key(meta, config, payload.reference)
        batch = self._auto_batch(config.repetitions, config)
        tasks: List[_BatchTask] = []
        for start in range(0, config.repetitions, batch):
            stop = min(start + batch, config.repetitions)
            tasks.append(
                _BatchTask(
                    key=key,
                    payload=payload,
                    start=start,
                    plans=tuple(tuple(p) for p in plans[start:stop]),
                    hooks=None if hooks is None else tuple(hooks[start:stop]),
                    width_hint=batch,
                    force_replay=force_replay,
                )
            )

        executor = self.executor
        if executor.kind == "process":
            self._check_picklable(tasks[0])
            rows_by_task = self._dispatch_process(executor, tasks)
            batches = [rows_by_task[i] for i in range(len(tasks))]
        else:
            batches = executor.map(_execute_batch, tasks)

        result = CampaignResult(
            config=config, protector_name=meta.protector_name
        )
        for task, (used, reason, rows) in zip(tasks, batches):
            result.batch_strategies.append(
                BatchStrategy(
                    start=task.start,
                    width=len(task.plans),
                    strategy=used,
                    reason=reason,
                )
            )
            for row in rows:
                (
                    run_index, elapsed, error, det, cor, unc, rb, rec,
                    rebuilt, ck_bytes,
                ) = row
                run_plans = list(plans[run_index])
                result.records.append(
                    RunRecord(
                        run_index=run_index,
                        elapsed_seconds=float(elapsed),
                        arithmetic_error=float(error),
                        fault=run_plans[0] if run_plans else None,
                        errors_detected=int(det),
                        errors_corrected=int(cor),
                        errors_uncorrected=int(unc),
                        rollbacks=int(rb),
                        recomputed_iterations=int(rec),
                        faults=run_plans,
                        ranks_rebuilt=int(rebuilt),
                        checkpoint_bytes=int(ck_bytes),
                    )
                )
        return result

    def _dispatch_process(
        self, executor, tasks: Sequence[_BatchTask]
    ) -> Dict[int, Tuple[str, Optional[str], List[Tuple]]]:
        """Supervised dispatch to the process pool, resilient to worker loss.

        Each wave submits the still-pending batches as one contiguous
        task group per worker (the shared campaign payload pickles once
        per group) and supervises the futures directly: results of
        groups that completed are banked even when a sibling group's
        worker died (a dead worker breaks the whole
        ``ProcessPoolExecutor``, failing every outstanding future) or
        hung past ``worker_timeout``.  The pool is then restarted and
        only the lost batches are re-dispatched — with any chaos marker
        stripped, so an injected failure strikes exactly once.  Records
        are bitwise-independent of all of this: batches carry their
        pre-drawn plans, and a re-run of a batch is deterministic.
        """
        pending: Dict[int, _BatchTask] = dict(enumerate(tasks))
        if self.chaos is not None and pending:
            victim = len(tasks) // 2
            pending[victim] = replace(pending[victim], chaos=self.chaos)
        results: Dict[int, Tuple[str, Optional[str], List[Tuple]]] = {}
        attempts = 0
        while pending:
            attempts += 1
            if attempts > self.max_dispatch_attempts:
                raise RuntimeError(
                    f"{len(pending)} campaign batches still undone after "
                    f"{self.max_dispatch_attempts} dispatch attempts "
                    f"({self.worker_restarts} pool restarts so far): the "
                    f"worker pool keeps dying or hanging — check that the "
                    f"campaign factories are sound before raising "
                    f"max_dispatch_attempts"
                )
            indices = sorted(pending)
            workers = max(1, getattr(executor, "workers", 1) or 1)
            n_groups = min(workers, len(indices))
            base, extra = divmod(len(indices), n_groups)
            groups: List[List[int]] = []
            start_idx = 0
            for g in range(n_groups):
                size = base + (1 if g < extra else 0)
                groups.append(indices[start_idx:start_idx + size])
                start_idx += size
            timeout = self.worker_timeout
            if timeout is None and any(
                t.chaos == "worker-hang" for t in pending.values()
            ):
                timeout = _DEFAULT_CHAOS_TIMEOUT
            futures = {
                executor.submit(
                    _execute_batch_group, [pending[i] for i in group]
                ): group
                for group in groups
            }
            done, not_done = concurrent.futures.wait(futures, timeout=timeout)
            wave_failed = bool(not_done)
            for future in done:
                group = futures[future]
                try:
                    group_rows = future.result()
                except Exception:
                    # BrokenProcessPool (a sibling's worker died) or the
                    # group's own worker crashed; its batches stay
                    # pending for the next wave.
                    wave_failed = True
                    continue
                for task_index, rows in zip(group, group_rows):
                    results[task_index] = rows
                    pending.pop(task_index, None)
            if pending and wave_failed:
                self.worker_restarts += 1
                restart = getattr(executor, "restart", None)
                if restart is not None:
                    restart()
                # The injected failure already struck (its worker died or
                # hung with the marked batch in hand); the re-dispatched
                # batches must run clean.
                pending = {
                    i: replace(t, chaos=None) if t.chaos is not None else t
                    for i, t in pending.items()
                }
        return results

    @staticmethod
    def _check_picklable(task: _BatchTask) -> None:
        try:
            pickle.dumps(task)
        except Exception as exc:
            raise ValueError(
                "the process executor requires picklable campaign "
                "factories (module-level callables or factory objects; "
                "see repro.experiments.common.make_protector_factory) — "
                f"pickling the first batch failed with: {exc!r}"
            ) from None
