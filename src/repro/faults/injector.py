"""Fault plans and the fault-injection step hook.

A :class:`FaultPlan` pins down *when* (iteration), *where* (domain index)
and *what* (bit position) a silent data corruption strikes. A
:class:`FaultInjector` holds one or more plans and exposes the
``inject(grid, iteration)`` hook consumed by every protector: the hook is
called right after the sweep produced the new domain and before any
checksum is computed from it, matching the injection point of the
paper's campaign ("after the stencil point targeted for data corruption
has been updated and before it is stored into the domain",
Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.bitflip import bit_width, flip_bit_in_array
from repro.stencil.grid import GridBase

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "random_fault_plan",
    "validate_plan_index",
]


def validate_plan_index(plan: "FaultPlan", shape: Sequence[int]) -> None:
    """Check a plan's index against the targeted array's shape.

    Raises a :class:`ValueError` naming the offending plan instead of
    letting an out-of-range index surface as a raw numpy ``IndexError``
    (or, worse, silently wrap around for negative components) deep in
    the injection hook.
    """
    shape = tuple(int(n) for n in shape)
    if len(plan.index) != len(shape):
        raise ValueError(
            f"fault index {plan.index} does not match domain "
            f"dimensionality {len(shape)}"
        )
    for d, (i, n) in enumerate(zip(plan.index, shape)):
        if not 0 <= i < n:
            raise ValueError(
                f"fault plan (iteration={plan.iteration}, target="
                f"{plan.target!r}) index {plan.index} is out of range "
                f"along axis {d}: {i} not in [0, {n}) for shape {shape}"
            )


@dataclass
class FaultPlan:
    """A single planned silent data corruption.

    Attributes
    ----------
    iteration:
        1-based sweep number during which the corruption strikes (the
        value ``grid.iteration`` has right after that sweep).
    index:
        Domain index of the corrupted point (or, for non-``domain``
        targets, an index into the targeted structure — see ``target``).
    bit:
        Bit position flipped in the point's binary representation.
    target:
        What structure the corruption strikes. ``"domain"`` (the
        default, the paper's Section 5.1 model) flips a bit in a domain
        value. ``"checksum"`` flips a bit in the protector's *stored*
        checksum vector for axis ``axis`` (``index`` indexes that
        vector). ``"ghost"`` flips a bit in a just-ingested ghost slab
        of a distributed rank (``axis``/``side`` select the slab,
        ``index`` the point within it). ``"payload"`` corrupts an
        in-flight :class:`~repro.parallel.simmpi.SimChannel` message
        (``index[0]`` is the flat element offset within the payload).
        ``"crash"`` is a fail-stop failure, not an SDC: the ``rank``
        stops posting and answering messages at the start of
        ``iteration`` (``index``/``bit`` are unused).
    axis:
        Checksum/halo axis for the ``checksum`` and ``ghost`` targets.
    side:
        Halo side (``0`` = low, ``1`` = high) for the ``ghost`` and
        ``payload`` targets.
    action:
        In-flight action for the ``payload`` target: ``"corrupt"``
        (default, a bit flip the channel CRC detects) or ``"drop"``.
    rank:
        Victim rank for the ``crash`` target. May be ``None`` in the
        per-rank plan-list form (``plans_by_rank``), where the list
        position already names the victim.
    """

    TARGETS = ("domain", "checksum", "ghost", "payload", "crash")

    iteration: int
    index: Tuple[int, ...]
    bit: int
    target: str = "domain"
    axis: int = 0
    side: int = 0
    action: str = "corrupt"
    rank: Optional[int] = None

    def __post_init__(self) -> None:
        self.iteration = int(self.iteration)
        self.index = tuple(int(i) for i in self.index)
        self.bit = int(self.bit)
        self.target = str(self.target)
        self.axis = int(self.axis)
        self.side = int(self.side)
        self.action = str(self.action)
        if self.rank is not None:
            self.rank = int(self.rank)
            if self.rank < 0:
                raise ValueError("crash victim rank must be non-negative")
        if self.iteration < 1:
            raise ValueError("fault iterations are 1-based; got iteration < 1")
        if self.bit < 0:
            raise ValueError("bit position must be non-negative")
        if self.target not in self.TARGETS:
            raise ValueError(
                f"unknown fault target {self.target!r}; expected one of "
                f"{self.TARGETS}"
            )
        if self.side not in (0, 1):
            raise ValueError("halo side must be 0 (low) or 1 (high)")
        if self.action not in ("corrupt", "drop"):
            raise ValueError(
                f"unknown fault action {self.action!r}; expected 'corrupt' "
                f"or 'drop'"
            )


def random_fault_plan(
    rng: np.random.Generator,
    shape: Sequence[int],
    iterations: int,
    dtype=np.float32,
    bit: Optional[int] = None,
) -> FaultPlan:
    """Draw a uniformly random fault plan (the paper's fault model).

    Iteration, domain point and (unless ``bit`` is pinned) bit position
    are drawn independently and uniformly, as in Section 5.1.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration to inject into")
    iteration = int(rng.integers(1, iterations + 1))
    index = tuple(int(rng.integers(0, n)) for n in shape)
    if bit is None:
        bit = int(rng.integers(0, bit_width(dtype)))
    return FaultPlan(iteration=iteration, index=index, bit=int(bit))


class FaultInjector:
    """Step hook that fires planned faults at their target iteration.

    Parameters
    ----------
    plans:
        The faults to inject. Each plan fires at most once — rollback
        recovery re-executes iterations, and a transient soft error does
        not re-occur on re-execution.

    Notes
    -----
    Instances are callable with the ``(grid, iteration)`` signature every
    protector expects for its ``inject=`` argument.
    """

    def __init__(self, plans: Sequence[FaultPlan] | FaultPlan) -> None:
        if isinstance(plans, FaultPlan):
            plans = [plans]
        self.plans: List[FaultPlan] = list(plans)
        self._fired = [False] * len(self.plans)
        self.injections: List[Tuple[FaultPlan, float, float]] = []

    # -- factory ---------------------------------------------------------------
    @classmethod
    def single_random(
        cls,
        rng: np.random.Generator,
        shape: Sequence[int],
        iterations: int,
        dtype=np.float32,
        bit: Optional[int] = None,
    ) -> "FaultInjector":
        """Injector with one uniformly random fault (the paper's campaign)."""
        return cls([random_fault_plan(rng, shape, iterations, dtype=dtype, bit=bit)])

    # -- hook --------------------------------------------------------------------
    def __call__(self, grid: GridBase, iteration: int) -> None:
        self.inject(grid, iteration)

    def inject(self, grid: GridBase, iteration: int) -> None:
        """Fire every not-yet-fired plan scheduled for ``iteration``."""
        for i, plan in enumerate(self.plans):
            if self._fired[i] or plan.iteration != iteration:
                continue
            if plan.target != "domain":
                raise ValueError(
                    f"FaultInjector only fires 'domain' plans; got a "
                    f"{plan.target!r} plan (use repro.faults.models."
                    f"make_injector to route non-domain targets)"
                )
            validate_plan_index(plan, grid.shape)
            old, new = flip_bit_in_array(grid.u, plan.index, plan.bit)
            self._fired[i] = True
            self.injections.append((plan, old, new))

    # -- bookkeeping ----------------------------------------------------------
    @property
    def fired_count(self) -> int:
        return sum(self._fired)

    @property
    def all_fired(self) -> bool:
        return all(self._fired) if self._fired else True

    def reset(self) -> None:
        """Re-arm every plan (for reuse across repetitions)."""
        self._fired = [False] * len(self.plans)
        self.injections.clear()
