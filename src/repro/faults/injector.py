"""Fault plans and the fault-injection step hook.

A :class:`FaultPlan` pins down *when* (iteration), *where* (domain index)
and *what* (bit position) a silent data corruption strikes. A
:class:`FaultInjector` holds one or more plans and exposes the
``inject(grid, iteration)`` hook consumed by every protector: the hook is
called right after the sweep produced the new domain and before any
checksum is computed from it, matching the injection point of the
paper's campaign ("after the stencil point targeted for data corruption
has been updated and before it is stored into the domain",
Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.bitflip import bit_width, flip_bit_in_array
from repro.stencil.grid import GridBase

__all__ = ["FaultPlan", "FaultInjector", "random_fault_plan"]


@dataclass
class FaultPlan:
    """A single planned silent data corruption.

    Attributes
    ----------
    iteration:
        1-based sweep number during which the corruption strikes (the
        value ``grid.iteration`` has right after that sweep).
    index:
        Domain index of the corrupted point.
    bit:
        Bit position flipped in the point's binary representation.
    """

    iteration: int
    index: Tuple[int, ...]
    bit: int

    def __post_init__(self) -> None:
        self.iteration = int(self.iteration)
        self.index = tuple(int(i) for i in self.index)
        self.bit = int(self.bit)
        if self.iteration < 1:
            raise ValueError("fault iterations are 1-based; got iteration < 1")
        if self.bit < 0:
            raise ValueError("bit position must be non-negative")


def random_fault_plan(
    rng: np.random.Generator,
    shape: Sequence[int],
    iterations: int,
    dtype=np.float32,
    bit: Optional[int] = None,
) -> FaultPlan:
    """Draw a uniformly random fault plan (the paper's fault model).

    Iteration, domain point and (unless ``bit`` is pinned) bit position
    are drawn independently and uniformly, as in Section 5.1.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration to inject into")
    iteration = int(rng.integers(1, iterations + 1))
    index = tuple(int(rng.integers(0, n)) for n in shape)
    if bit is None:
        bit = int(rng.integers(0, bit_width(dtype)))
    return FaultPlan(iteration=iteration, index=index, bit=int(bit))


class FaultInjector:
    """Step hook that fires planned faults at their target iteration.

    Parameters
    ----------
    plans:
        The faults to inject. Each plan fires at most once — rollback
        recovery re-executes iterations, and a transient soft error does
        not re-occur on re-execution.

    Notes
    -----
    Instances are callable with the ``(grid, iteration)`` signature every
    protector expects for its ``inject=`` argument.
    """

    def __init__(self, plans: Sequence[FaultPlan] | FaultPlan) -> None:
        if isinstance(plans, FaultPlan):
            plans = [plans]
        self.plans: List[FaultPlan] = list(plans)
        self._fired = [False] * len(self.plans)
        self.injections: List[Tuple[FaultPlan, float, float]] = []

    # -- factory ---------------------------------------------------------------
    @classmethod
    def single_random(
        cls,
        rng: np.random.Generator,
        shape: Sequence[int],
        iterations: int,
        dtype=np.float32,
        bit: Optional[int] = None,
    ) -> "FaultInjector":
        """Injector with one uniformly random fault (the paper's campaign)."""
        return cls([random_fault_plan(rng, shape, iterations, dtype=dtype, bit=bit)])

    # -- hook --------------------------------------------------------------------
    def __call__(self, grid: GridBase, iteration: int) -> None:
        self.inject(grid, iteration)

    def inject(self, grid: GridBase, iteration: int) -> None:
        """Fire every not-yet-fired plan scheduled for ``iteration``."""
        for i, plan in enumerate(self.plans):
            if self._fired[i] or plan.iteration != iteration:
                continue
            if len(plan.index) != grid.ndim:
                raise ValueError(
                    f"fault index {plan.index} does not match domain "
                    f"dimensionality {grid.ndim}"
                )
            old, new = flip_bit_in_array(grid.u, plan.index, plan.bit)
            self._fired[i] = True
            self.injections.append((plan, old, new))

    # -- bookkeeping ----------------------------------------------------------
    @property
    def fired_count(self) -> int:
        return sum(self._fired)

    @property
    def all_fired(self) -> bool:
        return all(self._fired) if self._fired else True

    def reset(self) -> None:
        """Re-arm every plan (for reuse across repetitions)."""
        self._fired = [False] * len(self.plans)
        self.injections.clear()
