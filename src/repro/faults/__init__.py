"""Fault injection: IEEE-754 bit-flips and seeded injection campaigns.

The paper evaluates the ABFT scheme by injecting single bit-flips into
the stencil domain "during a random stencil iteration, in a random point
in the computational domain, and at a random bit position" (Section 5.1).
This subpackage reproduces that fault model:

``bitflip``
    Raw IEEE-754 bit manipulation on float32/float64 scalars and arrays,
    including the sign/exponent/fraction field classification used by
    Figure 10.
``injector``
    :class:`FaultPlan` (a concrete fault to inject) and
    :class:`FaultInjector` (the step hook that fires it at the right
    iteration).
``models``
    Pluggable fault models beyond the paper's single flip:
    :class:`~repro.faults.models.MultiBitBurst`,
    :class:`~repro.faults.models.PoissonArrival` (MTBF-driven arrival
    across iterations and ranks) and
    :class:`~repro.faults.models.RegionTargeted` corruption striking
    ghosts, stored checksums and in-flight halo payloads, plus the
    hooks that deliver them
    (:func:`~repro.faults.models.make_injector`,
    :class:`~repro.faults.models.DistributedFaultInjector`).
``campaign``
    Orchestration of repeated runs with independent random faults and
    aggregation of the timing/accuracy statistics the paper reports
    (:func:`~repro.faults.campaign.run_campaign` is the reference
    serial loop).
``engine``
    The throughput harness: :class:`~repro.faults.engine.CampaignEngine`
    dispatches batched runs to a persistent worker pool whose grids and
    protectors are reset in place between runs, producing records
    bitwise-identical to the serial loop.
"""

from repro.faults.bitflip import (
    bit_width,
    bit_field,
    flip_bit,
    flip_bit_in_array,
    exponent_bits,
    fraction_bits,
    sign_bit,
)
from repro.faults.injector import (
    FaultPlan,
    FaultInjector,
    random_fault_plan,
    validate_plan_index,
)
from repro.faults.models import (
    FaultModel,
    SingleBitFlip,
    MultiBitBurst,
    PoissonArrival,
    RegionTargeted,
    register_fault_model,
    make_fault_model,
    available_fault_models,
    ChecksumInjector,
    CompositeInjector,
    make_injector,
    DistributedFaultInjector,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    RunRecord,
    resolve_run_counters,
    run_campaign,
)
from repro.faults.engine import CampaignEngine, draw_fault_plans, stacked_supported

__all__ = [
    "bit_width",
    "bit_field",
    "flip_bit",
    "flip_bit_in_array",
    "exponent_bits",
    "fraction_bits",
    "sign_bit",
    "FaultPlan",
    "FaultInjector",
    "random_fault_plan",
    "validate_plan_index",
    "FaultModel",
    "SingleBitFlip",
    "MultiBitBurst",
    "PoissonArrival",
    "RegionTargeted",
    "register_fault_model",
    "make_fault_model",
    "available_fault_models",
    "ChecksumInjector",
    "CompositeInjector",
    "make_injector",
    "DistributedFaultInjector",
    "CampaignConfig",
    "CampaignResult",
    "RunRecord",
    "resolve_run_counters",
    "run_campaign",
    "CampaignEngine",
    "draw_fault_plans",
    "stacked_supported",
]
