"""IEEE-754 bit-flip primitives.

A silent data corruption is modelled as a single bit-flip in the binary
representation of a floating-point domain value (the paper's fault
model, Section 5.1). For float32 the bit positions are numbered 0..31
with bit 31 the sign, bits 23..30 the exponent and bits 0..22 the
fraction — the classification used by Figure 10 of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "bit_width",
    "sign_bit",
    "exponent_bits",
    "fraction_bits",
    "bit_field",
    "flip_bit",
    "flip_bit_in_array",
]

_UINT_FOR_FLOAT = {
    np.dtype(np.float32): np.uint32,
    np.dtype(np.float64): np.uint64,
}


def _uint_type(dtype):
    """The unsigned-integer scalar type matching a float dtype's width."""
    dtype = np.dtype(dtype)
    try:
        return _UINT_FOR_FLOAT[dtype]
    except KeyError:
        raise TypeError(
            f"bit flips are supported for float32/float64, got {dtype}"
        ) from None


def bit_width(dtype) -> int:
    """Number of bits in the binary representation of ``dtype`` (32 or 64)."""
    return int(np.dtype(dtype).itemsize * 8)


def sign_bit(dtype) -> int:
    """Bit position of the sign bit (31 for float32, 63 for float64)."""
    return bit_width(dtype) - 1


def exponent_bits(dtype) -> Tuple[int, int]:
    """Inclusive range ``(lo, hi)`` of exponent bit positions."""
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float32):
        return (23, 30)
    if dtype == np.dtype(np.float64):
        return (52, 62)
    raise TypeError(f"unsupported dtype {dtype}")


def fraction_bits(dtype) -> Tuple[int, int]:
    """Inclusive range ``(lo, hi)`` of fraction (mantissa) bit positions."""
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float32):
        return (0, 22)
    if dtype == np.dtype(np.float64):
        return (0, 51)
    raise TypeError(f"unsupported dtype {dtype}")


def bit_field(bit: int, dtype) -> str:
    """Classify a bit position as ``"sign"``, ``"exponent"`` or ``"fraction"``.

    This is the grouping used on the x-axis of Figure 10 in the paper.
    """
    width = bit_width(dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for {np.dtype(dtype)} (0..{width - 1})")
    if bit == sign_bit(dtype):
        return "sign"
    lo, hi = exponent_bits(dtype)
    if lo <= bit <= hi:
        return "exponent"
    return "fraction"


def flip_bit(value, bit: int, dtype=None):
    """Return ``value`` with bit ``bit`` of its binary representation flipped.

    Parameters
    ----------
    value:
        A Python float or NumPy floating scalar.
    bit:
        Bit position, 0 = least-significant fraction bit.
    dtype:
        Representation to flip in; defaults to the dtype of ``value``
        (float64 for Python floats).
    """
    if dtype is None:
        dtype = value.dtype if isinstance(value, np.generic) else np.float64
    dtype = np.dtype(dtype)
    uint = _uint_type(dtype)
    width = bit_width(dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for {dtype} (0..{width - 1})")
    scalar = np.array([value], dtype=dtype)
    bits = scalar.view(uint)
    bits[0] ^= uint(1) << uint(bit)
    return scalar[0]


def flip_bit_in_array(arr: np.ndarray, index, bit: int) -> Tuple[float, float]:
    """Flip one bit of one element of ``arr`` in place.

    Parameters
    ----------
    arr:
        A float32/float64 array (modified in place).
    index:
        Index of the element to corrupt (tuple for multi-dimensional
        arrays, or a flat integer index).
    bit:
        Bit position to flip.

    Returns
    -------
    (old_value, new_value)
        The element value before and after the flip.
    """
    uint = _uint_type(arr.dtype)
    width = bit_width(arr.dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for {arr.dtype} (0..{width - 1})")
    if np.isscalar(index) or isinstance(index, (int, np.integer)):
        index = np.unravel_index(int(index), arr.shape)
    else:
        index = tuple(int(i) for i in index)
    old = float(arr[index])
    view = arr.view(uint)
    view[index] ^= uint(1) << uint(bit)
    new = float(arr[index])
    return old, new
