"""Fault-injection campaigns.

A campaign repeats the same protected stencil run many times, each time
with an independently drawn random fault (or none), and records the
execution time, the final arithmetic error against an error-free
reference, and the detection/correction bookkeeping. This is the
harness behind the paper's evaluation (Section 5): 1,000 repetitions for
the 64x64x8 tiles and 100 repetitions for the 512x512x8 tiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.protector import Protector
from repro.faults.injector import FaultInjector, FaultPlan, random_fault_plan
from repro.metrics.accuracy import l2_error
from repro.metrics.statistics import SummaryStats, summarize
from repro.stencil.grid import GridBase

__all__ = ["CampaignConfig", "RunRecord", "CampaignResult", "run_campaign"]

GridFactory = Callable[[], GridBase]
ProtectorFactory = Callable[[GridBase], Protector]


@dataclass
class CampaignConfig:
    """Parameters of a fault-injection campaign.

    Attributes
    ----------
    iterations:
        Stencil iterations per run (128 / 256 in the paper).
    repetitions:
        Number of independent runs.
    inject:
        Whether each run receives random bit-flip(s)
        (``False`` reproduces the error-free scenario).
    bit:
        Pin the bit position of the injected flip (used by the Figure 10
        bit-position sweep); ``None`` draws it uniformly.
    faults_per_run:
        Number of independent faults injected per run (the paper injects
        exactly one; larger values exercise the multi-error behaviour).
    seed:
        Base seed; run ``i`` uses ``seed + i`` so campaigns are fully
        reproducible and runs are independent.
    """

    iterations: int
    repetitions: int
    inject: bool = True
    bit: Optional[int] = None
    faults_per_run: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.faults_per_run < 1:
            raise ValueError("faults_per_run must be >= 1")


@dataclass
class RunRecord:
    """Outcome of a single campaign run."""

    run_index: int
    elapsed_seconds: float
    arithmetic_error: float
    fault: Optional[FaultPlan]
    errors_detected: int
    errors_corrected: int
    errors_uncorrected: int
    rollbacks: int
    recomputed_iterations: int
    faults: List[FaultPlan] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fault is not None and not self.faults:
            self.faults = [self.fault]

    @property
    def injected(self) -> bool:
        return self.fault is not None

    @property
    def detected(self) -> bool:
        return self.errors_detected > 0


@dataclass
class CampaignResult:
    """All run records of a campaign plus convenience summaries."""

    config: CampaignConfig
    protector_name: str
    records: List[RunRecord] = field(default_factory=list)

    # -- summaries -------------------------------------------------------------
    def times(self) -> List[float]:
        return [r.elapsed_seconds for r in self.records]

    def errors(self) -> List[float]:
        return [r.arithmetic_error for r in self.records]

    def time_stats(self) -> SummaryStats:
        return summarize(self.times())

    def error_stats(self) -> SummaryStats:
        return summarize(self.errors())

    def detection_rate(self) -> float:
        """Fraction of injected runs in which the fault was detected."""
        injected = [r for r in self.records if r.injected]
        if not injected:
            return float("nan")
        return sum(1 for r in injected if r.detected) / len(injected)

    def false_positive_rate(self) -> float:
        """Fraction of non-injected runs that still flagged an error."""
        clean = [r for r in self.records if not r.injected]
        if not clean:
            return float("nan")
        return sum(1 for r in clean if r.detected) / len(clean)

    def total_rollbacks(self) -> int:
        return sum(r.rollbacks for r in self.records)

    def __len__(self) -> int:
        return len(self.records)


def _protector_counters(protector: Protector) -> tuple:
    detections = getattr(protector, "total_detections", 0)
    corrections = getattr(protector, "total_corrections", 0)
    uncorrected = getattr(protector, "total_uncorrected", 0)
    rollbacks = getattr(protector, "total_rollbacks", 0)
    recomputed = getattr(protector, "total_recomputed_iterations", 0)
    return detections, corrections, uncorrected, rollbacks, recomputed


def compute_reference(grid_factory: GridFactory, iterations: int) -> np.ndarray:
    """Error-free reference solution (the paper's single-threaded run)."""
    grid = grid_factory()
    grid.run(iterations)
    return grid.u.copy()


def run_campaign(
    grid_factory: GridFactory,
    protector_factory: ProtectorFactory,
    config: CampaignConfig,
    reference: Optional[np.ndarray] = None,
) -> CampaignResult:
    """Execute a fault-injection campaign.

    Parameters
    ----------
    grid_factory:
        Zero-argument callable returning a *fresh* grid with identical
        initial conditions for every run.
    protector_factory:
        Callable building a fresh protector for a given grid (e.g.
        ``OnlineABFT.for_grid``).
    config:
        Campaign parameters.
    reference:
        Optional pre-computed error-free final domain; computed once via
        :func:`compute_reference` when omitted.

    Returns
    -------
    CampaignResult
    """
    if reference is None:
        reference = compute_reference(grid_factory, config.iterations)

    sample_grid = grid_factory()
    protector_name = getattr(protector_factory(sample_grid), "name", "protector")
    result = CampaignResult(config=config, protector_name=protector_name)

    # Warm-up run (not recorded): pays one-off costs (allocator growth,
    # lazy imports, CPU frequency ramp) outside the timed repetitions so
    # that the mean execution time is not skewed by the first run.
    warmup_protector = protector_factory(sample_grid)
    warmup_protector.run(sample_grid, min(3, config.iterations))

    for run_index in range(config.repetitions):
        grid = grid_factory()
        protector = protector_factory(grid)
        protector.reset()

        injector: Optional[FaultInjector] = None
        plan: Optional[FaultPlan] = None
        plans: List[FaultPlan] = []
        if config.inject:
            rng = np.random.default_rng(config.seed + run_index)
            plans = [
                random_fault_plan(
                    rng, grid.shape, config.iterations, dtype=grid.dtype,
                    bit=config.bit,
                )
                for _ in range(config.faults_per_run)
            ]
            plan = plans[0]
            injector = FaultInjector(plans)

        start = time.perf_counter()
        run_report = protector.run(grid, config.iterations, inject=injector)
        elapsed = time.perf_counter() - start

        detections, corrections, uncorrected, rollbacks, recomputed = (
            _protector_counters(protector)
        )
        # Fall back to the run report when the protector does not expose
        # counters (e.g. NoProtection).
        detections = detections or run_report.total_detected
        corrections = corrections or run_report.total_corrected
        uncorrected = uncorrected or run_report.total_uncorrected
        rollbacks = rollbacks or run_report.total_rollbacks
        recomputed = recomputed or run_report.total_recomputed_iterations

        record = RunRecord(
            run_index=run_index,
            elapsed_seconds=elapsed,
            arithmetic_error=l2_error(reference, grid.u),
            fault=plan,
            errors_detected=int(detections),
            errors_corrected=int(corrections),
            errors_uncorrected=int(uncorrected),
            rollbacks=int(rollbacks),
            recomputed_iterations=int(recomputed),
            faults=plans,
        )
        result.records.append(record)
    return result
