"""Fault-injection campaigns.

A campaign repeats the same protected stencil run many times, each time
with an independently drawn random fault (or none), and records the
execution time, the final arithmetic error against an error-free
reference, and the detection/correction bookkeeping. This is the
harness behind the paper's evaluation (Section 5): 1,000 repetitions for
the 64x64x8 tiles and 100 repetitions for the 512x512x8 tiles.

:func:`run_campaign` is the *reference* serial loop: one fresh grid and
one fresh protector per run.  The throughput-oriented harness is
:class:`repro.faults.engine.CampaignEngine`, which produces records
bitwise-identical to this loop (same ``seed + i`` fault plans, same
numerics) from persistent workers that reset their state in place; the
benchmark suite gates that equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.protector import Protector
from repro.faults.injector import FaultPlan
from repro.faults.models import FaultModel, SingleBitFlip, make_injector
from repro.metrics.accuracy import l2_error
from repro.metrics.statistics import SummaryStats, summarize
from repro.stencil.grid import GridBase

__all__ = [
    "BatchStrategy",
    "CampaignConfig",
    "RunRecord",
    "CampaignResult",
    "resolve_run_counters",
    "crash_run_counters",
    "run_with_crashes",
    "run_campaign",
]

GridFactory = Callable[[], GridBase]
ProtectorFactory = Callable[[GridBase], Protector]


@dataclass
class CampaignConfig:
    """Parameters of a fault-injection campaign.

    Attributes
    ----------
    iterations:
        Stencil iterations per run (128 / 256 in the paper).
    repetitions:
        Number of independent runs.
    inject:
        Whether each run receives random bit-flip(s)
        (``False`` reproduces the error-free scenario).
    bit:
        Pin the bit position of the injected flip (used by the Figure 10
        bit-position sweep); ``None`` draws it uniformly.
    faults_per_run:
        Number of independent faults injected per run (the paper injects
        exactly one; larger values exercise the multi-error behaviour).
    seed:
        Base seed; run ``i`` uses ``seed + i`` so campaigns are fully
        reproducible and runs are independent.
    fault_model:
        The :class:`~repro.faults.models.FaultModel` drawing each run's
        plans.  ``None`` (the default) resolves to
        :class:`~repro.faults.models.SingleBitFlip` built from
        ``faults_per_run``/``bit`` — the legacy paper model, with RNG
        draws bit-identical to the historical loop.  Models that draw
        fail-stop plans (:class:`~repro.faults.models.RankCrash`) route
        their runs through the distributed runner's buddy-checkpoint
        recovery path (:func:`run_with_crashes`); the engine executes
        such runs on its replay path with the recorded fallback reason.
    stacked_width:
        Cap on the engine's stacked batch width (runs laid out along the
        trailing axis of one buffer pair).  ``None`` (the default)
        defers to the ``REPRO_STACKED_WIDTH`` environment variable and
        then to the built-in default of 32 — see
        :func:`repro.faults.engine.resolve_stacked_width`.  A pure
        throughput knob: records are bitwise-independent of it.
    """

    iterations: int
    repetitions: int
    inject: bool = True
    bit: Optional[int] = None
    faults_per_run: int = 1
    seed: int = 0
    fault_model: Optional[FaultModel] = None
    stacked_width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.faults_per_run < 1:
            raise ValueError("faults_per_run must be >= 1")
        if self.stacked_width is not None and self.stacked_width < 1:
            raise ValueError("stacked_width must be >= 1")
        if self.fault_model is not None and not isinstance(
            self.fault_model, FaultModel
        ):
            raise TypeError(
                f"fault_model must be a FaultModel, got "
                f"{type(self.fault_model).__name__}"
            )

    def resolved_fault_model(self) -> FaultModel:
        """The effective model: explicit, else the legacy single-bit-flip."""
        if self.fault_model is not None:
            return self.fault_model
        return SingleBitFlip(faults_per_run=self.faults_per_run, bit=self.bit)


@dataclass
class RunRecord:
    """Outcome of a single campaign run."""

    run_index: int
    elapsed_seconds: float
    arithmetic_error: float
    fault: Optional[FaultPlan]
    errors_detected: int
    errors_corrected: int
    errors_uncorrected: int
    rollbacks: int
    recomputed_iterations: int
    faults: List[FaultPlan] = field(default_factory=list)
    #: Ranks rebuilt from a buddy checkpoint (fail-stop runs; 0 for
    #: SDC-only runs, which never lose a rank).
    ranks_rebuilt: int = 0
    #: Bytes shipped to buddies for checkpointing during the run.
    checkpoint_bytes: int = 0

    def __post_init__(self) -> None:
        if self.fault is not None and not self.faults:
            self.faults = [self.fault]

    @property
    def injected(self) -> bool:
        return self.fault is not None

    @property
    def detected(self) -> bool:
        return self.errors_detected > 0


@dataclass(frozen=True)
class BatchStrategy:
    """Which run strategy one engine batch actually used.

    The engine picks ``stacked`` or ``replay`` per batch (see
    :mod:`repro.faults.engine`); campaigns report that choice — with the
    recorded fallback reason whenever replay was chosen — so throughput
    numbers are never read against the wrong execution path.  The legacy
    serial :func:`run_campaign` loop reports nothing here (records are
    identical either way; strategy is a property of the engine).
    """

    #: First run index of the batch.
    start: int
    #: Number of runs in the batch.
    width: int
    #: ``"stacked"`` | ``"replay"``.
    strategy: str
    #: Why replay was chosen when it was (``None`` under stacked).
    reason: Optional[str] = None


@dataclass
class _ResultColumns:
    """Columnar views over a campaign's records, built in one pass.

    The summary methods of :class:`CampaignResult` are called repeatedly
    by the figures (once per statistic, per method, per scenario); with
    paper-scale campaigns of 1,000 records, rebuilding a Python list for
    every call dominated the summary cost.  The arrays are built once per
    record count and reused until more records are appended.
    """

    elapsed: np.ndarray
    error: np.ndarray
    detected_counts: np.ndarray
    corrected: np.ndarray
    uncorrected: np.ndarray
    rollbacks: np.ndarray
    recomputed: np.ndarray
    injected: np.ndarray

    @classmethod
    def from_records(cls, records: Sequence[RunRecord]) -> "_ResultColumns":
        n = len(records)
        elapsed = np.empty(n, dtype=np.float64)
        error = np.empty(n, dtype=np.float64)
        detected = np.empty(n, dtype=np.int64)
        corrected = np.empty(n, dtype=np.int64)
        uncorrected = np.empty(n, dtype=np.int64)
        rollbacks = np.empty(n, dtype=np.int64)
        recomputed = np.empty(n, dtype=np.int64)
        injected = np.empty(n, dtype=bool)
        for i, r in enumerate(records):
            elapsed[i] = r.elapsed_seconds
            error[i] = r.arithmetic_error
            detected[i] = r.errors_detected
            corrected[i] = r.errors_corrected
            uncorrected[i] = r.errors_uncorrected
            rollbacks[i] = r.rollbacks
            recomputed[i] = r.recomputed_iterations
            injected[i] = r.fault is not None
        return cls(
            elapsed=elapsed,
            error=error,
            detected_counts=detected,
            corrected=corrected,
            uncorrected=uncorrected,
            rollbacks=rollbacks,
            recomputed=recomputed,
            injected=injected,
        )


@dataclass
class CampaignResult:
    """All run records of a campaign plus convenience summaries.

    The summaries are computed from columnar NumPy arrays built once per
    record count (:class:`_ResultColumns`); the ``records`` list remains
    the authoritative store and the arrays refresh automatically when
    records are appended.
    """

    config: CampaignConfig
    protector_name: str
    records: List[RunRecord] = field(default_factory=list)
    #: Per-batch strategy reports (engine campaigns only; the legacy
    #: serial loop leaves this empty).
    batch_strategies: List[BatchStrategy] = field(default_factory=list)

    def strategy_counts(self) -> dict:
        """Runs executed per strategy, e.g. ``{"stacked": 96, "replay": 4}``."""
        counts: dict = {}
        for batch in self.batch_strategies:
            counts[batch.strategy] = counts.get(batch.strategy, 0) + batch.width
        return counts

    def fallback_reasons(self) -> List[str]:
        """Distinct recorded reasons replay batches fell back, in order."""
        seen: List[str] = []
        for batch in self.batch_strategies:
            if batch.reason is not None and batch.reason not in seen:
                seen.append(batch.reason)
        return seen

    def columns(self) -> _ResultColumns:
        """Columnar arrays over the records (cached per record count)."""
        cached = getattr(self, "_columns", None)
        if cached is None or len(cached.elapsed) != len(self.records):
            cached = _ResultColumns.from_records(self.records)
            # Bypass dataclass field machinery: the cache is derived
            # state, not part of equality/repr.
            object.__setattr__(self, "_columns", cached)
        return cached

    # -- summaries -------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Per-run execution times in seconds (float64 array)."""
        return self.columns().elapsed

    def errors(self) -> np.ndarray:
        """Per-run arithmetic errors vs the reference (float64 array)."""
        return self.columns().error

    def time_stats(self) -> SummaryStats:
        return summarize(self.times())

    def error_stats(self) -> SummaryStats:
        return summarize(self.errors())

    def detection_rate(self) -> float:
        """Fraction of injected runs in which the fault was detected."""
        cols = self.columns()
        n_injected = int(cols.injected.sum())
        if n_injected == 0:
            return float("nan")
        hits = int(((cols.detected_counts > 0) & cols.injected).sum())
        return hits / n_injected

    def false_positive_rate(self) -> float:
        """Fraction of non-injected runs that still flagged an error."""
        cols = self.columns()
        clean = ~cols.injected
        n_clean = int(clean.sum())
        if n_clean == 0:
            return float("nan")
        flags = int(((cols.detected_counts > 0) & clean).sum())
        return flags / n_clean

    def total_rollbacks(self) -> int:
        return int(self.columns().rollbacks.sum())

    def __len__(self) -> int:
        return len(self.records)


def resolve_run_counters(protector: Protector, run_report) -> tuple:
    """The five per-run counters: protector statistics, run-report fallback.

    Protectors that expose cumulative counters (the ABFT protectors) are
    the authoritative source; a protector that does not expose a counter
    at all (e.g. :class:`~repro.core.protector.NoProtection`) falls back
    to the corresponding run-report total.  The distinction is made with
    a missing-attribute sentinel, **not** truthiness: a protector that
    legitimately counted zero keeps its zero instead of being silently
    overridden by the run report.
    """

    def pick(attr: str, fallback: int) -> int:
        value = getattr(protector, attr, None)
        return int(fallback) if value is None else int(value)

    return (
        pick("total_detections", run_report.total_detected),
        pick("total_corrections", run_report.total_corrected),
        pick("total_uncorrected", run_report.total_uncorrected),
        pick("total_rollbacks", run_report.total_rollbacks),
        pick("total_recomputed_iterations", run_report.total_recomputed_iterations),
    )


def crash_run_counters(runner) -> tuple:
    """Per-run counters of a distributed (fail-stop) campaign run.

    Returns the five classic counters (detections, corrections,
    uncorrected, rollbacks, recomputed iterations) followed by the two
    recovery-accounting extras (ranks rebuilt, checkpoint bytes).  The
    rollback/recompute slots are fed by the runner's
    :class:`~repro.parallel.simmpi.RecoveryStats` — for fail-stop runs
    the rollback *is* the checkpoint restore and the recomputation is
    the replayed iteration span, the distributed analogue of the serial
    offline-ABFT counters.
    """
    uncorrected = sum(
        r.protector.total_uncorrected
        for r in runner.ranks
        if r.protector is not None
    )
    stats = runner.recovery
    return (
        runner.total_detected(),
        runner.total_corrected(),
        int(uncorrected),
        stats.rollbacks,
        stats.replayed_iterations,
        stats.ranks_rebuilt,
        stats.checkpoint_bytes,
    )


def run_with_crashes(
    grid: GridBase,
    protector: Protector,
    plans: Sequence[FaultPlan],
    iterations: int,
    fault_model: FaultModel,
):
    """Execute one campaign run that includes fail-stop (crash) plans.

    Crash plans have no serial meaning — a single process cannot lose a
    rank — so the run is executed on the simulated distributed runner
    with buddy checkpointing auto-enabled, scattering the grid over
    ``fault_model.n_ranks`` ranks (default 2).  Domain plans in the same
    draw are mapped onto the owning ranks, so combined crash + SDC draws
    exercise detection, correction *and* recovery in one run.

    The serial ``protector`` is not stepped; it only selects the
    distributed protection mode: :class:`~repro.core.online.OnlineABFT`
    runs protected ranks (same per-rank configuration the runner builds
    everywhere else), :class:`~repro.core.protector.NoProtection` runs
    bare ranks.  Other protectors (e.g. offline ABFT) have no per-rank
    distributed counterpart and are rejected.

    Returns ``(elapsed_seconds, runner)``; pull the final domain from
    ``runner.gather()`` and the counters via :func:`crash_run_counters`.
    """
    from repro.core.online import OnlineABFT
    from repro.core.protector import NoProtection
    from repro.faults.models import DistributedFaultInjector
    from repro.parallel.simmpi import DistributedStencilRunner

    if isinstance(protector, OnlineABFT):
        protect = True
    elif isinstance(protector, NoProtection):
        protect = False
    else:
        raise ValueError(
            f"fail-stop campaign runs support the 'online-abft' and "
            f"'no-abft' protectors; got {getattr(protector, 'name', type(protector).__name__)!r}"
        )
    n_ranks = int(getattr(fault_model, "n_ranks", 2))
    runner = DistributedStencilRunner(
        grid,
        n_ranks=n_ranks,
        protect=protect,
        backend=getattr(protector, "backend", None),
    )
    injector = DistributedFaultInjector.from_global(runner, plans)
    start = time.perf_counter()
    runner.run(iterations, inject=injector)
    elapsed = time.perf_counter() - start
    return elapsed, runner


def compute_reference(grid_factory: GridFactory, iterations: int) -> np.ndarray:
    """Error-free reference solution (the paper's single-threaded run)."""
    grid = grid_factory()
    grid.run(iterations)
    return grid.u.copy()


def run_campaign(
    grid_factory: GridFactory,
    protector_factory: ProtectorFactory,
    config: CampaignConfig,
    reference: Optional[np.ndarray] = None,
) -> CampaignResult:
    """Execute a fault-injection campaign.

    Parameters
    ----------
    grid_factory:
        Zero-argument callable returning a *fresh* grid with identical
        initial conditions for every run.
    protector_factory:
        Callable building a fresh protector for a given grid (e.g.
        ``OnlineABFT.for_grid``).
    config:
        Campaign parameters.
    reference:
        Optional pre-computed error-free final domain; computed once via
        :func:`compute_reference` when omitted.

    Returns
    -------
    CampaignResult
    """
    if reference is None:
        reference = compute_reference(grid_factory, config.iterations)

    sample_grid = grid_factory()
    protector_name = getattr(protector_factory(sample_grid), "name", "protector")
    result = CampaignResult(config=config, protector_name=protector_name)

    # Warm-up run (not recorded): pays one-off costs (allocator growth,
    # lazy imports, CPU frequency ramp) outside the timed repetitions so
    # that the mean execution time is not skewed by the first run.
    warmup_protector = protector_factory(sample_grid)
    warmup_protector.run(sample_grid, min(3, config.iterations))

    fault_model = config.resolved_fault_model()
    for run_index in range(config.repetitions):
        grid = grid_factory()
        protector = protector_factory(grid)
        protector.reset()

        injector = None
        plan: Optional[FaultPlan] = None
        plans: List[FaultPlan] = []
        if config.inject:
            rng = np.random.default_rng(config.seed + run_index)
            plans = fault_model.draw(
                rng, grid.shape, config.iterations, dtype=grid.dtype
            )
            # MTBF-style models legitimately draw no fault for a run.
            plan = plans[0] if plans else None
            if any(p.target == "crash" for p in plans):
                # Fail-stop plans cannot fire in a serial run: execute on
                # the distributed runner with buddy-checkpoint recovery.
                elapsed, runner = run_with_crashes(
                    grid, protector, plans, config.iterations, fault_model
                )
                det, cor, unc, rb, rec, rebuilt, ck_bytes = (
                    crash_run_counters(runner)
                )
                result.records.append(
                    RunRecord(
                        run_index=run_index,
                        elapsed_seconds=elapsed,
                        arithmetic_error=l2_error(reference, runner.gather()),
                        fault=plan,
                        errors_detected=int(det),
                        errors_corrected=int(cor),
                        errors_uncorrected=int(unc),
                        rollbacks=int(rb),
                        recomputed_iterations=int(rec),
                        faults=plans,
                        ranks_rebuilt=int(rebuilt),
                        checkpoint_bytes=int(ck_bytes),
                    )
                )
                continue
            injector = make_injector(plans, protector)

        start = time.perf_counter()
        run_report = protector.run(grid, config.iterations, inject=injector)
        elapsed = time.perf_counter() - start

        detections, corrections, uncorrected, rollbacks, recomputed = (
            resolve_run_counters(protector, run_report)
        )

        record = RunRecord(
            run_index=run_index,
            elapsed_seconds=elapsed,
            arithmetic_error=l2_error(reference, grid.u),
            fault=plan,
            errors_detected=int(detections),
            errors_corrected=int(corrections),
            errors_uncorrected=int(uncorrected),
            rollbacks=int(rollbacks),
            recomputed_iterations=int(recomputed),
            faults=plans,
        )
        result.records.append(record)
    return result
