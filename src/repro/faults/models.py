"""Pluggable fault models: the adversarial fault surface of the campaigns.

The paper's campaign model (Section 5.1) is a *single* uniformly random
bit flip in one domain value.  Every other layer of a real machine can
fail too, and the broader ABFT literature evaluates against exactly
those surfaces: multi-bit bursts from a single upset event, MTBF-driven
arrival processes across long runs and across ranks, and corruption
striking the protection machinery itself — stored checksum vectors,
just-ingested ghost slabs, in-flight halo messages.

This module makes the fault model a first-class, pluggable axis of every
campaign:

:class:`FaultModel`
    The protocol: ``draw(rng, shape, iterations, dtype)`` returns the
    run's :class:`~repro.faults.injector.FaultPlan` list;
    ``draw_for_ranks`` extends a draw across a rank decomposition.
:class:`SingleBitFlip`
    The legacy paper model, refactored behind the protocol — its RNG
    consumption is byte-identical to the historical
    ``random_fault_plan`` loop, so existing campaign records stay
    bitwise reproducible.
:class:`MultiBitBurst`
    One upset event corrupting a spatial cluster of points in the same
    iteration (anchor + ``burst_size - 1`` neighbours within a
    Chebyshev ``spread``).
:class:`PoissonArrival`
    Arrivals of a memoryless process with the given MTBF (in
    iterations); registered as ``"mtbf"``.  A run may legitimately draw
    zero faults.  Across ranks the *system* MTBF is preserved: each of
    ``n`` ranks sees a per-rank MTBF of ``n * mtbf``.
:class:`RegionTargeted`
    Corruption aimed at a specific region: ``interior`` domain values,
    ``ghost`` slabs of a distributed rank, stored ``checksum`` vectors,
    or in-flight ``payload`` messages on the
    :class:`~repro.parallel.simmpi.SimChannel`.

Plans whose ``target`` is not ``"domain"`` need richer hooks than the
plain :class:`~repro.faults.injector.FaultInjector`:
:func:`make_injector` builds the right hook for a serial run (domain +
checksum targets), and :class:`DistributedFaultInjector` covers every
region on a :class:`~repro.parallel.simmpi.DistributedStencilRunner`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.bitflip import bit_width, flip_bit_in_array
from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    random_fault_plan,
    validate_plan_index,
)

__all__ = [
    "FaultModel",
    "SingleBitFlip",
    "MultiBitBurst",
    "PoissonArrival",
    "RegionTargeted",
    "RankCrash",
    "register_fault_model",
    "make_fault_model",
    "available_fault_models",
    "ChecksumInjector",
    "CompositeInjector",
    "make_injector",
    "DistributedFaultInjector",
]


# ---------------------------------------------------------------------------
# The model protocol
# ---------------------------------------------------------------------------
class FaultModel(ABC):
    """A distribution over per-run fault plans.

    Implementations are small frozen dataclasses: hashable (so campaign
    configurations that embed a model still compare/hash by value) and
    picklable (so they travel to process-pool campaign workers).
    """

    #: Registry name of the model (class attribute, not a dataclass field).
    name: str = "fault-model"

    @abstractmethod
    def draw(
        self,
        rng: np.random.Generator,
        shape: Sequence[int],
        iterations: int,
        dtype=np.float32,
    ) -> List[FaultPlan]:
        """Draw one run's fault plans (possibly an empty list)."""

    def draw_for_ranks(
        self,
        rng: np.random.Generator,
        shapes: Sequence[Sequence[int]],
        iterations: int,
        dtype=np.float32,
    ) -> List[List[FaultPlan]]:
        """One plan list per rank block (default: independent draws)."""
        return [
            self.draw(rng, shape, iterations, dtype=dtype) for shape in shapes
        ]


@dataclass(frozen=True)
class SingleBitFlip(FaultModel):
    """The paper's Section 5.1 model: uniform single bit flips.

    ``faults_per_run`` independent flips, each uniform over iteration,
    domain point and (unless ``bit`` pins it) bit position.  The draw
    consumes the RNG exactly like the legacy
    ``random_fault_plan``-per-fault loop, so campaigns keyed by seed
    reproduce their historical records bit for bit.
    """

    faults_per_run: int = 1
    bit: Optional[int] = None

    name = "bitflip"

    def __post_init__(self) -> None:
        if self.faults_per_run < 1:
            raise ValueError("faults_per_run must be >= 1")

    def draw(self, rng, shape, iterations, dtype=np.float32) -> List[FaultPlan]:
        return [
            random_fault_plan(rng, shape, iterations, dtype=dtype, bit=self.bit)
            for _ in range(self.faults_per_run)
        ]


@dataclass(frozen=True)
class MultiBitBurst(FaultModel):
    """One upset event corrupting a spatial cluster in a single iteration.

    An anchor flip is drawn exactly like :class:`SingleBitFlip`; the
    remaining ``burst_size - 1`` flips strike the same iteration at
    offsets within a Chebyshev radius of ``spread`` around the anchor
    (clipped to the domain), each with its own bit position.
    """

    burst_size: int = 3
    spread: int = 1
    bit: Optional[int] = None

    name = "burst"

    def __post_init__(self) -> None:
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.spread < 0:
            raise ValueError("spread must be >= 0")

    def draw(self, rng, shape, iterations, dtype=np.float32) -> List[FaultPlan]:
        anchor = random_fault_plan(
            rng, shape, iterations, dtype=dtype, bit=self.bit
        )
        plans = [anchor]
        for _ in range(self.burst_size - 1):
            index = tuple(
                min(max(i + int(rng.integers(-self.spread, self.spread + 1)), 0), n - 1)
                for i, n in zip(anchor.index, shape)
            )
            bit = self.bit
            if bit is None:
                bit = int(rng.integers(0, bit_width(dtype)))
            plans.append(
                FaultPlan(iteration=anchor.iteration, index=index, bit=bit)
            )
        return plans


@dataclass(frozen=True)
class PoissonArrival(FaultModel):
    """Memoryless fault arrivals with a mean time between faults (MTBF).

    Inter-arrival gaps are exponential with mean ``mtbf`` iterations;
    every arrival within the run strikes a uniform point and bit.  Runs
    shorter than the first gap draw **no** fault — the correct behaviour
    for an MTBF model, and one the campaign plumbing must support
    (records with an empty plan list).

    Across a rank decomposition the *system* MTBF is preserved: with
    ``n`` rank blocks each sees an independent arrival process of mean
    ``n * mtbf``, so the aggregate fault rate matches the single-block
    draw regardless of scale — the weak-scaling assumption of
    MTBF-driven campaigns.
    """

    mtbf: float = 64.0
    bit: Optional[int] = None

    name = "mtbf"

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ValueError("mtbf must be > 0 iterations")

    def draw(self, rng, shape, iterations, dtype=np.float32) -> List[FaultPlan]:
        plans: List[FaultPlan] = []
        t = float(rng.exponential(self.mtbf))
        while t < iterations:
            iteration = int(np.floor(t)) + 1
            index = tuple(int(rng.integers(0, n)) for n in shape)
            bit = self.bit
            if bit is None:
                bit = int(rng.integers(0, bit_width(dtype)))
            plans.append(FaultPlan(iteration=iteration, index=index, bit=bit))
            t += float(rng.exponential(self.mtbf))
        return plans

    def draw_for_ranks(
        self, rng, shapes, iterations, dtype=np.float32
    ) -> List[List[FaultPlan]]:
        n = max(1, len(shapes))
        scaled = PoissonArrival(mtbf=self.mtbf * n, bit=self.bit)
        return [
            scaled.draw(rng, shape, iterations, dtype=dtype) for shape in shapes
        ]


#: Checksum accumulation dtype the protectors default to; the checksum
#: region draws its bit positions over this width so flips can land in
#: the exponent/sign fields of the stored float64 vectors.
_CHECKSUM_DTYPE = np.float64


@dataclass(frozen=True)
class RegionTargeted(FaultModel):
    """Corruption aimed at a specific region of the machine state.

    ``region`` selects the target:

    ``"interior"``
        A domain value (equivalent to a single :class:`SingleBitFlip`).
    ``"checksum"``
        An element of the protector's *stored* checksum vector for
        ``axis`` — the metadata the duplicated-checksum self-check
        defends (see ``metadata_self_check`` on the protectors).
    ``"ghost"``
        A point of a just-ingested ghost slab (distributed runs only):
        ``axis``/side select the slab, the index addresses the slab's
        innermost layer.
    ``"payload"``
        An in-flight halo message on the
        :class:`~repro.parallel.simmpi.SimChannel`; ``index[0]`` is a
        draw the scheduler maps onto a flat payload offset.  ``action``
        chooses ``"corrupt"`` (bit flip, CRC-detected) or ``"drop"``.
    """

    region: str = "checksum"
    axis: int = 0
    bit: Optional[int] = None
    action: str = "corrupt"

    name = "region"

    REGIONS = ("interior", "ghost", "checksum", "payload")

    def __post_init__(self) -> None:
        if self.region not in self.REGIONS:
            raise ValueError(
                f"unknown region {self.region!r}; expected one of {self.REGIONS}"
            )
        if self.action not in ("corrupt", "drop"):
            raise ValueError(
                f"unknown action {self.action!r}; expected 'corrupt' or 'drop'"
            )

    def draw(self, rng, shape, iterations, dtype=np.float32) -> List[FaultPlan]:
        if iterations < 1:
            raise ValueError("need at least one iteration to inject into")
        shape = tuple(int(n) for n in shape)
        iteration = int(rng.integers(1, iterations + 1))
        if self.region == "interior":
            index = tuple(int(rng.integers(0, n)) for n in shape)
            bit = self.bit
            if bit is None:
                bit = int(rng.integers(0, bit_width(dtype)))
            return [FaultPlan(iteration=iteration, index=index, bit=bit)]
        if self.region == "checksum":
            # The stored checksum vector has the domain shape with the
            # reduced axis removed.
            cs_shape = tuple(
                n for ax, n in enumerate(shape) if ax != self.axis
            ) or (1,)
            index = tuple(int(rng.integers(0, n)) for n in cs_shape)
            bit = self.bit
            if bit is None:
                bit = int(rng.integers(0, bit_width(_CHECKSUM_DTYPE)))
            return [
                FaultPlan(
                    iteration=iteration,
                    index=index,
                    bit=bit,
                    target="checksum",
                    axis=self.axis,
                )
            ]
        if self.region == "ghost":
            slab_shape = tuple(
                1 if ax == self.axis else n for ax, n in enumerate(shape)
            )
            index = tuple(int(rng.integers(0, n)) for n in slab_shape)
            side = int(rng.integers(0, 2))
            bit = self.bit
            if bit is None:
                bit = int(rng.integers(0, bit_width(dtype)))
            return [
                FaultPlan(
                    iteration=iteration,
                    index=index,
                    bit=bit,
                    target="ghost",
                    axis=self.axis,
                    side=side,
                )
            ]
        # payload
        offset = int(rng.integers(0, max(1, int(np.prod(shape)))))
        side = int(rng.integers(0, 2))
        bit = self.bit
        if bit is None:
            bit = int(rng.integers(0, bit_width(dtype)))
        return [
            FaultPlan(
                iteration=iteration,
                index=(offset,),
                bit=bit,
                target="payload",
                axis=self.axis,
                side=side,
                action=self.action,
            )
        ]


@dataclass(frozen=True)
class RankCrash(FaultModel):
    """Fail-stop rank death for the distributed runner.

    Unlike every other model in this registry, a crash is not a silent
    corruption: the victim rank stops posting and answering messages at
    the start of the crash iteration, and the runner's buddy-checkpoint
    recovery must bring it back.  Deterministic experiments pin
    ``at_iteration`` and ``rank``; leaving either ``None`` draws it
    uniformly.  Setting ``mtbf`` instead samples the crash time from
    the same exponential arrival process as :class:`PoissonArrival`
    (one system-wide crash process — a run whose first arrival falls
    beyond the horizon legitimately crashes no rank, so campaigns see
    a realistic mix of disturbed and undisturbed runs).

    ``bitflips`` extra uniform SDC plans are mixed into the same draw,
    so one model covers the combined fail-stop + silent-fault scenario
    the recovery path must survive.
    """

    at_iteration: Optional[int] = None
    rank: Optional[int] = None
    mtbf: Optional[float] = None
    n_ranks: int = 4
    bitflips: int = 0
    bit: Optional[int] = None

    name = "rank-crash"

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError(
                "rank-crash needs n_ranks >= 2: a sole rank has no buddy "
                "to recover from"
            )
        if self.at_iteration is not None and self.at_iteration < 1:
            raise ValueError("crash iterations are 1-based; got < 1")
        if self.rank is not None and not 0 <= self.rank < self.n_ranks:
            raise ValueError(
                f"crash rank {self.rank} out of range for {self.n_ranks} ranks"
            )
        if self.mtbf is not None and not self.mtbf > 0:
            raise ValueError("mtbf must be > 0 iterations")
        if self.at_iteration is not None and self.mtbf is not None:
            raise ValueError("pin at_iteration or draw from mtbf, not both")
        if self.bitflips < 0:
            raise ValueError("bitflips must be >= 0")

    def _draw_crash(self, rng, iterations: int) -> Tuple[Optional[int], int]:
        """(crash iteration or None, victim rank) — fixed RNG order."""
        if self.at_iteration is not None:
            iteration: Optional[int] = int(self.at_iteration)
        elif self.mtbf is not None:
            t = float(rng.exponential(self.mtbf))
            iteration = int(np.floor(t)) + 1 if t < iterations else None
        else:
            iteration = int(rng.integers(1, iterations + 1))
        victim = self.rank
        if victim is None:
            victim = int(rng.integers(0, self.n_ranks))
        return iteration, int(victim)

    def draw(self, rng, shape, iterations, dtype=np.float32) -> List[FaultPlan]:
        if iterations < 1:
            raise ValueError("need at least one iteration to inject into")
        iteration, victim = self._draw_crash(rng, iterations)
        plans: List[FaultPlan] = []
        if iteration is not None:
            plans.append(
                FaultPlan(
                    iteration=iteration,
                    index=(),
                    bit=0,
                    target="crash",
                    rank=victim,
                )
            )
        for _ in range(self.bitflips):
            plans.append(
                random_fault_plan(rng, shape, iterations, dtype=dtype, bit=self.bit)
            )
        return plans

    def draw_for_ranks(
        self, rng, shapes, iterations, dtype=np.float32
    ) -> List[List[FaultPlan]]:
        n = len(shapes)
        if n != self.n_ranks:
            raise ValueError(
                f"model is configured for {self.n_ranks} ranks, runner has {n}"
            )
        iteration, victim = self._draw_crash(rng, iterations)
        per_rank: List[List[FaultPlan]] = [[] for _ in shapes]
        if iteration is not None:
            per_rank[victim].append(
                FaultPlan(
                    iteration=iteration,
                    index=(),
                    bit=0,
                    target="crash",
                    rank=victim,
                )
            )
        for _ in range(self.bitflips):
            r = int(rng.integers(0, n))
            per_rank[r].append(
                random_fault_plan(
                    rng, shapes[r], iterations, dtype=dtype, bit=self.bit
                )
            )
        return per_rank


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., FaultModel]] = {}


def register_fault_model(name: str, factory: Callable[..., FaultModel]) -> None:
    """Register a fault-model factory under ``name`` (e.g. for the CLI)."""
    _REGISTRY[str(name)] = factory


def make_fault_model(name: str, **kwargs) -> FaultModel:
    """Build a registered fault model by name with the given parameters."""
    factory = _REGISTRY.get(str(name))
    if factory is None:
        raise ValueError(
            f"unknown fault model {name!r}; available: "
            f"{', '.join(available_fault_models())}"
        )
    return factory(**kwargs)


def available_fault_models() -> List[str]:
    """Registered fault-model names, sorted."""
    return sorted(_REGISTRY)


def _region_factory(region: str) -> Callable[..., FaultModel]:
    def build(**kwargs) -> FaultModel:
        return RegionTargeted(region=region, **kwargs)

    return build


def _crash_mtbf_factory(**kwargs) -> FaultModel:
    kwargs.setdefault("mtbf", 64.0)
    return RankCrash(**kwargs)


register_fault_model("bitflip", SingleBitFlip)
register_fault_model("burst", MultiBitBurst)
register_fault_model("mtbf", PoissonArrival)
register_fault_model("region", RegionTargeted)
register_fault_model("region-checksum", _region_factory("checksum"))
register_fault_model("region-ghost", _region_factory("ghost"))
register_fault_model("region-payload", _region_factory("payload"))
register_fault_model("rank-crash", RankCrash)
register_fault_model("rank-crash-mtbf", _crash_mtbf_factory)


# ---------------------------------------------------------------------------
# Injection hooks beyond the plain domain injector
# ---------------------------------------------------------------------------
def _corrupt_stored_checksum(protector, plan: FaultPlan) -> None:
    """Flip a bit of the protector's *primary* stored checksum copy.

    Supports both protector families by duck-typing their metadata:
    the online protector's ``_prev_cs`` dict and the offline
    protector's ``_ckpt_checksum``.  Only the primary copy is struck —
    the self-check duplicate models independent storage, exactly the
    asymmetry the duplicated-checksum rule exploits.
    """
    prev_cs = getattr(protector, "_prev_cs", None)
    if prev_cs is not None:
        cs = prev_cs.get(plan.axis)
        if cs is None:
            axis = getattr(protector, "verify_axis", None)
            cs = prev_cs.get(axis) if axis is not None else None
        if cs is None:
            raise ValueError(
                f"no stored checksum to corrupt at iteration "
                f"{plan.iteration} (axis {plan.axis}); the online "
                f"protector only holds the verified axis between steps"
            )
        validate_plan_index(plan, cs.shape)
        flip_bit_in_array(cs, plan.index, plan.bit)
        return
    cs = getattr(protector, "_ckpt_checksum", None)
    if cs is not None:
        validate_plan_index(plan, cs.shape)
        flip_bit_in_array(cs, plan.index, plan.bit)
        return
    raise ValueError(
        f"protector {type(protector).__name__} holds no stored checksum "
        f"metadata to corrupt (checksum-targeted plans need an ABFT "
        f"protector)"
    )


class ChecksumInjector:
    """Step hook striking the protector's stored checksum metadata.

    Fires like :class:`~repro.faults.injector.FaultInjector` (once per
    plan, at the plan's iteration, with the ``(grid, iteration)`` hook
    signature) but corrupts the *protector state* instead of the domain
    — the threat the duplicated-checksum self-check exists for.
    """

    def __init__(self, plans: Sequence[FaultPlan], protector) -> None:
        self.plans: List[FaultPlan] = list(plans)
        for plan in self.plans:
            if plan.target != "checksum":
                raise ValueError(
                    f"ChecksumInjector only fires 'checksum' plans; got "
                    f"{plan.target!r}"
                )
        self.protector = protector
        self._fired = [False] * len(self.plans)

    def __call__(self, grid, iteration: int) -> None:
        self.inject(grid, iteration)

    def inject(self, grid, iteration: int) -> None:
        for i, plan in enumerate(self.plans):
            if self._fired[i] or plan.iteration != iteration:
                continue
            self._fired[i] = True
            _corrupt_stored_checksum(self.protector, plan)

    @property
    def fired_count(self) -> int:
        return sum(self._fired)

    def reset(self) -> None:
        self._fired = [False] * len(self.plans)


class CompositeInjector:
    """Fan a step's injection out to several target-specific hooks.

    Exposes the union ``plans`` list so schedulers that introspect a
    hook's pending plans (the offline protector's temporal-blocking
    eligibility, the distributed runner) keep working.
    """

    def __init__(self, hooks: Sequence) -> None:
        self.hooks = [h for h in hooks if h is not None]

    @property
    def plans(self) -> List[FaultPlan]:
        return [p for h in self.hooks for p in getattr(h, "plans", [])]

    @property
    def fired_count(self) -> int:
        return sum(getattr(h, "fired_count", 0) for h in self.hooks)

    def __call__(self, grid, iteration: int) -> None:
        for hook in self.hooks:
            hook(grid, iteration)

    def reset(self) -> None:
        for hook in self.hooks:
            reset = getattr(hook, "reset", None)
            if reset is not None:
                reset()


def make_injector(
    plans: Sequence[FaultPlan], protector=None
) -> Optional[Callable]:
    """Build the serial inject hook for a heterogeneous plan list.

    Domain plans fire through the classic
    :class:`~repro.faults.injector.FaultInjector`; checksum plans
    through a :class:`ChecksumInjector` bound to ``protector``.  Ghost
    and payload plans have no serial meaning (no halos, no messages)
    and raise immediately rather than silently not firing.  Returns
    ``None`` for an empty plan list — MTBF draws legitimately produce
    fault-free runs.
    """
    plans = list(plans)
    if not plans:
        return None
    domain = [p for p in plans if p.target == "domain"]
    checksum = [p for p in plans if p.target == "checksum"]
    other = [p for p in plans if p.target in ("ghost", "payload", "crash")]
    if other:
        raise ValueError(
            f"{other[0].target!r}-targeted plans require a distributed run "
            f"(use DistributedFaultInjector on a DistributedStencilRunner)"
        )
    if checksum and protector is None:
        raise ValueError(
            "checksum-targeted plans need the protector instance whose "
            "stored metadata they corrupt"
        )
    hooks: List = []
    if domain:
        hooks.append(FaultInjector(domain))
    if checksum:
        hooks.append(ChecksumInjector(checksum, protector))
    if len(hooks) == 1:
        return hooks[0]
    return CompositeInjector(hooks)


class DistributedFaultInjector:
    """Inject hook for the distributed runner covering every target region.

    Parameters
    ----------
    runner:
        The :class:`~repro.parallel.simmpi.DistributedStencilRunner`
        under attack.  Payload plans are armed on its channel at
        construction time (in-flight faults strike at *send* time, so
        they must be scheduled before the iteration's halo post).
    plans_by_rank:
        One plan list per rank, in rank order, with rank-local indices —
        e.g. the output of :meth:`FaultModel.draw_for_ranks` over
        ``[rank.shape for rank in runner.ranks]``.

    Notes
    -----
    The runner invokes the hook as ``inject(runner, iteration, rank)``
    after each rank's sweep (domain and checksum targets) and — when the
    hook exposes it — ``inject_ghosts(runner, iteration, rank)`` right
    after halo ingestion, before the sweep reads the ghost slabs.
    """

    def __init__(self, runner, plans_by_rank: Sequence[Sequence[FaultPlan]]) -> None:
        n_ranks = len(runner.ranks)
        if len(plans_by_rank) != n_ranks:
            raise ValueError(
                f"plans_by_rank has {len(plans_by_rank)} entries for "
                f"{n_ranks} ranks"
            )
        self.plans_by_rank: List[List[FaultPlan]] = [
            list(p) for p in plans_by_rank
        ]
        self._fired = {
            (r, i): False
            for r, rank_plans in enumerate(self.plans_by_rank)
            for i, _ in enumerate(rank_plans)
        }
        flat = self.plans
        self.has_crash_plans = any(p.target == "crash" for p in flat)
        if self.has_crash_plans:
            if n_ranks < 2:
                raise ValueError(
                    "crash plans need n_ranks >= 2: a sole rank has no "
                    "buddy checkpoint to recover from"
                )
            if any(p.target == "payload" for p in flat):
                raise ValueError(
                    "payload and crash plans cannot be combined: in-flight "
                    "faults address absolute send ordinals, which shift "
                    "when recovery replays the halo stream (combine "
                    "crashes with domain/checksum/ghost faults instead)"
                )
        self._schedule_payload_faults(runner)

    @classmethod
    def from_global(cls, runner, plans: Sequence[FaultPlan]) -> "DistributedFaultInjector":
        """Map global-domain (and crash) plans onto the owning ranks."""
        per_rank: List[List[FaultPlan]] = [[] for _ in runner.ranks]
        for plan in plans:
            if plan.target == "crash":
                # Crash plans carry their victim explicitly — there is no
                # global index to translate.
                r = plan.rank if plan.rank is not None else 0
                if not 0 <= r < len(per_rank):
                    raise ValueError(
                        f"crash victim rank {r} out of range for "
                        f"{len(per_rank)} ranks"
                    )
                per_rank[r].append(plan)
                continue
            if plan.target != "domain":
                raise ValueError(
                    "from_global only maps 'domain' and 'crash' plans; "
                    "draw other targets per rank with draw_for_ranks"
                )
            r, local = runner.rank_of_global_index(plan.index)
            per_rank[r].append(
                FaultPlan(iteration=plan.iteration, index=local, bit=plan.bit)
            )
        return cls(runner, per_rank)

    @property
    def plans(self) -> List[FaultPlan]:
        return [p for rank_plans in self.plans_by_rank for p in rank_plans]

    @property
    def fired_count(self) -> int:
        return sum(self._fired.values())

    # -- payload scheduling ---------------------------------------------------
    def _schedule_payload_faults(self, runner) -> None:
        """Translate payload plans into channel send ordinals.

        ``_post_halos`` sends in a fixed order — ranks ascending, low
        neighbour before high — so the n-th send of any iteration is
        fully determined by the topology.  A payload plan on rank ``r``
        with ``side`` 0/1 corrupts the strip *sent by* ``r`` to its
        low/high neighbour during the plan's iteration.
        """
        sends: List[Tuple[int, int]] = []  # (rank, side) in send order
        for rank in runner.ranks:
            if rank.lo_neighbor is not None:
                sends.append((rank.rank, 0))
            if rank.hi_neighbor is not None:
                sends.append((rank.rank, 1))
        per_iter = len(sends)
        for r, rank_plans in enumerate(self.plans_by_rank):
            for plan in rank_plans:
                if plan.target != "payload":
                    continue
                if per_iter == 0:
                    raise ValueError(
                        "payload plans need halo traffic, but this "
                        "topology exchanges no messages (single rank, "
                        "closed boundary?)"
                    )
                side = plan.side
                if (r, side) not in sends:
                    side = 1 - side  # edge rank: fall back to the live link
                if (r, side) not in sends:
                    raise ValueError(
                        f"rank {r} has no neighbours to send to; cannot "
                        f"place a payload fault"
                    )
                position = sends.index((r, side)) + 1
                ordinal = (plan.iteration - 1) * per_iter + position
                from repro.parallel.halo import strip_size

                payload_size = 1
                if runner.halo_width >= 1:
                    payload_size = strip_size(
                        runner.ranks[r].shape, runner.axis, runner.halo_width
                    )
                offset = plan.index[0] % max(1, payload_size)
                runner.channel.schedule_fault(
                    ordinal, action=plan.action, index=(offset,), bit=plan.bit
                )

    # -- hook entry points -----------------------------------------------------
    def __call__(self, runner, iteration: int, rank) -> None:
        """Post-sweep targets: domain values and stored checksums."""
        for i, plan in enumerate(self.plans_by_rank[rank.rank]):
            if self._fired[(rank.rank, i)] or plan.iteration != iteration:
                continue
            if plan.target == "domain":
                self._fired[(rank.rank, i)] = True
                validate_plan_index(plan, rank.shape)
                flip_bit_in_array(rank.interior, plan.index, plan.bit)
            elif plan.target == "checksum":
                self._fired[(rank.rank, i)] = True
                if rank.protector is None:
                    raise ValueError(
                        f"rank {rank.rank} is unprotected; checksum plans "
                        f"need a per-rank protector"
                    )
                _corrupt_stored_checksum(rank.protector, plan)
            elif plan.target == "payload":
                # Armed on the channel at construction; mark as consumed
                # once its iteration passes.
                self._fired[(rank.rank, i)] = True
            elif plan.target == "crash":
                # Fail-stop plans are delivered by apply_crashes at the
                # start of the iteration, never by the post-sweep hook.
                continue

    def apply_crashes(self, runner, iteration: int) -> None:
        """Deliver due fail-stop plans: the victim goes silent.

        Called by the runner at the *start* of ``iteration``, before any
        halo is posted: the struck :class:`~repro.parallel.simmpi.SimRank`
        stops posting and answering messages, and the channel marks the
        rank failed so the next liveness check (or recv on the dead
        link) raises :class:`~repro.parallel.simmpi.RankFailure`.
        """
        for r, rank_plans in enumerate(self.plans_by_rank):
            for i, plan in enumerate(rank_plans):
                if (
                    plan.target != "crash"
                    or self._fired[(r, i)]
                    or plan.iteration != iteration
                ):
                    continue
                self._fired[(r, i)] = True
                victim = plan.rank if plan.rank is not None else r
                runner.ranks[victim].alive = False
                runner.channel.mark_failed(victim)

    def rewind(self, iteration: int) -> None:
        """Re-arm SDC plans inside a rolled-back window (recovery replay).

        A transient *soft error* that struck after the restored
        checkpoint is part of the trajectory being replayed, so every
        non-crash plan with ``plan.iteration > iteration`` fires again —
        that is what keeps a recovered run bitwise-identical to the
        failure-free run under concurrent SDC injection.  Crash plans
        stay fired: a rebuilt rank does not re-die.
        """
        for (r, i), fired in self._fired.items():
            if not fired:
                continue
            plan = self.plans_by_rank[r][i]
            if plan.target == "crash":
                continue
            if plan.iteration > iteration:
                self._fired[(r, i)] = False

    def inject_ghosts(self, runner, iteration: int, rank) -> None:
        """Pre-sweep target: a just-ingested ghost slab of ``rank``."""
        from repro.parallel.halo import ghost_slab

        for i, plan in enumerate(self.plans_by_rank[rank.rank]):
            if self._fired[(rank.rank, i)] or plan.iteration != iteration:
                continue
            if plan.target != "ghost":
                continue
            self._fired[(rank.rank, i)] = True
            if runner.halo_width == 0:
                raise ValueError(
                    f"axis {runner.axis} exchanges no ghosts (radius 0); "
                    f"cannot place a ghost fault"
                )
            slab = ghost_slab(
                rank.buffers.front,
                runner.rank_radius,
                runner.axis,
                "low" if plan.side == 0 else "high",
            )
            index = tuple(
                min(i_, n - 1) for i_, n in zip(plan.index, slab.shape)
            )
            flip_bit_in_array(slab, index, plan.bit)

    def reset(self) -> None:
        for key in self._fired:
            self._fired[key] = False
