"""Generic N-dimensional stencil sweep.

Implements Equation (1) of the paper,

.. math::

    u^{(t+1)}_{x,y} = C_{x,y} + \\sum_{\\{i,j,w\\} \\in S} w \\cdot u^{(t)}_{x+i,y+j},

as a vectorised accumulation of shifted views over a ghost-padded array.
The padded form (:func:`sweep_padded`) is the primitive shared with the
parallel tile runner, which fills the ghost cells with halo data instead
of a closed boundary condition.

The actual arithmetic lives in the pluggable compute backends
(:mod:`repro.backends`); the functions here are thin dispatchers that
resolve the active backend and delegate, so every caller — grids,
protectors, the tiled runner, the baselines — picks up the selected
backend transparently.  :func:`sweep_with_checksums` exposes the fused
sweep+checksum primitive at the same level.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backends import ChecksumMap, get_backend
from repro.backends.registry import BackendLike
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import pad_array
from repro.stencil.spec import StencilSpec

__all__ = ["sweep_padded", "sweep", "sweep_into", "sweep_with_checksums"]


def sweep_padded(
    padded: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Apply one stencil sweep to a ghost-padded array.

    Parameters
    ----------
    padded:
        Domain surrounded by ghost cells (boundary condition or halo data
        already applied).
    spec:
        The stencil operator.
    radius:
        Ghost width of ``padded`` (scalar or per axis); must be at least
        the stencil radius on every axis.
    interior_shape:
        Shape of the interior domain to update.
    constant:
        Optional per-point constant term :math:`C` (same shape as the
        interior), e.g. a heat-source/power map.
    out:
        Optional pre-allocated output array (interior shape).
    backend:
        Compute backend name or instance (``None`` → active default).

    Returns
    -------
    numpy.ndarray
        The updated interior domain at step ``t+1``.
    """
    return get_backend(backend).sweep_padded(
        padded, spec, radius, interior_shape, constant=constant, out=out
    )


def sweep_into(
    src_padded: np.ndarray,
    dst_padded: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    constant: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """One sweep from one padded buffer into the interior of another.

    The zero-copy primitive of the double-buffered halo pipeline
    (:mod:`repro.stencil.doublebuffer`): no full-domain array is
    allocated; the new step is written into ``dst_padded``'s interior
    block and returned as a view.  Backends without an in-place kernel
    fall back to sweep-then-copy transparently.
    """
    return get_backend(backend).sweep_into(
        src_padded, dst_padded, spec, radius, interior_shape, constant=constant
    )


def sweep_with_checksums(
    padded: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    axes: Sequence[int],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    checksum_dtype: Optional[np.dtype] = None,
    backend: BackendLike = None,
) -> Tuple[np.ndarray, ChecksumMap]:
    """One sweep that also returns the checksum(s) of the new interior.

    This is the paper's fused kernel shape: the verified checksum is
    produced together with the sweep instead of by an independent pass.
    ``axes`` selects the reduction axes (0 → column checksum ``b``,
    1 → row checksum ``a``); the result is
    ``(new_interior, {axis: checksum_vector})``.
    """
    return get_backend(backend).sweep_with_checksums(
        padded,
        spec,
        radius,
        interior_shape,
        axes,
        constant=constant,
        out=out,
        checksum_dtype=checksum_dtype,
    )


def sweep(
    u: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """Apply one stencil sweep to an interior domain with a boundary condition.

    This is the closed-boundary convenience form: it pads ``u`` according
    to ``boundary`` and delegates to :func:`sweep_padded`.
    """
    if u.ndim != spec.ndim:
        raise ValueError(
            f"domain has {u.ndim} dimensions but stencil is {spec.ndim}D"
        )
    radius = spec.radius()
    padded = pad_array(u, radius, boundary)
    return sweep_padded(
        padded, spec, radius, u.shape, constant=constant, out=out, backend=backend
    )
