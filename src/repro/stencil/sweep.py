"""Generic N-dimensional stencil sweep.

Implements Equation (1) of the paper,

.. math::

    u^{(t+1)}_{x,y} = C_{x,y} + \\sum_{\\{i,j,w\\} \\in S} w \\cdot u^{(t)}_{x+i,y+j},

as a vectorised accumulation of shifted views over a ghost-padded array.
The padded form (:func:`sweep_padded`) is the primitive shared with the
parallel tile runner, which fills the ghost cells with halo data instead
of a closed boundary condition.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import normalize_radius, pad_array, shifted_view
from repro.stencil.spec import StencilSpec

__all__ = ["sweep_padded", "sweep"]


def sweep_padded(
    padded: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply one stencil sweep to a ghost-padded array.

    Parameters
    ----------
    padded:
        Domain surrounded by ghost cells (boundary condition or halo data
        already applied).
    spec:
        The stencil operator.
    radius:
        Ghost width of ``padded`` (scalar or per axis); must be at least
        the stencil radius on every axis.
    interior_shape:
        Shape of the interior domain to update.
    constant:
        Optional per-point constant term :math:`C` (same shape as the
        interior), e.g. a heat-source/power map.
    out:
        Optional pre-allocated output array (interior shape).

    Returns
    -------
    numpy.ndarray
        The updated interior domain at step ``t+1``.
    """
    interior_shape = tuple(int(n) for n in interior_shape)
    radius = normalize_radius(radius, padded.ndim)
    dtype = padded.dtype
    if out is None:
        out = np.zeros(interior_shape, dtype=dtype)
    else:
        if out.shape != interior_shape:
            raise ValueError(
                f"out has shape {out.shape}, expected {interior_shape}"
            )
        out[...] = 0
    if constant is not None:
        if constant.shape != interior_shape:
            raise ValueError(
                f"constant has shape {constant.shape}, expected {interior_shape}"
            )
        out += constant
    for offset, weight in spec:
        view = shifted_view(padded, offset, radius, interior_shape)
        # ``out += w * view`` without a temporary of full size would need
        # numexpr; the straightforward form is still a single fused pass
        # per stencil point, matching the paper's per-point cost model.
        out += np.asarray(weight, dtype=dtype) * view
    return out


def sweep(
    u: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply one stencil sweep to an interior domain with a boundary condition.

    This is the closed-boundary convenience form: it pads ``u`` according
    to ``boundary`` and delegates to :func:`sweep_padded`.
    """
    if u.ndim != spec.ndim:
        raise ValueError(
            f"domain has {u.ndim} dimensions but stencil is {spec.ndim}D"
        )
    radius = spec.radius()
    padded = pad_array(u, radius, boundary)
    return sweep_padded(padded, spec, radius, u.shape, constant=constant, out=out)
