"""Stencil computation substrate.

This subpackage implements the computational kernels the ABFT method
protects: arbitrary weighted stencils on regular 2D and 3D grids
(Equation (1) of the paper), with clamp ("bounce-back"), periodic,
constant-value and zero ("empty") boundary conditions.

The implementation is split into small modules:

``spec``
    :class:`StencilSpec` — the set of stencil points ``{(i, j[, k], w)}``.
``boundary``
    :class:`BoundaryCondition` / :class:`BoundarySpec` — per-axis
    boundary behaviour and the mapping onto ghost-cell padding.
``shift``
    Ghost-cell padding, the in-place ``refresh_ghosts`` halo refresh and
    shifted-view helpers shared by the sweep and by the ABFT checksum
    interpolation.
``doublebuffer``
    :class:`DoubleBufferedGrid` — the persistent padded buffer pair that
    removes the per-iteration full-domain copy (optionally backed by
    ``multiprocessing.shared_memory`` for the process-pool executor).
``sweep``
    The generic N-dimensional padded sweep operator (plus the fused
    ``sweep_with_checksums`` and zero-copy ``sweep_into`` primitives).
    All dispatch to the pluggable compute backends of
    :mod:`repro.backends`.
``sweep2d`` / ``sweep3d``
    Dimension-checked convenience wrappers.
``reference``
    Deliberately naive loop implementations used as test oracles.
``grid``
    :class:`Grid2D` / :class:`Grid3D` — double-buffered domain state.
``kernels``
    A library of named stencils (Jacobi, 5/9-point, 7/27-point, ...).
"""

from repro.stencil.spec import StencilPoint, StencilSpec
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import (
    interior_slices,
    pad_array,
    padded_shape,
    refresh_ghosts,
    shifted_view,
)
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.sweep import sweep_padded, sweep, sweep_into, sweep_with_checksums
from repro.stencil.sweep2d import sweep2d
from repro.stencil.sweep3d import sweep3d
from repro.stencil.grid import Grid2D, Grid3D, GridBase
from repro.stencil import kernels

__all__ = [
    "StencilPoint",
    "StencilSpec",
    "BoundaryCondition",
    "BoundarySpec",
    "pad_array",
    "padded_shape",
    "refresh_ghosts",
    "shifted_view",
    "interior_slices",
    "DoubleBufferedGrid",
    "sweep_padded",
    "sweep",
    "sweep_into",
    "sweep_with_checksums",
    "sweep2d",
    "sweep3d",
    "Grid2D",
    "Grid3D",
    "GridBase",
    "kernels",
]
