"""Double-buffered stencil domain state.

A :class:`GridBase` bundles the domain array, the stencil operator, the
boundary specification and the optional constant term, and advances the
computation one sweep at a time while keeping the *previous* step alive.

Keeping the previous step is essential for the ABFT scheme: the checksum
interpolation of Theorem 1 predicts the step-``t+1`` checksums from the
step-``t`` checksums **and** a thin strip of step-``t`` boundary values
(the α/β terms), so the protector reads ``grid.previous_padded`` after
every sweep.

Storage is a persistent padded buffer pair
(:class:`~repro.stencil.doublebuffer.DoubleBufferedGrid`): each sweep
refreshes only the ghost cells of the front buffer in place and writes
the new interior straight into the back buffer through the backend's
``sweep_into`` primitive, then the pair swaps.  No full-domain copy is
made per iteration.  Consequences callers must respect:

* ``grid.u``, ``grid.previous`` and ``grid.previous_padded`` are views
  into the pair.  ``previous``/``previous_padded`` stay valid until the
  *next* call to ``step`` (which reuses their buffer as the sweep
  target); the protectors read them immediately after each sweep, which
  is exactly the window the pair guarantees.
* In-place mutations of ``grid.u`` (ABFT corrections, injected faults)
  are picked up by the next sweep automatically — the ghost refresh
  re-reads the interior every step.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backends import Backend, ChecksumMap, get_backend
from repro.backends.registry import BackendLike
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.doublebuffer import DoubleBufferedGrid
from repro.stencil.spec import StencilSpec

__all__ = ["GridBase", "Grid2D", "Grid3D", "GridSnapshot"]


class GridSnapshot:
    """Deep copy of a grid's mutable state (used by checkpointing)."""

    __slots__ = ("u", "iteration")

    def __init__(self, u: np.ndarray, iteration: int) -> None:
        self.u = u.copy()
        self.iteration = int(iteration)

    def nbytes(self) -> int:
        """Approximate memory footprint of the snapshot in bytes."""
        return int(self.u.nbytes)


class GridBase:
    """Double-buffered stencil domain.

    Parameters
    ----------
    initial:
        Initial domain values.  Always copied into the grid's persistent
        padded buffer pair; the caller's array is never aliased.
    spec:
        The stencil operator applied at every step.
    boundary:
        Boundary condition(s) (anything accepted by
        :meth:`BoundarySpec.from_any`).
    constant:
        Optional per-point constant term :math:`C` added at every sweep
        (heat source, power map, ...). Same shape as the domain.
    copy:
        Kept for API compatibility; the buffer pair always copies
        ``initial``, so this flag has no aliasing effect any more.
    backend:
        Compute backend executing the sweeps: a registry name, a
        :class:`~repro.backends.base.Backend` instance, or ``None`` to
        track the process default (``REPRO_BACKEND`` / ``--backend``).
    """

    expected_ndim: Optional[int] = None

    def __init__(
        self,
        initial: np.ndarray,
        spec: StencilSpec,
        boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
        constant: Optional[np.ndarray] = None,
        copy: bool = True,
        backend: BackendLike = None,
    ) -> None:
        u = np.asarray(initial)
        if self.expected_ndim is not None and u.ndim != self.expected_ndim:
            raise ValueError(
                f"{type(self).__name__} expects a {self.expected_ndim}D domain, "
                f"got shape {u.shape}"
            )
        if spec.ndim != u.ndim:
            raise ValueError(
                f"stencil is {spec.ndim}D but domain has {u.ndim} dimensions"
            )
        if not np.issubdtype(u.dtype, np.floating):
            u = u.astype(np.float32)
        self.spec = spec
        self.boundary = BoundarySpec.from_any(boundary, u.ndim)
        if constant is not None:
            constant = np.asarray(constant, dtype=u.dtype)
            if constant.shape != u.shape:
                raise ValueError(
                    f"constant term has shape {constant.shape}, domain has {u.shape}"
                )
        self.constant = constant
        self.radius = spec.radius()
        self.iteration = 0
        self.backend_spec = backend
        #: The persistent padded buffer pair backing this grid.
        self.buffers = DoubleBufferedGrid(u, self.radius, self.boundary)
        #: Interior domain at the current step (a view into the pair).
        self.u = self.buffers.interior
        self._previous: Optional[np.ndarray] = None
        self._previous_padded: Optional[np.ndarray] = None
        #: Checksums produced by the last fused step (``None`` after a
        #: plain :meth:`step`).
        self.last_checksums: Optional[ChecksumMap] = None

    # -- basic accessors ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.u.shape

    @property
    def dtype(self) -> np.dtype:
        return self.u.dtype

    @property
    def ndim(self) -> int:
        return self.u.ndim

    @property
    def size(self) -> int:
        return int(self.u.size)

    @property
    def previous(self) -> Optional[np.ndarray]:
        """Interior domain at the previous step (``None`` before step 1)."""
        return self._previous

    @property
    def previous_padded(self) -> Optional[np.ndarray]:
        """Ghost-padded domain at the previous step (``None`` before step 1)."""
        return self._previous_padded

    @property
    def backend(self) -> Backend:
        """The resolved compute backend.

        Resolved on every access so a grid built with ``backend=None``
        follows later :func:`~repro.backends.set_default_backend` /
        ``--backend`` changes.
        """
        return get_backend(self.backend_spec)

    # -- stepping -----------------------------------------------------------
    def padded_current(self) -> np.ndarray:
        """The persistent front buffer with its ghost cells refreshed.

        This is a live view of the grid's storage, not a copy: the
        interior block *is* ``grid.u``.  Mutating the returned array
        mutates the grid.
        """
        return self.buffers.refresh()

    @property
    def back_padded(self) -> np.ndarray:
        """The padded back buffer the next sweep will write into."""
        return self.buffers.back

    def share_buffers(self) -> Tuple[str, str]:
        """Migrate the buffer pair into shared memory; returns block names.

        Used by the process-pool tile executor so worker processes can
        attach the domain by name.  All live views (``u``, ``previous``,
        ``previous_padded``) are rebound to the shared blocks.
        """
        names = self.buffers.share()
        self.u = self.buffers.interior
        self._previous = None
        self._previous_padded = None
        return names

    def close_buffers(self) -> None:
        """Release shared-memory buffers (contents survive on the heap)."""
        if not self.buffers.is_shared:
            return
        self._previous = None
        self._previous_padded = None
        self.u = None  # drop the shm view before the block is closed
        self.buffers.close()
        self.u = self.buffers.interior

    def step(
        self, padded: Optional[np.ndarray] = None, backend: BackendLike = None
    ) -> np.ndarray:
        """Advance one stencil sweep and return the new domain.

        The sweep writes the new interior directly into the back buffer;
        no full-domain allocation is made.  When the grid reads its own
        front buffer (``padded=None``) the whole iteration — ghost
        refresh included — is delegated to the backend through
        :meth:`DoubleBufferedGrid.step`, so a backend that fuses the
        refresh into its compiled sweep performs the step in a single
        traversal of the pair.

        Parameters
        ----------
        padded:
            Optional pre-built padded array (used by the parallel tile
            runner, where ghost cells carry halo data from neighbouring
            tiles instead of a closed boundary condition). When omitted
            the grid refreshes and reads its own front buffer.
        backend:
            Optional backend override for this step only (``None`` →
            the grid's own backend).
        """
        be = self.backend if backend is None else get_backend(backend)
        if padded is None:
            padded, new, _ = self.buffers.step(
                be, self.spec, constant=self.constant
            )
        else:
            new = be.sweep_into(
                padded,
                self.buffers.back,
                self.spec,
                self.radius,
                self.shape,
                constant=self.constant,
            )
        self._commit(padded, None)
        return new

    def step_with_checksums(
        self,
        axes: Sequence[int],
        checksum_dtype: Optional[np.dtype] = None,
        padded: Optional[np.ndarray] = None,
        backend: BackendLike = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Advance one sweep and return the new domain plus its checksums.

        Delegates to the backend's fused sweep+checksum primitive, so the
        verified checksum is produced by the sweep itself (the paper's
        fused kernel) instead of a separate pass.  The checksums are also
        stored in :attr:`last_checksums`.  As with :meth:`step`, a grid
        reading its own front buffer hands the *whole* iteration (ghost
        refresh, sweep and checksums) to the backend in one call.

        Parameters
        ----------
        axes:
            Reduction axes to checksum (subset of ``(0, 1)``).
        checksum_dtype:
            Accumulation dtype of the checksums (``None`` → domain dtype).
        padded, backend:
            As for :meth:`step`.
        """
        be = self.backend if backend is None else get_backend(backend)
        if padded is None:
            padded, new, checksums = self.buffers.step(
                be,
                self.spec,
                constant=self.constant,
                axes=axes,
                checksum_dtype=checksum_dtype,
            )
        else:
            new, checksums = be.sweep_into_with_checksums(
                padded,
                self.buffers.back,
                self.spec,
                self.radius,
                self.shape,
                axes,
                constant=self.constant,
                checksum_dtype=checksum_dtype,
            )
        self._commit(padded, checksums)
        return new, checksums

    def multi_step(
        self, k: int, backend: BackendLike = None
    ) -> np.ndarray:
        """Advance ``k`` fused sweeps in one blocked traversal (no checksums).

        The unverified variant of :meth:`multi_step_with_checksums`;
        see there for the blocking semantics and bookkeeping.
        """
        k = int(k)
        if k < 1:
            raise ValueError(f"block steps must be >= 1, got {k}")
        if k == 1:
            return self.step(backend=backend)
        be = self.backend if backend is None else get_backend(backend)
        prev_padded, new, _ = self.buffers.multi_step(
            be, self.spec, k, constant=self.constant
        )
        self._commit_blocked(prev_padded, k, None)
        return new

    def multi_step_with_checksums(
        self,
        k: int,
        axes: Sequence[int],
        checksum_dtype: Optional[np.dtype] = None,
        backend: BackendLike = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        """Advance ``k`` fused sweeps in one blocked traversal (+ checksums).

        The temporal-blocking fast path: the backend's
        ``multi_step_into_with_checksums`` primitive ping-pongs the
        buffer pair through k sub-steps without surfacing intermediate
        states, folding the row/column checksums only on the final
        sub-step — so the returned domain and checksums are bit-identical
        to ``k`` calls of :meth:`step` with :meth:`step_with_checksums`
        last, at one traversal per window instead of per step.

        Intermediate interiors are genuinely never materialised:
        afterwards :attr:`previous` / :attr:`previous_padded` hold step
        ``t+k-1`` (the only intermediate state a protector needs for
        Theorem-1 interpolation at the window boundary) and
        :attr:`iteration` advances by ``k``.
        """
        k = int(k)
        if k < 1:
            raise ValueError(f"block steps must be >= 1, got {k}")
        if k == 1:
            return self.step_with_checksums(
                axes, checksum_dtype=checksum_dtype, backend=backend
            )
        be = self.backend if backend is None else get_backend(backend)
        prev_padded, new, checksums = self.buffers.multi_step(
            be,
            self.spec,
            k,
            constant=self.constant,
            axes=axes,
            checksum_dtype=checksum_dtype,
        )
        self._commit_blocked(prev_padded, k, checksums)
        return new, checksums

    def _commit_blocked(
        self,
        prev_padded: np.ndarray,
        k: int,
        checksums: Optional[ChecksumMap],
    ) -> None:
        """Bookkeeping after a blocked window.

        The pair was already parity-swapped by ``buffers.multi_step``
        (front = step ``t+k``, back = step ``t+k-1`` with a refreshed
        halo), so this records the previous views and advances the
        iteration counter by ``k`` without touching the buffers.
        """
        from repro.stencil.shift import interior_view

        self._previous = interior_view(prev_padded, self.buffers.radius)
        self._previous_padded = prev_padded
        self.u = self.buffers.interior
        self.iteration += k
        self.last_checksums = checksums

    def _commit(
        self,
        padded_src: np.ndarray,
        checksums: Optional[ChecksumMap],
    ) -> None:
        """Swap the buffer pair after a sweep into the back buffer.

        ``padded_src`` is the padded array the sweep read (the front
        buffer, or an externally halo-filled array); it becomes
        :attr:`previous_padded` and stays valid until the next step
        reclaims its buffer as the sweep target.
        """
        self._previous = self.u
        self._previous_padded = padded_src
        self.buffers.swap()
        self.u = self.buffers.interior
        self.iteration += 1
        self.last_checksums = checksums

    def run(self, iterations: int) -> np.ndarray:
        """Advance ``iterations`` sweeps and return the final domain."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        for _ in range(iterations):
            self.step()
        return self.u

    # -- snapshot / restore ---------------------------------------------------
    def snapshot(self) -> GridSnapshot:
        """Deep copy of the current state (for checkpointing)."""
        return GridSnapshot(self.u, self.iteration)

    def restore(self, snap: GridSnapshot) -> None:
        """Restore a previously taken snapshot (rollback recovery).

        The snapshot is written into the front buffer's interior in
        place, so ``grid.u`` remains a view into the buffer pair.
        """
        if snap.u.shape != self.u.shape:
            raise ValueError(
                f"snapshot shape {snap.u.shape} does not match domain {self.u.shape}"
            )
        self.buffers.load(snap.u)
        self.u = self.buffers.interior
        self.iteration = snap.iteration
        self._previous = None
        self._previous_padded = None
        self.last_checksums = None

    def copy(self) -> "GridBase":
        """Independent deep copy of this grid."""
        clone = type(self)(
            self.u,
            self.spec,
            self.boundary,
            constant=None if self.constant is None else self.constant.copy(),
            copy=True,
            backend=self.backend_spec,
        )
        clone.iteration = self.iteration
        return clone

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shape={self.shape}, dtype={self.dtype}, "
            f"iteration={self.iteration}, k={self.spec.npoints})"
        )


class Grid2D(GridBase):
    """A 2D stencil domain of shape ``(nx, ny)``, indexed ``u[x, y]``."""

    expected_ndim = 2

    @property
    def nx(self) -> int:
        return self.u.shape[0]

    @property
    def ny(self) -> int:
        return self.u.shape[1]


class Grid3D(GridBase):
    """A 3D stencil domain of shape ``(nx, ny, nz)``, indexed ``u[x, y, z]``.

    The third axis is the "layer" axis: the paper's evaluation tiles are
    ``512x512x8`` / ``64x64x8``, i.e. 8 layers, each protected by its own
    pair of checksum vectors.
    """

    expected_ndim = 3

    @property
    def nx(self) -> int:
        return self.u.shape[0]

    @property
    def ny(self) -> int:
        return self.u.shape[1]

    @property
    def nz(self) -> int:
        return self.u.shape[2]

    def layer(self, z: int) -> np.ndarray:
        """View of layer ``z`` (shape ``(nx, ny)``)."""
        return self.u[:, :, z]
