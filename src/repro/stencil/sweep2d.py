"""Dimension-checked 2D stencil sweep."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backends.registry import BackendLike
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep

__all__ = ["sweep2d"]


def sweep2d(
    u: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """One sweep of a 2D stencil over a 2D domain.

    Equivalent to the kernel of Figure 2 in the paper (for the five-point
    case) but valid for any :class:`~repro.stencil.spec.StencilSpec`.

    This one-shot form pads a fresh copy of ``u`` per call; iterative
    callers should prefer :class:`~repro.stencil.grid.Grid2D`, whose
    persistent buffer pair sweeps in place with no full-domain copy.

    Parameters
    ----------
    u:
        Domain of shape ``(nx, ny)``; indexed ``u[x, y]``.
    spec:
        A 2D stencil.
    boundary:
        Boundary condition(s).
    constant:
        Optional per-point constant term of shape ``(nx, ny)``.
    out:
        Optional output array.
    backend:
        Compute backend name or instance (``None`` → active default).
    """
    if u.ndim != 2:
        raise ValueError(f"sweep2d expects a 2D array, got shape {u.shape}")
    if spec.ndim != 2:
        raise ValueError(f"sweep2d expects a 2D stencil, got {spec.ndim}D")
    return sweep(u, spec, boundary, constant=constant, out=out, backend=backend)
