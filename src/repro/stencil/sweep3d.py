"""Dimension-checked 3D stencil sweep."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backends.registry import BackendLike
from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.spec import StencilSpec
from repro.stencil.sweep import sweep

__all__ = ["sweep3d"]


def sweep3d(
    u: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    constant: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    backend: BackendLike = None,
) -> np.ndarray:
    """One sweep of a 3D stencil over a 3D domain.

    This one-shot form pads a fresh copy of ``u`` per call; iterative
    callers should prefer :class:`~repro.stencil.grid.Grid3D`, whose
    persistent buffer pair sweeps in place with no full-domain copy.

    Parameters
    ----------
    u:
        Domain of shape ``(nx, ny, nz)``; indexed ``u[x, y, z]``. The z
        axis is the "layer" axis used by the per-layer ABFT application
        (the paper's tiles are ``512x512x8``, i.e. 8 layers).
    spec:
        A 3D stencil (e.g. the HotSpot3D seven-point kernel).
    boundary:
        Boundary condition(s).
    constant:
        Optional per-point constant term of shape ``(nx, ny, nz)``.
    out:
        Optional output array.
    backend:
        Compute backend name or instance (``None`` → active default).
    """
    if u.ndim != 3:
        raise ValueError(f"sweep3d expects a 3D array, got shape {u.shape}")
    if spec.ndim != 3:
        raise ValueError(f"sweep3d expects a 3D stencil, got {spec.ndim}D")
    return sweep(u, spec, boundary, constant=constant, out=out, backend=backend)
