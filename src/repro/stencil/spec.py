"""Stencil specification.

A stencil is a set of points ``{(i, j[, k], w)}`` — relative offsets and
weight coefficients — applied uniformly to every point of the domain
(Equation (1) of the paper):

.. math::

    u^{(t+1)}_{x,y} = C_{x,y} + \\sum_{\\{i,j,w\\} \\in S} w \\cdot u^{(t)}_{x+i, y+j}

The optional constant term :math:`C_{x,y}` (e.g. a localized heat source,
or the power map of HotSpot3D) is *not* part of the spec; it is passed to
the sweep separately because it is a property of the domain, not of the
operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = ["StencilPoint", "StencilSpec"]


@dataclass(frozen=True)
class StencilPoint:
    """A single stencil point: relative offset + weight.

    Parameters
    ----------
    offset:
        Relative coordinates ``(i, j)`` for 2D stencils or ``(i, j, k)``
        for 3D stencils (one integer per array axis, in axis order).
    weight:
        Weight coefficient of this point. Weights are individual per
        point and may take arbitrary values (including negative).
    """

    offset: Tuple[int, ...]
    weight: float

    def __post_init__(self) -> None:
        offset = tuple(int(o) for o in self.offset)
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "weight", float(self.weight))
        if len(offset) not in (1, 2, 3):
            raise ValueError(
                f"stencil offsets must have 1, 2 or 3 components, got {offset!r}"
            )

    @property
    def ndim(self) -> int:
        return len(self.offset)


class StencilSpec:
    """An arbitrary stencil operator: a finite set of weighted offsets.

    Parameters
    ----------
    points:
        Iterable of :class:`StencilPoint` or ``(offset_tuple, weight)``
        pairs. Duplicate offsets are merged by summing their weights.

    Notes
    -----
    The class is immutable after construction. Offsets and weights are
    exposed as NumPy arrays (``offsets`` with shape ``(k, ndim)`` and
    ``weights`` with shape ``(k,)``) for vectorised consumption by the
    sweep and by the checksum interpolation.
    """

    def __init__(self, points: Iterable) -> None:
        merged: Dict[Tuple[int, ...], float] = {}
        ndim = None
        for p in points:
            if isinstance(p, StencilPoint):
                offset, weight = p.offset, p.weight
            else:
                offset, weight = p
                offset = tuple(int(o) for o in offset)
                weight = float(weight)
            if ndim is None:
                ndim = len(offset)
            elif len(offset) != ndim:
                raise ValueError(
                    "all stencil points must have the same dimensionality; "
                    f"got offsets of length {ndim} and {len(offset)}"
                )
            merged[offset] = merged.get(offset, 0.0) + weight
        if not merged:
            raise ValueError("a stencil needs at least one point")
        if ndim not in (2, 3):
            raise ValueError(f"only 2D and 3D stencils are supported, got ndim={ndim}")

        # Deterministic ordering (lexicographic on offsets) so that sweeps
        # and checksum interpolation accumulate terms in the same order,
        # which keeps floating-point round-off reproducible run to run.
        items = sorted(merged.items())
        self._offsets = np.array([o for o, _ in items], dtype=np.int64)
        self._weights = np.array([w for _, w in items], dtype=np.float64)
        self._ndim = ndim

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_dict(cls, weights: Dict[Tuple[int, ...], float]) -> "StencilSpec":
        """Build a spec from an ``{offset: weight}`` mapping."""
        return cls(list(weights.items()))

    @classmethod
    def five_point(
        cls,
        center: float,
        west: float,
        east: float,
        north: float,
        south: float,
    ) -> "StencilSpec":
        """2D five-point stencil (the kernel of Figure 2 in the paper).

        ``west``/``east`` are offsets along the first axis (x) and
        ``north``/``south`` along the second axis (y).
        """
        return cls.from_dict(
            {
                (0, 0): center,
                (-1, 0): west,
                (1, 0): east,
                (0, -1): north,
                (0, 1): south,
            }
        )

    @classmethod
    def four_point_average(cls) -> "StencilSpec":
        """The 2D 4-point averaging stencil used as the paper's example."""
        return cls.from_dict(
            {(0, -1): 0.25, (-1, 0): 0.25, (1, 0): 0.25, (0, 1): 0.25}
        )

    @classmethod
    def nine_point(cls, weights: Sequence[float]) -> "StencilSpec":
        """2D nine-point (Moore neighbourhood) stencil.

        ``weights`` must contain nine coefficients in row-major offset
        order ``(-1,-1), (-1,0), (-1,1), (0,-1), (0,0), (0,1), (1,-1),
        (1,0), (1,1)``.
        """
        weights = [float(w) for w in weights]
        if len(weights) != 9:
            raise ValueError(f"nine_point needs 9 weights, got {len(weights)}")
        offsets = [(i, j) for i in (-1, 0, 1) for j in (-1, 0, 1)]
        return cls(list(zip(offsets, weights)))

    @classmethod
    def seven_point_3d(
        cls,
        center: float,
        west: float,
        east: float,
        north: float,
        south: float,
        below: float,
        above: float,
    ) -> "StencilSpec":
        """3D seven-point stencil (the HotSpot3D kernel shape)."""
        return cls.from_dict(
            {
                (0, 0, 0): center,
                (-1, 0, 0): west,
                (1, 0, 0): east,
                (0, -1, 0): north,
                (0, 1, 0): south,
                (0, 0, -1): below,
                (0, 0, 1): above,
            }
        )

    # -- accessors ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Dimensionality of the stencil (2 or 3)."""
        return self._ndim

    @property
    def offsets(self) -> np.ndarray:
        """Integer offsets, shape ``(k, ndim)``."""
        return self._offsets

    @property
    def weights(self) -> np.ndarray:
        """Weight coefficients, shape ``(k,)``."""
        return self._weights

    @property
    def npoints(self) -> int:
        """Number of stencil points ``k = |S|``."""
        return len(self._weights)

    def points(self) -> Tuple[StencilPoint, ...]:
        """The stencil as a tuple of :class:`StencilPoint`."""
        return tuple(
            StencilPoint(tuple(int(v) for v in o), float(w))
            for o, w in zip(self._offsets, self._weights)
        )

    def weight_of(self, offset: Tuple[int, ...]) -> float:
        """Weight at ``offset`` (0.0 if the offset is not in the stencil)."""
        offset = tuple(int(o) for o in offset)
        for o, w in zip(self._offsets, self._weights):
            if tuple(int(v) for v in o) == offset:
                return float(w)
        return 0.0

    # -- canonical identity --------------------------------------------------
    def signature(self) -> str:
        """Canonical string identity of the operator.

        Offsets are already in deterministic lexicographic order and the
        weights are rendered with :meth:`float.hex`, so two specs have
        the same signature iff they are bit-identical operators.  The
        kernel compiler (:mod:`repro.backends.codegen`) uses this as the
        spec component of its on-disk cache keys, which is what lets
        worker processes load a previously compiled artifact instead of
        recompiling.
        """
        pts = ";".join(
            f"{','.join(str(int(v)) for v in o)}:{float(w).hex()}"
            for o, w in zip(self._offsets, self._weights)
        )
        return f"stencil{self._ndim}d[{pts}]"

    def offsets_signature(self) -> str:
        """Signature of the offset *structure* only (weights excluded).

        Generated kernels receive the weight vector as a runtime
        argument, so specs that differ only in coefficients share one
        compiled kernel; this is the structural part the compiler keys
        on.
        """
        pts = ";".join(
            ",".join(str(int(v)) for v in o) for o in self._offsets
        )
        return f"offsets{self._ndim}d[{pts}]"

    # -- derived properties -------------------------------------------------
    def radius(self) -> Tuple[int, ...]:
        """Maximum absolute offset per axis (ghost-cell width needed)."""
        return tuple(int(r) for r in np.abs(self._offsets).max(axis=0))

    def max_radius(self) -> int:
        return int(max(self.radius()))

    def weight_sum(self) -> float:
        """Sum of all weights (1.0 for an averaging stencil)."""
        return float(self._weights.sum())

    def abs_weight_sum(self) -> float:
        """Sum of absolute weights (amplification bound used by thresholds)."""
        return float(np.abs(self._weights).sum())

    def is_axis_symmetric(self, axis: int) -> bool:
        """``True`` iff the stencil is mirror-symmetric along ``axis``.

        Mirror symmetry along the reduction axis is the condition under
        which the α/β boundary-correction terms of Theorem 1 cancel for
        clamp (bounce-back) boundaries; see
        :mod:`repro.core.interpolation`.
        """
        table = {tuple(int(v) for v in o): float(w)
                 for o, w in zip(self._offsets, self._weights)}
        for offset, weight in table.items():
            mirrored = list(offset)
            mirrored[axis] = -mirrored[axis]
            if abs(table.get(tuple(mirrored), 0.0) - weight) > 1e-15:
                return False
        return True

    def is_fully_symmetric(self) -> bool:
        """``True`` iff the stencil is mirror-symmetric along every axis."""
        return all(self.is_axis_symmetric(a) for a in range(self._ndim))

    def scaled(self, factor: float) -> "StencilSpec":
        """A new spec with every weight multiplied by ``factor``."""
        return StencilSpec(
            [
                (tuple(int(v) for v in o), float(w) * factor)
                for o, w in zip(self._offsets, self._weights)
            ]
        )

    # -- dunder -------------------------------------------------------------
    def __len__(self) -> int:
        return self.npoints

    def __iter__(self):
        for o, w in zip(self._offsets, self._weights):
            yield tuple(int(v) for v in o), float(w)

    def __eq__(self, other) -> bool:
        if not isinstance(other, StencilSpec):
            return NotImplemented
        return (
            self._ndim == other._ndim
            and np.array_equal(self._offsets, other._offsets)
            and np.allclose(self._weights, other._weights, rtol=0.0, atol=0.0)
        )

    def __hash__(self) -> int:
        return hash(
            (self._ndim, self._offsets.tobytes(), self._weights.tobytes())
        )

    def __repr__(self) -> str:
        pts = ", ".join(f"{tuple(int(v) for v in o)}: {w:g}"
                        for o, w in zip(self._offsets, self._weights))
        return f"StencilSpec({{{pts}}})"
