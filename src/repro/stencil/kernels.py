"""A library of named stencil operators.

These are the stencils used throughout the examples, tests and
benchmarks. They cover the application classes the paper's introduction
motivates (Jacobi/heat diffusion, image smoothing, advection) plus the
HotSpot3D kernel shape used in the evaluation.
"""

from __future__ import annotations

from repro.stencil.spec import StencilSpec

__all__ = [
    "jacobi4",
    "five_point_diffusion",
    "nine_point_smoothing",
    "asymmetric_advection_2d",
    "seven_point_diffusion_3d",
    "twenty_seven_point_3d",
    "asymmetric_advection_3d",
    "named_stencil",
]


def jacobi4() -> StencilSpec:
    """2D 4-point Jacobi averaging stencil (the paper's Section 3.1 example)."""
    return StencilSpec.four_point_average()


def five_point_diffusion(alpha: float = 0.1) -> StencilSpec:
    """Explicit 2D heat-diffusion stencil ``u + alpha * laplacian(u)``.

    Stable for ``alpha <= 0.25``.
    """
    if not 0.0 < alpha <= 0.25:
        raise ValueError(f"alpha must be in (0, 0.25], got {alpha}")
    return StencilSpec.five_point(
        center=1.0 - 4.0 * alpha, west=alpha, east=alpha, north=alpha, south=alpha
    )


def nine_point_smoothing() -> StencilSpec:
    """2D 9-point Gaussian-like smoothing kernel (image processing)."""
    w_center, w_edge, w_corner = 4.0 / 16.0, 2.0 / 16.0, 1.0 / 16.0
    return StencilSpec.nine_point(
        [
            w_corner, w_edge, w_corner,
            w_edge, w_center, w_edge,
            w_corner, w_edge, w_corner,
        ]
    )


def asymmetric_advection_2d(cx: float = 0.2, cy: float = 0.1) -> StencilSpec:
    """Upwind advection stencil with *asymmetric* weights.

    Used to exercise the exact α/β boundary-correction terms of
    Theorem 1: with clamp boundaries the correction terms of an
    asymmetric stencil do **not** cancel, so a simplified interpolation
    (Equations 8-9) would raise false positives.
    """
    return StencilSpec.from_dict(
        {
            (0, 0): 1.0 - cx - cy,
            (-1, 0): cx,
            (0, -1): cy,
        }
    )


def seven_point_diffusion_3d(alpha: float = 0.1) -> StencilSpec:
    """Explicit 3D heat-diffusion stencil (7-point)."""
    if not 0.0 < alpha <= 1.0 / 6.0:
        raise ValueError(f"alpha must be in (0, 1/6], got {alpha}")
    return StencilSpec.seven_point_3d(
        center=1.0 - 6.0 * alpha,
        west=alpha, east=alpha, north=alpha, south=alpha,
        below=alpha, above=alpha,
    )


def twenty_seven_point_3d() -> StencilSpec:
    """3D 27-point averaging stencil (dense Moore neighbourhood)."""
    w = 1.0 / 27.0
    points = {}
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            for k in (-1, 0, 1):
                points[(i, j, k)] = w
    return StencilSpec.from_dict(points)


def asymmetric_advection_3d(cx: float = 0.15, cy: float = 0.1, cz: float = 0.05) -> StencilSpec:
    """3D upwind advection stencil with asymmetric weights."""
    return StencilSpec.from_dict(
        {
            (0, 0, 0): 1.0 - cx - cy - cz,
            (-1, 0, 0): cx,
            (0, -1, 0): cy,
            (0, 0, -1): cz,
        }
    )


_REGISTRY = {
    "jacobi4": jacobi4,
    "five_point_diffusion": five_point_diffusion,
    "nine_point_smoothing": nine_point_smoothing,
    "asymmetric_advection_2d": asymmetric_advection_2d,
    "seven_point_diffusion_3d": seven_point_diffusion_3d,
    "twenty_seven_point_3d": twenty_seven_point_3d,
    "asymmetric_advection_3d": asymmetric_advection_3d,
}


def named_stencil(name: str, **kwargs) -> StencilSpec:
    """Build one of the registered stencils by name.

    >>> named_stencil("jacobi4").npoints
    4
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stencil {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)
