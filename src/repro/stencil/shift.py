"""Ghost-cell padding and shifted views.

Every boundary condition is realised by surrounding the domain with a
halo of ghost cells (:func:`pad_array`). Once the padded array exists,
both the stencil sweep and the ABFT checksum interpolation reduce to
pure array shifts (:func:`shifted_view`) with no per-point branching —
the same trick the paper's C implementation uses with clamped index
arithmetic, but in vectorised form.

The same padded representation is reused by the parallel tile runner
(:mod:`repro.parallel`), where ghost cells are filled with halo data
received from neighbouring tiles instead of being synthesised from a
closed boundary condition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec

__all__ = [
    "normalize_radius",
    "padded_shape",
    "pad_array",
    "refresh_ghosts",
    "shifted_view",
    "interior_slices",
    "interior_view",
]


def normalize_radius(radius, ndim: int) -> Tuple[int, ...]:
    """Coerce a scalar or per-axis radius into a per-axis tuple."""
    if np.isscalar(radius):
        radius = tuple(int(radius) for _ in range(ndim))
    else:
        radius = tuple(int(r) for r in radius)
    if len(radius) != ndim:
        raise ValueError(f"expected {ndim} radii, got {len(radius)}")
    if any(r < 0 for r in radius):
        raise ValueError(f"radii must be non-negative, got {radius}")
    return radius


def padded_shape(interior_shape: Sequence[int], radius) -> Tuple[int, ...]:
    """Shape of the ghost-padded array for a given interior shape."""
    interior_shape = tuple(int(n) for n in interior_shape)
    radius = normalize_radius(radius, len(interior_shape))
    return tuple(n + 2 * r for n, r in zip(interior_shape, radius))


def pad_array(
    u: np.ndarray,
    radius,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
) -> np.ndarray:
    """Surround ``u`` with ghost cells realising the boundary condition.

    Parameters
    ----------
    u:
        Interior domain array.
    radius:
        Ghost-cell width, scalar or per-axis.
    boundary:
        Boundary specification (coerced with :meth:`BoundarySpec.from_any`).

    Returns
    -------
    numpy.ndarray
        New array of shape ``u.shape + 2 * radius`` (per axis). The
        interior block is a copy of ``u``; the halo encodes the boundary
        condition (edge-replication for clamp, wrap-around for periodic,
        a fill value for constant/zero).
    """
    radius = normalize_radius(radius, u.ndim)
    bspec = BoundarySpec.from_any(boundary, u.ndim)
    padded = u
    # Pad one axis at a time so that each axis can use a different numpy
    # pad mode. Later axes see the already-padded earlier axes, which is
    # the correct corner behaviour for separable ghost filling (corners
    # get "clamp of clamp", "wrap of constant", etc.).
    for axis in range(u.ndim):
        r = radius[axis]
        if r == 0:
            continue
        bc = bspec.axis(axis)
        pad_width = [(0, 0)] * padded.ndim
        pad_width[axis] = (r, r)
        if bc.is_clamp:
            padded = np.pad(padded, pad_width, mode="edge")
        elif bc.is_periodic:
            padded = np.pad(padded, pad_width, mode="wrap")
        else:
            padded = np.pad(
                padded, pad_width, mode="constant",
                constant_values=bc.fill_value(),
            )
    if padded is u:
        padded = u.copy()
    return padded


def refresh_ghosts(
    padded: np.ndarray,
    radius,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    axes: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Re-fill the ghost cells of an existing padded array, in place.

    This is the zero-allocation counterpart of :func:`pad_array`: instead
    of building a fresh padded copy of the interior, it rewrites only the
    halo of ``padded`` from its (possibly updated) interior block.  The
    double-buffered grids call it once per sweep, turning the former
    full-domain copy into an ``O(boundary surface)`` touch-up.

    The fill order and region semantics replicate ``pad_array`` exactly —
    axis by axis, where axis ``k``'s slabs span the already-refreshed
    ghost range of axes ``< k`` but only the interior range of axes
    ``> k``, so corners are owned by the highest axis — which makes the
    result bit-identical to a fresh :func:`pad_array` of the interior for
    every boundary kind.

    ``axes`` restricts the refresh to a subset of axes: the ghost slabs
    of every other axis are treated as *externally managed* — left
    untouched, and spanned as if they were interior by the refreshed
    axes' slabs.  That is the distributed-runner contract: a rank's
    halo slabs along the distributed axis are filled by message
    ingestion, and refreshing the remaining axes afterwards reproduces
    the ghost corners ``pad_array`` would have built over the
    halo-extended block (the externally managed axis behaves exactly
    like a zero-radius axis).

    Returns ``padded`` (the same object) for chaining.
    """
    radius = normalize_radius(radius, padded.ndim)
    if axes is not None:
        keep = {int(a) for a in axes}
        if not keep.issubset(range(padded.ndim)):
            raise ValueError(
                f"refresh axes {sorted(keep)} out of range for a "
                f"{padded.ndim}D array"
            )
        # An externally managed axis is equivalent to a zero-radius one:
        # its slabs are never written, and later axes span its full
        # extent (halo included) — the pad_array corner semantics for a
        # pre-extended axis.
        radius = tuple(
            r if axis in keep else 0 for axis, r in enumerate(radius)
        )
    bspec = BoundarySpec.from_any(boundary, padded.ndim)
    ndim = padded.ndim
    for axis in range(ndim):
        r = radius[axis]
        n = padded.shape[axis] - 2 * r
        if n < 0:
            raise ValueError(
                f"padded extent {padded.shape[axis]} smaller than ghost "
                f"width 2*{r} along axis {axis}"
            )
        if bspec.axis(axis).is_periodic and r > n:
            # Degenerate wrap (ghost wider than the interior): the in-place
            # slab fill below would read half-written ghosts. np.pad's
            # tiling semantics still apply, so take the allocating path
            # once — correctness over speed for this corner case.
            padded[...] = pad_array(
                interior_view(padded, radius).copy(), radius, bspec
            )
            return padded
    for axis in range(ndim):
        r = radius[axis]
        if r == 0:
            continue
        bc = bspec.axis(axis)
        n = padded.shape[axis] - 2 * r
        base: list = []
        for ax2 in range(ndim):
            if ax2 < axis:
                base.append(slice(None))
            elif ax2 == axis:
                base.append(slice(None))  # replaced per slab below
            else:
                r2 = radius[ax2]
                base.append(
                    slice(r2, padded.shape[ax2] - r2) if r2 else slice(None)
                )

        def slab(sl: slice) -> np.ndarray:
            s = list(base)
            s[axis] = sl
            return padded[tuple(s)]

        low, high = slice(0, r), slice(r + n, 2 * r + n)
        if bc.is_clamp:
            slab(low)[...] = slab(slice(r, r + 1))
            slab(high)[...] = slab(slice(r + n - 1, r + n))
        elif bc.is_periodic:
            # Ghost and source ranges are disjoint because r <= n.
            slab(low)[...] = slab(slice(n, n + r))
            slab(high)[...] = slab(slice(r, 2 * r))
        else:
            fill = bc.fill_value()
            slab(low)[...] = fill
            slab(high)[...] = fill
    return padded


def interior_slices(radius, ndim: int) -> Tuple[slice, ...]:
    """Slices selecting the interior block of a padded array."""
    radius = normalize_radius(radius, ndim)
    return tuple(slice(r, None if r == 0 else -r) for r in radius)


def interior_view(padded: np.ndarray, radius) -> np.ndarray:
    """View of the interior block of a padded array."""
    return padded[interior_slices(radius, padded.ndim)]


def shifted_view(
    padded: np.ndarray,
    offset: Sequence[int],
    radius,
    interior_shape: Sequence[int],
) -> np.ndarray:
    """View of the padded array shifted by ``offset``.

    The returned view ``v`` satisfies ``v[x, y, ...] ==
    padded[x + offset[0] + radius[0], y + offset[1] + radius[1], ...]``,
    i.e. it is the array of neighbour values ``u[x + i, y + j, ...]`` for
    every interior point, with the boundary condition already applied via
    the ghost cells.

    Parameters
    ----------
    padded:
        Array produced by :func:`pad_array` (or by halo exchange).
    offset:
        Per-axis stencil offset ``(i, j[, k])``.
    radius:
        Ghost width used to build ``padded``.
    interior_shape:
        Shape of the interior domain.
    """
    ndim = padded.ndim
    radius = normalize_radius(radius, ndim)
    offset = tuple(int(o) for o in offset)
    if len(offset) != ndim:
        raise ValueError(f"offset has {len(offset)} components, array has {ndim}")
    slices = []
    for axis in range(ndim):
        o, r, n = offset[axis], radius[axis], int(interior_shape[axis])
        if abs(o) > r:
            raise ValueError(
                f"offset {o} exceeds ghost radius {r} along axis {axis}"
            )
        start = r + o
        slices.append(slice(start, start + n))
    return padded[tuple(slices)]
