"""Naive reference sweeps used as test oracles.

These implementations follow the paper's pseudo-code (Figure 2) literally
— explicit Python loops, per-point boundary-index resolution — and are
intentionally slow. They exist solely to validate the vectorised sweeps
and the checksum interpolation on small domains.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.spec import StencilSpec

__all__ = ["resolve_index", "reference_sweep2d", "reference_sweep3d", "reference_sweep"]


def resolve_index(idx: int, n: int, bc: BoundaryCondition):
    """Resolve a possibly out-of-range index according to a boundary condition.

    Returns either an in-range integer index or ``None`` when the access
    should produce the boundary fill value (constant/zero boundaries).
    """
    if 0 <= idx < n:
        return idx
    if bc.is_clamp:
        return min(max(idx, 0), n - 1)
    if bc.is_periodic:
        return idx % n
    return None


def _neighbor_value(u: np.ndarray, coords, bspec: BoundarySpec) -> float:
    resolved = []
    for axis, idx in enumerate(coords):
        bc = bspec.axis(axis)
        r = resolve_index(idx, u.shape[axis], bc)
        if r is None:
            return bc.fill_value()
        resolved.append(r)
    return float(u[tuple(resolved)])


def reference_sweep(
    u: np.ndarray,
    spec: StencilSpec,
    boundary,
    constant: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Loop-based sweep for arbitrary 2D/3D stencils (test oracle)."""
    bspec = BoundarySpec.from_any(boundary, u.ndim)
    out = np.zeros_like(u, dtype=u.dtype)
    points = list(spec)
    for index in np.ndindex(*u.shape):
        acc = 0.0
        if constant is not None:
            acc += float(constant[index])
        for offset, weight in points:
            coords = tuple(index[a] + offset[a] for a in range(u.ndim))
            acc += weight * _neighbor_value(u, coords, bspec)
        out[index] = acc
    return out


def reference_sweep2d(
    u: np.ndarray,
    spec: StencilSpec,
    boundary,
    constant: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Loop-based 2D sweep (test oracle)."""
    if u.ndim != 2:
        raise ValueError("reference_sweep2d expects a 2D array")
    return reference_sweep(u, spec, boundary, constant=constant)


def reference_sweep3d(
    u: np.ndarray,
    spec: StencilSpec,
    boundary,
    constant: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Loop-based 3D sweep (test oracle)."""
    if u.ndim != 3:
        raise ValueError("reference_sweep3d expects a 3D array")
    return reference_sweep(u, spec, boundary, constant=constant)


def reference_row_checksum(u: np.ndarray) -> np.ndarray:
    """Row checksum a_x = sum_y u[x, y] computed with explicit loops."""
    if u.ndim != 2:
        raise ValueError("reference_row_checksum expects a 2D array")
    nx, ny = u.shape
    a = np.zeros(nx, dtype=u.dtype)
    for x in range(nx):
        s = 0.0
        for y in range(ny):
            s += float(u[x, y])
        a[x] = s
    return a


def reference_column_checksum(u: np.ndarray) -> np.ndarray:
    """Column checksum b_y = sum_x u[x, y] computed with explicit loops."""
    if u.ndim != 2:
        raise ValueError("reference_column_checksum expects a 2D array")
    nx, ny = u.shape
    b = np.zeros(ny, dtype=u.dtype)
    for y in range(ny):
        s = 0.0
        for x in range(nx):
            s += float(u[x, y])
        b[y] = s
    return b
