"""Persistent double-buffered padded storage for stencil domains.

Historically every sweep paid for one full-domain copy: ``pad_array``
allocated a fresh padded array, copied the interior into it and filled
the halo.  :class:`DoubleBufferedGrid` removes that copy from the hot
path by keeping *two* persistent padded buffers:

* the **front** buffer holds the current domain; before a sweep only its
  ghost cells are re-filled in place (:func:`~repro.stencil.shift.refresh_ghosts`,
  an ``O(boundary surface)`` operation);
* the sweep writes the new interior straight into the **back** buffer
  (via :meth:`repro.backends.base.Backend.sweep_into`);
* the pair then swaps, so the buffer that held step ``t`` becomes the
  scratch target for step ``t+2``.

:meth:`DoubleBufferedGrid.step` drives both stages through the
backend's ``step_into*`` primitives in one call, so a backend that owns
its own ghost refresh (e.g. the numba JIT backend) can perform the
whole protected iteration — refresh, sweep and per-point checksums —
in a single compiled traversal of the pair.

The previous step therefore stays alive exactly one iteration — long
enough for the ABFT protectors, which read ``grid.previous_padded``
immediately after each sweep, and no longer.

For the process-pool tile executor the pair can be migrated into
``multiprocessing.shared_memory`` (:meth:`DoubleBufferedGrid.share`):
worker processes then attach the same physical pages by name and the
halo pipeline crosses process boundaries without copying the domain.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import (
    interior_view,
    normalize_radius,
    padded_shape,
    refresh_ghosts,
)

__all__ = ["GridLayout", "DoubleBufferedGrid"]


@dataclass(frozen=True)
class GridLayout:
    """Structural description of a padded buffer's ghost layout.

    This is the layout half of a kernel specialization: per-axis ghost
    width, per-axis boundary *kind* and which axes are externally
    managed (their slabs are filled by halo ingestion, never by the
    refresh).  Fill *values* for constant/zero boundaries are runtime
    kernel arguments, not part of the layout — layouts differing only
    in the fill value share one compiled kernel.

    Parameters
    ----------
    radius:
        Per-axis ghost width of the padded buffers.
    kinds:
        Per-axis boundary kind: ``"clamp"``, ``"periodic"``, ``"fill"``
        (covers both ``constant`` and ``zero``) or ``"external"``.
    fills:
        Per-axis ghost fill values (0.0 for non-``fill`` axes).
    """

    radius: Tuple[int, ...]
    kinds: Tuple[str, ...]
    fills: Tuple[float, ...]

    @property
    def ndim(self) -> int:
        return len(self.radius)

    @property
    def external_axes(self) -> Tuple[int, ...]:
        return tuple(
            a for a, kind in enumerate(self.kinds) if kind == "external"
        )

    @classmethod
    def from_args(
        cls,
        radius,
        boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
        ndim: int,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> "GridLayout":
        """Build a layout from ``step_into``-style arguments.

        Axes outside ``refresh_axes`` (``None`` → all axes refresh) are
        marked ``"external"`` regardless of their boundary condition,
        mirroring :func:`repro.stencil.shift.refresh_ghosts`.
        """
        radius = normalize_radius(radius, ndim)
        bspec = BoundarySpec.from_any(boundary, ndim)
        keep = None if refresh_axes is None else {int(a) for a in refresh_axes}
        kinds = []
        fills = []
        for axis, bc in enumerate(bspec):
            if keep is not None and axis not in keep:
                kinds.append("external")
                fills.append(0.0)
            elif bc.is_clamp:
                kinds.append("clamp")
                fills.append(0.0)
            elif bc.is_periodic:
                kinds.append("periodic")
                fills.append(0.0)
            else:
                kinds.append("fill")
                fills.append(float(bc.fill_value()))
        return cls(tuple(radius), tuple(kinds), tuple(fills))

    def signature(self) -> str:
        """Canonical structural identity (fill values excluded)."""
        axes = ";".join(
            f"{r}:{kind}" for r, kind in zip(self.radius, self.kinds)
        )
        return f"layout{self.ndim}d[{axes}]"


def _release_shared(blocks) -> None:
    """Close and unlink the shared-memory blocks backing a buffer pair."""
    for shm in blocks:
        try:
            # Raises BufferError while numpy views are still alive; the
            # resource tracker then reclaims the block at process exit.
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # already released elsewhere
            pass


class DoubleBufferedGrid:
    """A pair of persistent ghost-padded buffers for one stencil domain.

    Parameters
    ----------
    initial:
        Interior domain values (always copied into the front buffer).
    radius:
        Ghost width, scalar or per axis.
    boundary:
        Boundary specification used by :meth:`refresh`.
    dtype:
        Buffer dtype (``None`` → dtype of ``initial``).
    shared:
        Allocate the pair in ``multiprocessing.shared_memory`` straight
        away (equivalent to calling :meth:`share` after construction).
    external_axes:
        Axes whose ghost slabs are *externally managed*: :meth:`refresh`
        and :meth:`step` never touch them, leaving whatever a halo
        exchange wrote there in place, while the remaining axes keep
        refreshing from ``boundary`` (their slabs span the external
        halo like interior, so ghost corners match what ``pad_array``
        would build over the halo-extended block).  This is how the
        distributed runner gives each rank a persistent buffer pair:
        the distributed axis is external, its front-buffer slabs are
        filled by message ingestion before every step.
    """

    def __init__(
        self,
        initial: np.ndarray,
        radius,
        boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
        dtype=None,
        shared: bool = False,
        external_axes: Sequence[int] = (),
    ) -> None:
        initial = np.asarray(initial)
        self.radius = normalize_radius(radius, initial.ndim)
        self.boundary = BoundarySpec.from_any(boundary, initial.ndim)
        self.external_axes = tuple(sorted({int(a) for a in external_axes}))
        if any(a < 0 or a >= initial.ndim for a in self.external_axes):
            raise ValueError(
                f"external_axes {self.external_axes} out of range for a "
                f"{initial.ndim}D domain"
            )
        #: Axes the per-step ghost refresh owns (``None`` → all of them).
        self.refresh_axes = (
            tuple(a for a in range(initial.ndim) if a not in self.external_axes)
            if self.external_axes
            else None
        )
        self.interior_shape = initial.shape
        self.padded_shape = padded_shape(initial.shape, self.radius)
        self.dtype = np.dtype(dtype) if dtype is not None else initial.dtype
        self._shm_blocks: Tuple = ()
        self._shm_names: Optional[Tuple[str, str]] = None
        self._finalizer = None
        self._front = np.zeros(self.padded_shape, dtype=self.dtype)
        self._back = np.zeros(self.padded_shape, dtype=self.dtype)
        interior_view(self._front, self.radius)[...] = initial
        if shared:
            self.share()

    # -- accessors ----------------------------------------------------------
    @property
    def front(self) -> np.ndarray:
        """The padded buffer holding the current step."""
        return self._front

    @property
    def back(self) -> np.ndarray:
        """The padded scratch buffer the next sweep writes into."""
        return self._back

    @property
    def interior(self) -> np.ndarray:
        """View of the current interior domain (front buffer)."""
        return interior_view(self._front, self.radius)

    @property
    def back_interior(self) -> np.ndarray:
        """View of the back buffer's interior (the next sweep's target)."""
        return interior_view(self._back, self.radius)

    def nbytes(self) -> int:
        """Total footprint of the pair in bytes."""
        return int(self._front.nbytes + self._back.nbytes)

    @property
    def layout(self) -> GridLayout:
        """The pair's :class:`GridLayout` (the kernel-compiler cache key)."""
        return GridLayout.from_args(
            self.radius,
            self.boundary,
            len(self.interior_shape),
            refresh_axes=self.refresh_axes,
        )

    # -- the per-step lifecycle ---------------------------------------------
    def refresh(self) -> np.ndarray:
        """Re-fill the front buffer's ghost cells in place; returns it.

        Called once per sweep, immediately before the buffer is read, so
        that interior mutations since the last step (ABFT corrections,
        injected faults) are reflected in the halo.  Externally managed
        axes (``external_axes``) are skipped — their slabs hold halo
        data the caller ingested.
        """
        return refresh_ghosts(
            self._front, self.radius, self.boundary, axes=self.refresh_axes
        )

    def step(
        self,
        backend,
        spec,
        constant: Optional[np.ndarray] = None,
        axes: Optional[Sequence[int]] = None,
        checksum_dtype=None,
    ):
        """One backend-owned sweep of the pair: refresh + sweep (+ checksums).

        This is the fast path of the per-step lifecycle: the whole
        iteration — ghost refresh of the front buffer, sweep into the
        back buffer and (with ``axes``) per-axis checksum accumulation —
        is delegated to the backend's ``step_into`` /
        ``step_into_with_checksums`` primitive.  A backend that fuses
        the refresh into its compiled sweep (``supports_fused_step``)
        therefore performs the entire protected iteration in a single
        traversal of the pair; every other backend transparently gets
        the classic :meth:`refresh`-then-``sweep_into`` sequence from
        the base-class implementation.  Either way the front buffer's
        halo is consistent with its interior afterwards — the ABFT
        protectors read it as ``previous_padded``.

        The pair is **not** swapped: callers (``GridBase._commit``)
        own the swap so previous-step bookkeeping stays in one place.

        Returns ``(src_padded, new_interior, checksums)`` where
        ``checksums`` is ``None`` when ``axes`` is ``None``.
        """
        if axes is None:
            new = backend.step_into(
                self._front,
                self._back,
                spec,
                self.radius,
                self.interior_shape,
                self.boundary,
                constant=constant,
                refresh_axes=self.refresh_axes,
            )
            return self._front, new, None
        new, checksums = backend.step_into_with_checksums(
            self._front,
            self._back,
            spec,
            self.radius,
            self.interior_shape,
            self.boundary,
            axes,
            constant=constant,
            checksum_dtype=checksum_dtype,
            refresh_axes=self.refresh_axes,
        )
        return self._front, new, checksums

    def multi_step(
        self,
        backend,
        spec,
        k: int,
        constant: Optional[np.ndarray] = None,
        axes: Optional[Sequence[int]] = None,
        checksum_dtype=None,
    ):
        """``k`` backend-owned fused steps of the pair (temporal blocking).

        Delegates to the backend's ``multi_step_into*`` primitive: the
        sub-steps ping-pong between the two buffers without surfacing
        intermediate states, and (with ``axes``) checksums are folded
        only on the final sub-step — the checksum carry.  External-axis
        halos must have been ingested to a depth of at least
        ``k * stencil_radius`` before the call.

        Unlike :meth:`step`, the pair **is** swapped here when ``k`` is
        odd — the ping-pong parity would otherwise leave the final state
        in the back buffer — so on return ``front`` always holds step
        ``t+k`` and ``back`` holds step ``t+k-1`` with a refreshed halo
        (the blocked analogue of the previous padded step the ABFT
        protectors read).

        Returns ``(previous_padded, new_interior, checksums)`` where
        ``previous_padded`` is the back buffer after the parity swap and
        ``checksums`` is ``None`` when ``axes`` is ``None``.
        """
        k = int(k)
        if axes is None:
            backend.multi_step_into(
                self._front,
                self._back,
                k,
                spec,
                self.radius,
                self.interior_shape,
                self.boundary,
                constant=constant,
                refresh_axes=self.refresh_axes,
            )
            checksums = None
        else:
            _, checksums = backend.multi_step_into_with_checksums(
                self._front,
                self._back,
                k,
                spec,
                self.radius,
                self.interior_shape,
                self.boundary,
                axes,
                constant=constant,
                checksum_dtype=checksum_dtype,
                refresh_axes=self.refresh_axes,
            )
        if k % 2 == 1:
            self.swap()
        return self._back, self.interior, checksums

    def swap(self) -> None:
        """Exchange front and back (the freshly swept back becomes current)."""
        self._front, self._back = self._back, self._front
        if self._shm_names is not None:
            self._shm_names = (self._shm_names[1], self._shm_names[0])

    def load(self, u: np.ndarray) -> None:
        """Overwrite the front interior with ``u`` (snapshot restore)."""
        u = np.asarray(u)
        if u.shape != self.interior_shape:
            raise ValueError(
                f"expected interior shape {self.interior_shape}, got {u.shape}"
            )
        interior_view(self._front, self.radius)[...] = u

    # -- checkpointing --------------------------------------------------------
    def snapshot_interior(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Contiguous copy of the front interior (the checkpoint payload).

        Only the interior is captured: every ghost slab of the pair is
        rebuilt before it is next read — locally managed axes by the
        per-step :meth:`refresh`, externally managed axes by the next
        halo ingest — so snapshotting the interior alone is sufficient
        to restore the pair bit-for-bit via :meth:`restore_interior`.
        Passing a preallocated ``out`` keeps steady-state checkpointing
        allocation-free.
        """
        interior = self.interior
        if out is None:
            return interior.copy()
        if out.shape != interior.shape or out.dtype != interior.dtype:
            raise ValueError(
                f"checkpoint buffer mismatch: expected {interior.shape} "
                f"{interior.dtype}, got {out.shape} {out.dtype}"
            )
        out[...] = interior
        return out

    def restore_interior(self, u: np.ndarray) -> None:
        """Restore the pair from a :meth:`snapshot_interior` payload.

        The back buffer needs no restore: the next sweep overwrites it
        entirely before anything reads it, so rolling the front interior
        back is enough for bitwise-identical replay.
        """
        self.load(u)

    # -- shared-memory migration --------------------------------------------
    @property
    def is_shared(self) -> bool:
        """Whether the pair lives in ``multiprocessing.shared_memory``."""
        return self._shm_names is not None

    @property
    def shm_names(self) -> Optional[Tuple[str, str]]:
        """``(front_name, back_name)`` shared-memory block names, if shared.

        The names track :meth:`swap`, so ``shm_names[0]`` always refers
        to the block currently holding the front buffer.
        """
        return self._shm_names

    def share(self) -> Tuple[str, str]:
        """Migrate the pair into shared memory (idempotent).

        The current contents are copied across once; afterwards the
        front/back views alias the shared blocks, so every later sweep,
        correction and ghost refresh happens directly in memory that
        worker processes can attach by name.
        """
        if self._shm_names is not None:
            return self._shm_names
        from multiprocessing import shared_memory

        nbytes = int(
            np.prod(self.padded_shape, dtype=np.int64) * self.dtype.itemsize
        )
        blocks = []
        arrays = []
        for source in (self._front, self._back):
            shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
            arr = np.ndarray(self.padded_shape, dtype=self.dtype, buffer=shm.buf)
            arr[...] = source
            blocks.append(shm)
            arrays.append(arr)
        self._front, self._back = arrays
        self._shm_blocks = tuple(blocks)
        self._shm_names = (blocks[0].name, blocks[1].name)
        # Unlink happens at gc/interpreter exit even if close() is never
        # called explicitly, so tests and crashed runs do not leak blocks.
        self._finalizer = weakref.finalize(self, _release_shared, self._shm_blocks)
        return self._shm_names

    def close(self) -> None:
        """Release the shared-memory blocks (no-op for heap buffers).

        The buffer contents are preserved: the pair is copied back onto
        the ordinary heap before the blocks are unlinked, so a grid can
        keep stepping after its executor is shut down.
        """
        if self._shm_names is None:
            return
        self._front = self._front.copy()
        self._back = self._back.copy()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release_shared(self._shm_blocks)
        self._shm_blocks = ()
        self._shm_names = None

    def __repr__(self) -> str:
        kind = "shared" if self.is_shared else "heap"
        ext = (
            f", external_axes={self.external_axes}" if self.external_axes else ""
        )
        return (
            f"DoubleBufferedGrid(interior={self.interior_shape}, "
            f"radius={self.radius}, {kind}{ext})"
        )
