"""Boundary conditions for stencil sweeps.

The paper (Section 3.3, "Dealing with Boundary Conditions") distinguishes
four behaviours for stencil accesses that fall outside the computational
domain:

* **bounce-back / clamp** — the out-of-range access is redirected to the
  nearest in-range point (this is what the HotSpot3D kernel in Figure 2 of
  the paper does with ``w = (x == 0) ? c : c - 1``);
* **periodic** — indices wrap around;
* **constant** — out-of-range points hold a fixed value;
* **empty / zero** — out-of-range points are treated as ``0``.

Every boundary condition is realised uniformly as *ghost-cell padding*
(:func:`repro.stencil.shift.pad_array`): the domain is surrounded by a
halo of ``radius`` ghost cells whose values encode the boundary
behaviour, after which the sweep and the checksum interpolation become
pure shifts with no per-point branching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["BoundaryCondition", "BoundarySpec"]

_VALID_KINDS = ("clamp", "periodic", "constant", "zero")


@dataclass(frozen=True)
class BoundaryCondition:
    """Boundary behaviour along a single axis.

    Parameters
    ----------
    kind:
        One of ``"clamp"``, ``"periodic"``, ``"constant"`` or ``"zero"``.
    value:
        The boundary value; only meaningful for ``kind="constant"``.

    Examples
    --------
    >>> BoundaryCondition.clamp()
    BoundaryCondition(kind='clamp', value=0.0)
    >>> BoundaryCondition.constant(80.0).value
    80.0
    """

    kind: str
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"unknown boundary kind {self.kind!r}; expected one of {_VALID_KINDS}"
            )

    # -- constructors -----------------------------------------------------
    @classmethod
    def clamp(cls) -> "BoundaryCondition":
        """Bounce-back boundary: out-of-range accesses use the edge value."""
        return cls("clamp")

    @classmethod
    def periodic(cls) -> "BoundaryCondition":
        """Periodic boundary: indices wrap around the axis."""
        return cls("periodic")

    @classmethod
    def constant(cls, value: float) -> "BoundaryCondition":
        """Constant boundary: out-of-range points hold ``value``."""
        return cls("constant", float(value))

    @classmethod
    def zero(cls) -> "BoundaryCondition":
        """Empty boundary: out-of-range points are treated as zero."""
        return cls("zero")

    # -- queries -----------------------------------------------------------
    @property
    def is_clamp(self) -> bool:
        return self.kind == "clamp"

    @property
    def is_periodic(self) -> bool:
        return self.kind == "periodic"

    @property
    def is_constant(self) -> bool:
        return self.kind == "constant"

    @property
    def is_zero(self) -> bool:
        return self.kind == "zero"

    def fill_value(self) -> float:
        """Ghost-cell fill value for ``constant``/``zero`` boundaries."""
        if self.is_constant:
            return self.value
        return 0.0

    def pad_mode(self) -> str:
        """The :func:`numpy.pad` mode implementing this boundary."""
        if self.is_clamp:
            return "edge"
        if self.is_periodic:
            return "wrap"
        return "constant"


@dataclass(frozen=True)
class BoundarySpec:
    """Per-axis boundary conditions for an N-dimensional domain.

    The paper applies one boundary behaviour to the whole domain; this
    class generalises that to one condition per axis, which is what the
    per-layer 3D application needs (e.g. clamp in x/y but zero in z).

    Parameters
    ----------
    conditions:
        Tuple of :class:`BoundaryCondition`, one per array axis, in axis
        order.
    """

    conditions: Tuple[BoundaryCondition, ...]

    def __post_init__(self) -> None:
        if len(self.conditions) == 0:
            raise ValueError("BoundarySpec needs at least one axis")
        for bc in self.conditions:
            if not isinstance(bc, BoundaryCondition):
                raise TypeError(f"expected BoundaryCondition, got {type(bc)!r}")

    # -- constructors -----------------------------------------------------
    @classmethod
    def uniform(cls, bc: BoundaryCondition, ndim: int) -> "BoundarySpec":
        """The same boundary condition on every axis."""
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        return cls(tuple(bc for _ in range(ndim)))

    @classmethod
    def clamp(cls, ndim: int) -> "BoundarySpec":
        return cls.uniform(BoundaryCondition.clamp(), ndim)

    @classmethod
    def periodic(cls, ndim: int) -> "BoundarySpec":
        return cls.uniform(BoundaryCondition.periodic(), ndim)

    @classmethod
    def zero(cls, ndim: int) -> "BoundarySpec":
        return cls.uniform(BoundaryCondition.zero(), ndim)

    @classmethod
    def constant(cls, value: float, ndim: int) -> "BoundarySpec":
        return cls.uniform(BoundaryCondition.constant(value), ndim)

    @classmethod
    def from_any(cls, bc, ndim: int) -> "BoundarySpec":
        """Coerce a :class:`BoundaryCondition`, sequence or spec to a spec."""
        if isinstance(bc, BoundarySpec):
            if bc.ndim != ndim:
                raise ValueError(
                    f"BoundarySpec has {bc.ndim} axes, domain has {ndim}"
                )
            return bc
        if isinstance(bc, BoundaryCondition):
            return cls.uniform(bc, ndim)
        conditions = tuple(bc)
        if len(conditions) != ndim:
            raise ValueError(
                f"expected {ndim} boundary conditions, got {len(conditions)}"
            )
        return cls(conditions)

    # -- queries -----------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.conditions)

    def axis(self, axis: int) -> BoundaryCondition:
        """The boundary condition applied along ``axis``."""
        return self.conditions[axis]

    def __iter__(self):
        return iter(self.conditions)

    def __getitem__(self, axis: int) -> BoundaryCondition:
        return self.conditions[axis]
