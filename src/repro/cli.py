"""Command-line interface: ``python -m repro`` / ``repro-abft``.

Regenerates the paper's tables and figures from the command line::

    python -m repro table1
    python -m repro figure8 --scale quick
    python -m repro figure9
    python -m repro figure10
    python -m repro figure11
    python -m repro sensitivity
    python -m repro all --scale quick
    python -m repro backends --kernels --json
    python -m repro distributed --ranks 4 --iters 50
    python -m repro distributed --ranks 4 --no-protect --boundary periodic --block-steps 4
    python -m repro campaign --tile 64 64 8 --repetitions 50 --executor process

``--scale paper`` switches to the published campaign parameters
(hours of compute in pure NumPy); ``--scale smoke`` is the tiny
configuration used by the test suite. Every experiment accepts
``--backend`` to pick the compute backend (overriding the
``REPRO_BACKEND`` environment variable) and ``--executor``/``--workers``
to pick the tile executor (overriding ``REPRO_EXECUTOR``); ``backends``
and ``executors`` list what is available. The same entry point is
installed as the ``repro`` (and ``repro-abft``) console script by
``pip install -e .``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.backends import (
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
    unavailable_backends,
)
from repro.parallel.executor import (
    available_executors,
    default_executor_kind,
    resolve_workers,
    set_default_executor,
    set_default_workers,
)
from repro.experiments import (
    EvaluationScale,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11,
    format_sensitivity,
    format_table1,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_sensitivity,
    run_table1,
)
from repro.version import __version__

__all__ = ["main", "build_parser"]

_SCALES: Dict[str, Callable[[], EvaluationScale]] = {
    "smoke": EvaluationScale.smoke,
    "quick": EvaluationScale.quick,
    "paper": EvaluationScale.paper,
}

_EXPERIMENTS = {
    "table1": (run_table1, format_table1),
    "figure8": (run_figure8, format_figure8),
    "figure9": (run_figure9, format_figure9),
    "figure10": (run_figure10, format_figure10),
    "figure11": (run_figure11, format_figure11),
    "sensitivity": (run_sensitivity, format_sensitivity),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-abft",
        description=(
            "Reproduce the evaluation of 'Algorithm-Based Fault Tolerance for "
            "Parallel Stencil Computations' (CLUSTER 2019)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in list(_EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument(
            "--scale",
            choices=sorted(_SCALES),
            default="quick",
            help="campaign scale (default: quick)",
        )
        sub.add_argument(
            "--output",
            default=None,
            help="optional file to write the rendered table to",
        )
        sub.add_argument(
            "--backend",
            choices=available_backends(),
            default=None,
            help=(
                "compute backend for every sweep/checksum (default: the "
                "REPRO_BACKEND environment variable, else 'fused')"
            ),
        )
        sub.add_argument(
            "--executor",
            choices=available_executors(),
            default=None,
            help=(
                "tile executor for parallel runs (default: the "
                "REPRO_EXECUTOR environment variable, else 'serial')"
            ),
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for thread/process executors (default: all cores)",
        )

    # table1 additionally offers the measured campaign-engine throughput
    # column (runs/second per tile).
    subparsers.choices["table1"].add_argument(
        "--measure-throughput",
        action="store_true",
        help="append the measured online-ABFT campaign throughput "
        "(runs/second on the campaign engine) per tile",
    )

    backends_cmd = subparsers.add_parser(
        "backends",
        help="list compute backends, including optional ones that are "
        "unavailable in this environment (e.g. numba without the package)",
    )
    backends_cmd.add_argument(
        "--kernels",
        action="store_true",
        help="also list the compiled-kernel cache of every compiling "
        "backend (spec/layout signature, block factor, codegen + warmup "
        "time, hits)",
    )
    backends_cmd.add_argument(
        "--json",
        action="store_true",
        help="with --kernels, dump the cache entries as JSON (full "
        "untruncated signatures, machine-readable)",
    )
    subparsers.add_parser(
        "executors", help="list the available tile executors"
    )

    dist = subparsers.add_parser(
        "distributed",
        help="run the simulated distributed (rank-decomposed) ABFT runner "
        "and report the gather checksum plus per-rank detection totals",
    )
    dist.add_argument(
        "--ranks", type=int, default=4, help="number of simulated ranks"
    )
    dist.add_argument(
        "--iters", type=int, default=50, help="distributed sweeps to run"
    )
    dist.add_argument(
        "--size", type=int, default=256, help="square domain edge length"
    )
    dist.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="compute backend driving every rank's fused step",
    )
    dist.add_argument(
        "--no-protect",
        action="store_true",
        help="disable the per-rank OnlineABFT protectors",
    )
    dist.add_argument(
        "--block-steps",
        type=int,
        default=1,
        help="temporal blocking factor k: exchange k*radius-deep halos "
        "every k sweeps and run fused k-step kernels (requires "
        "--no-protect and a periodic boundary; ineligible runs fall "
        "back to k=1 and report why)",
    )
    dist.add_argument(
        "--boundary",
        choices=("clamp", "periodic"),
        default="clamp",
        help="boundary condition of the global domain (periodic enables "
        "temporal blocking along the distributed axis)",
    )
    dist.add_argument(
        "--crash-rank", type=int, default=None, metavar="R",
        help="fail-stop rank R mid-run and recover it from its buddy "
        "checkpoint (default victim when only --crash-iter is given: "
        "rank 1)",
    )
    dist.add_argument(
        "--crash-iter", type=int, default=None, metavar="T",
        help="iteration at which the crashed rank stops responding "
        "(default when only --crash-rank is given: iters // 2)",
    )
    dist.add_argument(
        "--checkpoint-period", type=int, default=None, metavar="P",
        help="buddy-checkpoint period in iterations (default: the ABFT "
        "detection period, 16, rounded up to a blocked-window boundary)",
    )

    camp = subparsers.add_parser(
        "campaign",
        help="run one fault-injection campaign on the high-throughput "
        "campaign engine and report detection/timing statistics",
    )
    camp.add_argument(
        "--tile", type=int, nargs=3, default=[64, 64, 8],
        metavar=("NX", "NY", "NZ"), help="HotSpot3D tile size",
    )
    camp.add_argument(
        "--method", choices=("no-abft", "online-abft", "offline-abft"),
        default="online-abft", help="protection method",
    )
    camp.add_argument(
        "--scenario", choices=("error-free", "single-bit-flip"),
        default="single-bit-flip", help="fault scenario",
    )
    camp.add_argument(
        "--iterations", type=int, default=64, help="stencil sweeps per run"
    )
    camp.add_argument(
        "--repetitions", type=int, default=50, help="independent runs"
    )
    camp.add_argument("--seed", type=int, default=0, help="campaign base seed")
    camp.add_argument(
        "--fault-model", default=None, metavar="NAME",
        help="pluggable fault model for injected runs (see `repro.faults."
        "models`): bitflip (paper default), burst, mtbf, region, "
        "region-checksum, region-ghost, region-payload, rank-crash, "
        "rank-crash-mtbf (fail-stop runs execute on the distributed "
        "buddy-checkpoint recovery path)",
    )
    camp.add_argument(
        "--mtbf", type=float, default=64.0,
        help="mean iterations between faults for --fault-model mtbf "
        "(also the crash-arrival mean for rank-crash-mtbf)",
    )
    camp.add_argument(
        "--burst-size", type=int, default=3,
        help="flips per burst for --fault-model burst",
    )
    camp.add_argument(
        "--burst-spread", type=int, default=1,
        help="Chebyshev radius of the burst for --fault-model burst",
    )
    camp.add_argument(
        "--bit", type=int, default=None,
        help="pin the flipped bit position (default: uniform random)",
    )
    camp.add_argument(
        "--faults-per-run", type=int, default=1,
        help="independent faults per run for the bitflip model",
    )
    camp.add_argument(
        "--crash-ranks", type=int, default=4, metavar="N",
        help="simulated rank count for the rank-crash models",
    )
    camp.add_argument(
        "--crash-rank", type=int, default=None, metavar="R",
        help="pin the crash victim rank for rank-crash "
        "(default: uniform random)",
    )
    camp.add_argument(
        "--crash-iter", type=int, default=None, metavar="T",
        help="pin the crash iteration for rank-crash "
        "(default: uniform random)",
    )
    camp.add_argument(
        "--crash-bitflips", type=int, default=0, metavar="K",
        help="extra uniform bit flips mixed into every rank-crash draw "
        "(combined fail-stop + silent-fault runs)",
    )
    camp.add_argument(
        "--period", type=int, default=16,
        help="offline detection/checkpoint period",
    )
    camp.add_argument(
        "--batch", type=int, default=None,
        help="runs per dispatched batch (default: automatic)",
    )
    camp.add_argument(
        "--strategy", choices=("auto", "stacked", "replay"), default="auto",
        help="run strategy: auto picks the fastest eligible path per "
        "batch, stacked demands the batched fast path (error when the "
        "campaign cannot take it), replay forces the per-run legacy path",
    )
    camp.add_argument(
        "--stacked-width", type=int, default=None, metavar="N",
        help="cap on the stacked batch width (default: "
        "REPRO_STACKED_WIDTH, else 32)",
    )
    camp.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="compute backend for the sweeps",
    )
    camp.add_argument(
        "--executor", choices=available_executors(), default=None,
        help="campaign-engine executor (default: REPRO_EXECUTOR, else serial)",
    )
    camp.add_argument(
        "--workers", type=int, default=None,
        help="worker count for thread/process executors",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _run_distributed(args) -> int:
    """``repro distributed``: drive the simulated rank-decomposed runner."""
    import numpy as np

    from repro.parallel.simmpi import DistributedStencilRunner
    from repro.stencil.boundary import BoundaryCondition
    from repro.stencil.grid import Grid2D
    from repro.stencil.kernels import five_point_diffusion

    rng = np.random.default_rng(42)
    initial = (rng.random((args.size, args.size)) * 100.0).astype(np.float32)
    boundary = (
        BoundaryCondition.periodic()
        if args.boundary == "periodic"
        else BoundaryCondition.clamp()
    )
    grid = Grid2D(initial, five_point_diffusion(0.2), boundary)
    runner = DistributedStencilRunner(
        grid,
        n_ranks=args.ranks,
        protect=not args.no_protect,
        backend=args.backend,
        block_steps=args.block_steps,
        checkpoint_period=args.checkpoint_period,
    )
    inject = None
    crash_requested = args.crash_rank is not None or args.crash_iter is not None
    if crash_requested:
        from repro.faults.injector import FaultPlan
        from repro.faults.models import DistributedFaultInjector

        victim = args.crash_rank if args.crash_rank is not None else 1 % args.ranks
        if not 0 <= victim < args.ranks:
            raise SystemExit(
                f"error: --crash-rank {victim} out of range for "
                f"{args.ranks} ranks"
            )
        crash_iter = (
            args.crash_iter
            if args.crash_iter is not None
            else max(1, args.iters // 2)
        )
        per_rank = [[] for _ in range(args.ranks)]
        per_rank[victim] = [
            FaultPlan(
                iteration=crash_iter, index=(), bit=0, target="crash",
                rank=victim,
            )
        ]
        inject = DistributedFaultInjector(runner, per_rank)
    runner.run(args.iters, inject=inject)

    gathered = runner.gather()
    checksum = float(gathered.sum(dtype=np.float64))
    print(
        f"distributed run: {args.size}x{args.size} five-point diffusion "
        f"({args.boundary}), {args.ranks} ranks, {args.iters} iterations "
        f"(backend {runner.backend.name})"
    )
    if runner.block_steps > 1 or runner.effective_block_steps > 1:
        if runner.block_cap_reason is not None:
            print(
                f"temporal block : requested k={runner.block_steps}, "
                f"capped to k=1 ({runner.block_cap_reason})"
            )
        else:
            print(
                f"temporal block : k={runner.effective_block_steps} "
                f"(halo depth {runner.halo_width}, one exchange per "
                f"{runner.effective_block_steps} sweeps)"
            )
    print(f"gather checksum : {checksum:.6f}")
    print(
        f"halo traffic    : {runner.channel.messages_sent} messages, "
        f"{runner.channel.bytes_sent} bytes"
    )
    by_tag = runner.channel.messages_by_tag
    ckpt_msgs = by_tag.get("ckpt", 0) + by_tag.get("ckpt_meta", 0)
    if ckpt_msgs:
        bytes_by_tag = runner.channel.bytes_by_tag
        ckpt_bytes = bytes_by_tag.get("ckpt", 0) + bytes_by_tag.get(
            "ckpt_meta", 0
        )
        stats = runner.recovery
        print(
            f"checkpointing   : period {runner.checkpoint_period}, "
            f"{stats.checkpoints_taken} checkpoints, "
            f"{ckpt_msgs} messages, {ckpt_bytes} bytes to buddies"
        )
    if runner.recovery.rank_failures:
        stats = runner.recovery
        print(
            f"recovery        : {stats.rank_failures} rank "
            f"failure{'s' if stats.rank_failures != 1 else ''}, "
            f"{stats.ranks_rebuilt} rebuilt from buddy, "
            f"{stats.rollbacks} rollback{'s' if stats.rollbacks != 1 else ''} "
            f"(max depth {stats.max_rollback_depth}), "
            f"{stats.replayed_iterations} iterations replayed"
        )
    for rank in runner.ranks:
        if rank.protector is None:
            print(f"rank {rank.rank}: shape {rank.shape}, unprotected")
        else:
            print(
                f"rank {rank.rank}: shape {rank.shape}, "
                f"detected {rank.protector.total_detections}, "
                f"corrected {rank.protector.total_corrections}"
            )
    if not args.no_protect:
        print(
            f"totals          : detected {runner.total_detected()}, "
            f"corrected {runner.total_corrected()}"
        )
    return 0


def _run_campaign_cli(args) -> int:
    """``repro campaign``: one campaign on the high-throughput engine."""
    import time

    from repro.experiments.common import make_hotspot_app, make_protector_factory
    from repro.experiments.report import format_seconds
    from repro.faults.campaign import CampaignConfig
    from repro.faults.engine import CampaignEngine
    from repro.faults.models import make_fault_model

    tile = tuple(args.tile)
    app = make_hotspot_app(tile)
    reference = app.reference_solution(args.iterations)
    factory = make_protector_factory(args.method, period=args.period)
    fault_model = None
    if args.fault_model is not None:
        params = {}
        if args.fault_model == "mtbf":
            params["mtbf"] = args.mtbf
        elif args.fault_model == "burst":
            params["burst_size"] = args.burst_size
            params["spread"] = args.burst_spread
        elif args.fault_model == "bitflip":
            params["faults_per_run"] = args.faults_per_run
        elif args.fault_model in ("rank-crash", "rank-crash-mtbf"):
            params["n_ranks"] = args.crash_ranks
            params["bitflips"] = args.crash_bitflips
            if args.crash_rank is not None:
                params["rank"] = args.crash_rank
            if args.fault_model == "rank-crash-mtbf":
                params["mtbf"] = args.mtbf
            elif args.crash_iter is not None:
                params["at_iteration"] = args.crash_iter
        if args.bit is not None:
            params["bit"] = args.bit
        fault_model = make_fault_model(args.fault_model, **params)
    config = CampaignConfig(
        iterations=args.iterations,
        repetitions=args.repetitions,
        inject=(args.scenario == "single-bit-flip"),
        seed=args.seed,
        fault_model=fault_model,
        stacked_width=args.stacked_width,
    )
    with CampaignEngine(batch_size=args.batch) as engine:
        start = time.perf_counter()
        result = engine.run(
            app.build_grid, factory, config, reference=reference,
            strategy=args.strategy,
        )
        elapsed = time.perf_counter() - start
        executor = engine.executor

        model_name = getattr(config.resolved_fault_model(), "name", "bitflip")
        print(
            f"campaign: {tile[0]}x{tile[1]}x{tile[2]} HotSpot3D, "
            f"{args.method}, {args.scenario} (model {model_name}), "
            f"{args.iterations} iterations x "
            f"{args.repetitions} runs (seed {args.seed})"
        )
        print(
            f"engine   : executor {executor.kind} ({executor.workers} "
            f"worker{'s' if executor.workers != 1 else ''}), "
            f"batch {engine.batch_size or 'auto'}"
        )
        counts = result.strategy_counts()
        if counts:
            used = ", ".join(
                f"{name} ({n} run{'s' if n != 1 else ''})"
                for name, n in sorted(counts.items())
            )
            line = f"strategy : {used}"
            reasons = result.fallback_reasons()
            if reasons:
                line += f" — replay because: {'; '.join(reasons)}"
            print(line)
        if engine.chaos is not None or engine.worker_restarts:
            print(
                f"resilience: chaos {engine.chaos or 'off'}, "
                f"{engine.worker_restarts} worker-pool "
                f"restart{'s' if engine.worker_restarts != 1 else ''} "
                "(lost batches re-dispatched)"
            )
        print(
            f"throughput: {args.repetitions / elapsed:.1f} runs/s "
            f"({format_seconds(elapsed)} total)"
        )
    stats = result.time_stats()
    print(
        f"run time : mean {format_seconds(stats.mean)}, "
        f"median {format_seconds(stats.median)}, max {format_seconds(stats.maximum)}"
    )
    errors = result.error_stats()
    print(f"l2 error : mean {errors.mean:.3e}, max {errors.maximum:.3e}")
    cols = result.columns()
    if config.inject:
        print(
            f"faults   : detection rate {100 * result.detection_rate():.1f}%, "
            f"{int(cols.detected_counts.sum())} detected, "
            f"{int(cols.corrected.sum())} corrected, "
            f"{int(cols.uncorrected.sum())} uncorrected, "
            f"{result.total_rollbacks()} rollbacks"
        )
    else:
        print(
            f"faults   : none injected, false-positive rate "
            f"{100 * result.false_positive_rate():.1f}%"
        )
    rebuilt = sum(r.ranks_rebuilt for r in result.records)
    ck_bytes = sum(r.checkpoint_bytes for r in result.records)
    if rebuilt or ck_bytes:
        crashed_runs = sum(1 for r in result.records if r.ranks_rebuilt)
        print(
            f"recovery : {crashed_runs}/{len(result.records)} runs lost a "
            f"rank, {rebuilt} rank{'s' if rebuilt != 1 else ''} rebuilt "
            f"from buddy checkpoints ({ck_bytes} checkpoint bytes shipped)"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "backends":
        default = default_backend_name()
        seen = []
        for name in available_backends():
            backend = get_backend(name)
            marker = " (default)" if name == default else ""
            print(f"{name:12s} -> {type(backend).__name__}{marker}")
            if backend not in seen:
                seen.append(backend)
        for name, reason in unavailable_backends().items():
            print(f"{name:12s} -> unavailable ({reason})")
        if getattr(args, "kernels", False):
            compiling = [b for b in seen if b.compiles_kernels]
            if getattr(args, "json", False):
                import json

                payload = {
                    b.name: [dict(e) for e in b.compiled_kernels()]
                    for b in compiling
                }
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            if not compiling:
                print("\nno compiling backends registered")
            for backend in compiling:
                entries = backend.compiled_kernels()
                print(
                    f"\n{backend.name}: {len(entries)} compiled kernel "
                    f"module{'s' if len(entries) != 1 else ''}"
                )
                for e in entries:
                    cached = "disk" if e["from_disk"] else "fresh"
                    print(
                        f"  {e['digest']}  {e['kind']:6s} "
                        f"k={e['block_steps']} {cached:5s} "
                        f"codegen {e['codegen_ms']:.2f} ms  "
                        f"warmup {e['warmup_ms']:.2f} ms  "
                        f"hits {e['hits']}  misses {e['misses']}"
                    )
                    # Full signatures, never truncated: the digest above
                    # is only a 16-char hash prefix, so the complete
                    # cache-key identity (spec + layout + block factor)
                    # is spelled out per entry.
                    print(f"    spec   {e['spec']}")
                    if e["layout"]:
                        print(f"    layout {e['layout']}")
                    if e["ghost_growth"]:
                        ghosts = "  ".join(
                            f"{axis}:+{depth}"
                            for axis, depth in sorted(e["ghost_growth"].items())
                        )
                        print(f"    ghosts {ghosts} (deep halo, k-step plan)")
        return 0

    if args.command == "distributed":
        if args.backend is None:
            # Fail fast on a bad REPRO_BACKEND (exit 2, like every other
            # command) instead of crashing once the runner resolves it.
            try:
                get_backend()
            except KeyError as exc:
                parser.error(str(exc.args[0]))
        return _run_distributed(args)

    if args.command == "campaign":
        if args.executor is not None:
            set_default_executor(args.executor)
        if args.workers is not None:
            set_default_workers(args.workers)
        if args.backend is not None:
            set_default_backend(args.backend)
        else:
            try:
                get_backend()
            except KeyError as exc:
                parser.error(str(exc.args[0]))
        return _run_campaign_cli(args)

    if args.command == "executors":
        default = default_executor_kind()
        descriptions = {
            "serial": "tiles swept one after another in the calling thread",
            "threads": "thread pool (NumPy kernels release the GIL)",
            "process": "process pool over multiprocessing.shared_memory",
        }
        for kind in available_executors():
            marker = " (default)" if kind == default else ""
            print(f"{kind:12s} -> {descriptions[kind]}{marker}")
        print(f"workers default: {resolve_workers(None)} (os.cpu_count)")
        return 0

    if args.executor is not None:
        set_default_executor(args.executor)
    if args.workers is not None:
        set_default_workers(args.workers)
    if args.backend is not None:
        set_default_backend(args.backend)
    else:
        # Fail fast on a bad REPRO_BACKEND instead of crashing mid-run
        # (some experiments only resolve the backend at the first sweep).
        try:
            get_backend()
        except KeyError as exc:
            parser.error(str(exc.args[0]))
    scale = _SCALES[args.scale]()

    if args.command == "all":
        chunks = []
        for name, (run, fmt) in _EXPERIMENTS.items():
            chunks.append(fmt(run(scale)))
        _emit("\n\n".join(chunks), args.output)
        return 0

    run, fmt = _EXPERIMENTS[args.command]
    if args.command == "table1" and getattr(args, "measure_throughput", False):
        _emit(fmt(run(scale, measure_throughput=True)), args.output)
        return 0
    _emit(fmt(run(scale)), args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
