"""Spatial-interpolation SDC detector (data-analytics baseline).

This baseline follows the multivariate-interpolation idea of
Bautista-Gomez & Cappello (CLUSTER 2015), which the paper compares
against in Section 2: each domain point is predicted from the average of
its spatial neighbours, and a point whose value deviates from the
prediction by more than a relative threshold is flagged as corrupted
(and optionally replaced by the prediction).

The detector is cheap and application-agnostic, but it is *approximate*:
smooth fields make small corruptions indistinguishable from legitimate
local variation, so only large deviations (the paper quotes magnitudes
above 1e-2) are reliably caught, and sharp legitimate features (e.g. a
heat source switching on, a shock) can trigger false positives. The
detection-sensitivity benchmark contrasts this behaviour with the ABFT
detector's 1e-5 sensitivity and absence of false positives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.protector import InjectHook, Protector, StepReport
from repro.stencil.boundary import BoundaryCondition
from repro.stencil.grid import GridBase
from repro.stencil.shift import pad_array, shifted_view

__all__ = ["SpatialInterpolationDetector"]


class SpatialInterpolationDetector(Protector):
    """Flag points that deviate strongly from their neighbourhood average.

    Parameters
    ----------
    threshold:
        Relative deviation above which a point is flagged. The reference
        work detects corruptions of magnitude above ~1e-2; that is the
        default here.
    correct:
        Replace flagged points by their neighbourhood prediction
        (``True``) or only detect (``False``).
    min_scale:
        Absolute scale floor used in the relative comparison so that
        near-zero regions do not produce spurious flags.
    """

    name = "spatial-detector"

    def __init__(
        self,
        threshold: float = 1e-2,
        correct: bool = True,
        min_scale: float = 1e-6,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)
        self.correct = bool(correct)
        self.min_scale = float(min_scale)
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0

    def reset(self) -> None:
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0

    def _neighbour_stack(self, u: np.ndarray) -> np.ndarray:
        """Face-neighbour values of every point (clamped edges), stacked."""
        padded = pad_array(u, 1, BoundaryCondition.clamp())
        neighbours = []
        for axis in range(u.ndim):
            for direction in (-1, 1):
                offset = [0] * u.ndim
                offset[axis] = direction
                neighbours.append(shifted_view(padded, offset, 1, u.shape))
        return np.stack(neighbours, axis=0).astype(np.float64)

    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        grid.step()
        if inject is not None:
            inject(grid, grid.iteration)

        u = grid.u
        stack = self._neighbour_stack(u)
        # Mean prediction for *detection*: on smooth data the first-order
        # (gradient) contribution of opposite neighbours cancels, so only
        # curvature-sized deviations remain and legitimate smooth fields do
        # not trigger the detector.
        mean_prediction = stack.mean(axis=0).astype(u.dtype)
        scale = np.maximum(np.abs(mean_prediction), self.min_scale)
        deviation = np.abs(u - mean_prediction) / scale
        flagged = deviation > self.threshold

        n_flagged = int(np.count_nonzero(flagged))
        report = StepReport(
            iteration=grid.iteration,
            detection_performed=True,
            errors_detected=n_flagged,
            max_relative_error=float(deviation.max()) if deviation.size else 0.0,
        )
        self.total_detections += n_flagged
        if n_flagged and self.correct:
            # Median replacement for *correction*: the neighbours of a
            # corrupted point may themselves be flagged (their mean
            # prediction is poisoned by the outlier), and the median keeps
            # their replacement value sane.
            median_prediction = np.median(stack, axis=0).astype(u.dtype)
            u[flagged] = median_prediction[flagged]
            report.errors_corrected = n_flagged
            self.total_corrections += n_flagged
        elif n_flagged:
            report.errors_uncorrected = n_flagged
            self.total_uncorrected += n_flagged
        return report
