"""Comparison baselines.

``no_abft``
    The unprotected run (re-exported :class:`NoProtection`).
``tmr``
    Triple modular redundancy — the general-purpose detector/corrector
    the paper's related work positions ABFT against: every sweep is
    executed three times and the results are majority-voted. Accurate,
    but roughly 3x the compute.
``spatial_detector``
    A data-analytics detector in the spirit of Bautista-Gomez & Cappello
    (CLUSTER 2015): each point is predicted from its spatial
    neighbourhood and outliers are flagged/repaired. Cheap but inexact —
    it only catches large deviations and can raise false positives on
    sharp features, which is exactly the comparison drawn in the paper's
    Section 2.
"""

from repro.core.protector import NoProtection
from repro.baselines.tmr import TMRProtector
from repro.baselines.spatial_detector import SpatialInterpolationDetector

__all__ = ["NoProtection", "TMRProtector", "SpatialInterpolationDetector"]
