"""Triple modular redundancy (TMR) baseline.

TMR executes every sweep three times from the same input and votes on
the outputs element-wise. A single transient fault corrupts at most one
replica, so the majority value is correct. The paper cites TMR as "the
most general and non-intrusive approach" but "prohibitively expensive in
terms of additional required computing resources and time" (Sections 1
and 2) — the overhead benchmark quantifies that ~3x cost next to ABFT's
few percent.

Fault-model note: the injection hook corrupts the grid's freshly swept
domain, which plays the role of replica 1; the two redundant replicas
are recomputed from the (still intact) previous padded state.

The redundant replicas run through the grid's own compute backend
(``grid.backend.sweep_padded``) into two *persistent* replica buffers,
so a TMR step costs exactly two extra backend sweeps — no per-replica
padding and no per-replica full-domain allocation beyond the two
buffers the protector owns for its lifetime.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.protector import InjectHook, Protector, StepReport
from repro.stencil.grid import GridBase

__all__ = ["TMRProtector"]


class TMRProtector(Protector):
    """Detect and correct SDCs by executing every sweep three times.

    Parameters
    ----------
    rtol:
        Relative tolerance used when comparing replicas; replicas are
        recomputed from identical inputs with identical operation order,
        so any disagreement beyond exact equality indicates corruption.
        A small tolerance keeps the comparison robust if a future
        executor reorders reductions.
    """

    name = "tmr"

    def __init__(self, rtol: float = 0.0) -> None:
        self.rtol = float(rtol)
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0
        self._replicas = None

    def reset(self) -> None:
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0
        self._replicas = None

    def _replica_buffers(self, like: np.ndarray):
        """Two persistent replica output buffers matching the domain."""
        if (
            self._replicas is None
            or self._replicas[0].shape != like.shape
            or self._replicas[0].dtype != like.dtype
        ):
            self._replicas = (np.empty_like(like), np.empty_like(like))
        return self._replicas

    def _disagrees(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.rtol == 0.0:
            return x != y
        scale = np.maximum(np.abs(x), np.abs(y))
        return np.abs(x - y) > self.rtol * np.maximum(scale, 1e-30)

    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        grid.step()
        if inject is not None:
            inject(grid, grid.iteration)
        padded_prev = grid.previous_padded

        # Replicas 2 and 3 re-run the sweep on the grid's backend from
        # the already-padded previous buffer into persistent output
        # buffers: two extra backend sweeps, zero extra padding and zero
        # per-step full-domain allocations.
        backend = grid.backend
        buf_2, buf_3 = self._replica_buffers(grid.u)
        replica_1 = grid.u
        replica_2 = backend.sweep_padded(
            padded_prev, grid.spec, grid.radius, grid.shape,
            constant=grid.constant, out=buf_2,
        )
        replica_3 = backend.sweep_padded(
            padded_prev, grid.spec, grid.radius, grid.shape,
            constant=grid.constant, out=buf_3,
        )

        report = StepReport(iteration=grid.iteration, detection_performed=True)

        # Majority vote: replicas 2 and 3 are recomputed from clean input,
        # so wherever they agree with each other but not with replica 1,
        # replica 1 was corrupted.
        mismatch_12 = self._disagrees(replica_1, replica_2)
        mismatch_13 = self._disagrees(replica_1, replica_3)
        mismatch_23 = self._disagrees(replica_2, replica_3)

        corrupted = mismatch_12 & mismatch_13 & ~mismatch_23
        undecided = mismatch_12 & mismatch_13 & mismatch_23

        n_corrupted = int(np.count_nonzero(corrupted))
        n_undecided = int(np.count_nonzero(undecided))
        report.errors_detected = n_corrupted + n_undecided
        if n_corrupted:
            replica_1[corrupted] = replica_2[corrupted]
            report.errors_corrected = n_corrupted
        report.errors_uncorrected = n_undecided

        self.total_detections += report.errors_detected
        self.total_corrections += report.errors_corrected
        self.total_uncorrected += report.errors_uncorrected
        return report
