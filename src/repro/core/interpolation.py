"""Checksum interpolation (Theorem 1 of the paper).

The checksums of a stencil domain are *not* invariant across iterations,
so they cannot be compared directly between steps as in classical ABFT.
Theorem 1 shows that the checksum vectors at step ``t+1`` can instead be
*predicted* from the checksum vectors at step ``t`` by applying the same
stencil kernel to the 1D checksum vectors, plus boundary-correction
terms (α for the row checksum, β for the column checksum):

.. math::

    a^{(t+1)}_x = c_x + \\sum_{\\{i,j,w\\} \\in S} w \\,(a^{(t)}_{x+i} + \\alpha^{(t)}_{x+i,j})

This module provides three implementations of that prediction:

:func:`interpolate_checksum_padded`
    The **exact** form. It reads the step-``t`` ghost-padded domain, so
    the α/β terms are computed exactly for *any* boundary condition,
    *any* (possibly asymmetric) stencil, and also for tiles whose ghost
    cells carry halo data from neighbouring tiles. Complexity is
    ``O(k (n_x + n_y) r)`` extra work per step — the strip accesses of
    Theorem 1 — never a full domain pass.

:func:`interpolate_checksum_reduced`
    The **checksum-only** form used by the offline protector: it needs
    only the previous checksum vector plus (optionally) the per-offset
    boundary *strip sums* recorded during the sweep
    (:func:`extract_delta_strips`). Without strips it degenerates into
    the paper's simplified Equations (8)-(9), which are exact only when
    the α/β terms cancel (periodic boundaries, or clamp boundaries with
    mirror-symmetric weights).

:func:`interpolate_checksum`
    Convenience wrapper: pads a raw domain and calls the exact form.

Index conventions
-----------------
The paper sums ``y = 0..ny`` inclusive; this implementation uses the
conventional half-open domain ``0..ny-1`` of shape ``(nx, ny)`` and the
α/β formulas are adapted accordingly. ``reduce_axis`` selects which
checksum is being interpolated: ``1`` (sum over y) for the row checksum
``a``, ``0`` (sum over x) for the column checksum ``b``. For 3D domains
``(nx, ny, nz)`` the remaining axes include the layer axis z, so a single
call interpolates the checksums of *all* layers at once while remaining
mathematically identical to the per-layer scheme of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stencil.boundary import BoundaryCondition, BoundarySpec
from repro.stencil.shift import normalize_radius, pad_array, shifted_view
from repro.stencil.spec import StencilSpec

__all__ = [
    "interpolate_checksum",
    "interpolate_checksum_padded",
    "interpolate_checksum_reduced",
    "extract_delta_strips",
    "reduced_boundary",
]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _other_axes(ndim: int, reduce_axis: int) -> Tuple[int, ...]:
    return tuple(a for a in range(ndim) if a != reduce_axis)


def _window_slice(ndim: int, reduce_axis: int, start: int, stop: int) -> Tuple[slice, ...]:
    """Slice selecting ``[start, stop)`` along ``reduce_axis`` and everything else."""
    sl = [slice(None)] * ndim
    sl[reduce_axis] = slice(start, stop)
    return tuple(sl)


def _reduce_window_sum(
    padded: np.ndarray, reduce_axis: int, start: int, stop: int, dtype=None
) -> np.ndarray:
    """Sum of ``padded`` over ``[start, stop)`` along ``reduce_axis``.

    The result spans the *extended* (ghost-included) range of every other
    axis. ``start``/``stop`` are expressed in padded coordinates.
    """
    if dtype is None:
        dtype = padded.dtype
    if stop <= start:
        shape = tuple(
            n for a, n in enumerate(padded.shape) if a != reduce_axis
        )
        return np.zeros(shape, dtype=dtype)
    return padded[_window_slice(padded.ndim, reduce_axis, start, stop)].sum(
        axis=reduce_axis, dtype=dtype
    )


def _extended_checksum(
    cs_prev: np.ndarray,
    padded_prev: np.ndarray,
    radius: Sequence[int],
    interior_shape: Sequence[int],
    reduce_axis: int,
    dtype=None,
) -> np.ndarray:
    """Checksum over the ghost-extended range of the non-reduced axes.

    The interior block is taken verbatim from ``cs_prev`` (already
    computed, and — per the ABFT inductive assumption — already verified
    correct at step ``t``); only the thin ghost border is summed from the
    padded domain, keeping the extra cost proportional to the boundary
    surface rather than to the domain volume.
    """
    ndim = padded_prev.ndim
    other = _other_axes(ndim, reduce_axis)
    r_d = radius[reduce_axis]
    n_d = int(interior_shape[reduce_axis])
    if dtype is None:
        dtype = padded_prev.dtype
    ext_shape = tuple(int(interior_shape[a]) + 2 * radius[a] for a in other)
    ext = np.empty(ext_shape, dtype=dtype)

    interior_block = tuple(
        slice(radius[a], radius[a] + int(interior_shape[a])) for a in other
    )
    ext[interior_block] = cs_prev

    # Interior window along the reduced axis, all of the extended range on
    # the other axes.
    window = padded_prev[_window_slice(ndim, reduce_axis, r_d, r_d + n_d)]
    for pos, axis in enumerate(other):
        r_a = radius[axis]
        if r_a == 0:
            continue
        for border in (slice(0, r_a), slice(ext_shape[pos] - r_a, ext_shape[pos])):
            dst = [slice(None)] * len(other)
            dst[pos] = border
            src = [slice(None)] * ndim
            src[axis] = border
            ext[tuple(dst)] = window[tuple(src)].sum(axis=reduce_axis, dtype=dtype)
    return ext


def _delta_for_offset(
    padded_prev: np.ndarray,
    radius: Sequence[int],
    interior_shape: Sequence[int],
    reduce_axis: int,
    offset_d: int,
    dtype=None,
) -> np.ndarray:
    """The α/β boundary-correction term for a single reduce-axis offset.

    Returns ``G_{o_d} - a_ext``: the difference between the window sum
    shifted by ``offset_d`` along the reduced axis and the unshifted
    window sum, over the extended range of the other axes. Only
    ``|offset_d|`` boundary strips are touched.
    """
    r_d = radius[reduce_axis]
    n_d = int(interior_shape[reduce_axis])
    if dtype is None:
        dtype = padded_prev.dtype
    m = abs(int(offset_d))
    if m == 0:
        shape = tuple(
            int(interior_shape[a]) + 2 * radius[a]
            for a in _other_axes(padded_prev.ndim, reduce_axis)
        )
        return np.zeros(shape, dtype=dtype)
    if m > r_d:
        raise ValueError(
            f"offset {offset_d} exceeds ghost radius {r_d} along the reduced axis"
        )
    if offset_d > 0:
        # window [m, n_d + m): gains the m ghost columns just above the
        # interior, loses the first m interior columns.
        gained = _reduce_window_sum(
            padded_prev, reduce_axis, r_d + n_d, r_d + n_d + m, dtype=dtype
        )
        lost = _reduce_window_sum(padded_prev, reduce_axis, r_d, r_d + m, dtype=dtype)
    else:
        # window [-m, n_d - m): gains the m ghost columns just below the
        # interior, loses the last m interior columns.
        gained = _reduce_window_sum(padded_prev, reduce_axis, r_d - m, r_d, dtype=dtype)
        lost = _reduce_window_sum(
            padded_prev, reduce_axis, r_d + n_d - m, r_d + n_d, dtype=dtype
        )
    return gained - lost


def _other_offset(offset: Sequence[int], reduce_axis: int) -> Tuple[int, ...]:
    return tuple(int(o) for a, o in enumerate(offset) if a != reduce_axis)


def _other_values(values: Sequence[int], reduce_axis: int) -> Tuple[int, ...]:
    return tuple(int(v) for a, v in enumerate(values) if a != reduce_axis)


# ---------------------------------------------------------------------------
# exact interpolation from the padded previous domain
# ---------------------------------------------------------------------------

def interpolate_checksum_padded(
    cs_prev: np.ndarray,
    padded_prev: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    reduce_axis: int,
    constant_sum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact Theorem-1 interpolation of a checksum.

    Parameters
    ----------
    cs_prev:
        Checksum of the step-``t`` domain along ``reduce_axis``
        (assumed correct; the ABFT inductive hypothesis).
    padded_prev:
        Ghost-padded step-``t`` domain — the same array the sweep read.
        Only thin boundary strips of it are accessed.
    spec:
        The stencil operator.
    radius:
        Ghost width of ``padded_prev``.
    interior_shape:
        Shape of the interior domain.
    reduce_axis:
        Axis summed over by this checksum (0 → column checksum ``b``,
        1 → row checksum ``a``).
    constant_sum:
        Pre-computed checksum of the constant term ``C`` along
        ``reduce_axis`` (the ``c_x`` / ``c_y`` of Theorem 1), or ``None``.

    Returns
    -------
    numpy.ndarray
        The predicted step-``t+1`` checksum; same shape as ``cs_prev``.
    """
    interior_shape = tuple(int(n) for n in interior_shape)
    ndim = len(interior_shape)
    radius = normalize_radius(radius, ndim)
    if reduce_axis < 0 or reduce_axis >= ndim:
        raise ValueError(f"reduce_axis {reduce_axis} out of range for {ndim}D domain")
    other = _other_axes(ndim, reduce_axis)
    other_shape = tuple(interior_shape[a] for a in other)
    if cs_prev.shape != other_shape:
        raise ValueError(
            f"cs_prev has shape {cs_prev.shape}, expected {other_shape} "
            f"(domain {interior_shape}, reduce_axis {reduce_axis})"
        )
    radius_other = tuple(radius[a] for a in other)
    dtype = np.result_type(cs_prev.dtype, padded_prev.dtype)

    ext = _extended_checksum(
        cs_prev, padded_prev, radius, interior_shape, reduce_axis, dtype=dtype
    )

    predicted = np.zeros(other_shape, dtype=dtype)
    if constant_sum is not None:
        predicted += np.asarray(constant_sum, dtype=dtype)

    delta_cache: Dict[int, np.ndarray] = {}
    for offset, weight in spec:
        o_d = int(offset[reduce_axis])
        if o_d not in delta_cache:
            delta_cache[o_d] = _delta_for_offset(
                padded_prev, radius, interior_shape, reduce_axis, o_d, dtype=dtype
            )
        g = ext if o_d == 0 else ext + delta_cache[o_d]
        o_other = _other_offset(offset, reduce_axis)
        contribution = shifted_view(g, o_other, radius_other, other_shape)
        predicted += np.asarray(weight, dtype=dtype) * contribution
    return predicted


def interpolate_checksum(
    cs_prev: np.ndarray,
    u_prev: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec | BoundaryCondition | Sequence[BoundaryCondition],
    reduce_axis: int,
    constant: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact Theorem-1 interpolation from a raw (unpadded) previous domain."""
    radius = spec.radius()
    padded = pad_array(u_prev, radius, boundary)
    constant_sum = None
    if constant is not None:
        constant_sum = np.asarray(constant).sum(axis=reduce_axis)
    return interpolate_checksum_padded(
        cs_prev, padded, spec, radius, u_prev.shape, reduce_axis, constant_sum
    )


# ---------------------------------------------------------------------------
# strip extraction + checksum-only interpolation (offline / simplified)
# ---------------------------------------------------------------------------

def extract_delta_strips(
    padded_prev: np.ndarray,
    spec: StencilSpec,
    radius,
    interior_shape: Sequence[int],
    reduce_axis: int,
) -> Dict[int, np.ndarray]:
    """Record the per-offset boundary strip sums of a step.

    The returned dictionary maps each distinct reduce-axis offset
    ``o_d != 0`` appearing in the stencil to its α/β correction vector
    over the *interior* range of the other axes. The offline protector
    stores one such dictionary per sweep (a few KiB) so that it can
    replay the exact interpolation over a whole detection period without
    keeping the intermediate domains alive.
    """
    interior_shape = tuple(int(n) for n in interior_shape)
    ndim = len(interior_shape)
    radius = normalize_radius(radius, ndim)
    other = _other_axes(ndim, reduce_axis)
    interior_block = tuple(
        slice(radius[a], radius[a] + interior_shape[a]) for a in other
    )
    strips: Dict[int, np.ndarray] = {}
    for offset, _weight in spec:
        o_d = int(offset[reduce_axis])
        if o_d == 0 or o_d in strips:
            continue
        delta = _delta_for_offset(
            padded_prev, radius, interior_shape, reduce_axis, o_d
        )
        strips[o_d] = np.ascontiguousarray(delta[interior_block])
    return strips


def reduced_boundary(
    boundary: BoundarySpec, reduce_axis: int, n_reduce: int, zero_constant: bool = False
) -> BoundarySpec:
    """Boundary specification induced on a checksum vector.

    Summing ``n_reduce`` domain points along the reduced axis maps each
    boundary behaviour of the remaining axes onto the checksum vector:
    clamp stays clamp, periodic stays periodic, zero stays zero, and a
    constant boundary of value ``v`` becomes a constant of ``n_reduce*v``
    (a whole out-of-domain row/column sums to ``n_reduce * v``).

    With ``zero_constant=True`` constant boundaries map to zero instead,
    which is the correct induced behaviour for the α/β *strip* vectors
    (out-of-domain strips are identical on both sides of the subtraction
    and cancel).
    """
    conditions = []
    for axis, bc in enumerate(boundary):
        if axis == reduce_axis:
            continue
        if bc.is_constant:
            if zero_constant:
                conditions.append(BoundaryCondition.zero())
            else:
                conditions.append(BoundaryCondition.constant(bc.value * n_reduce))
        else:
            conditions.append(bc)
    return BoundarySpec(tuple(conditions))


def interpolate_checksum_reduced(
    cs_prev: np.ndarray,
    spec: StencilSpec,
    boundary: BoundarySpec,
    reduce_axis: int,
    n_reduce: int,
    deltas: Optional[Dict[int, np.ndarray]] = None,
    constant_sum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Interpolate a checksum using only checksum-space information.

    This is the form the offline protector iterates Δ times (Section 4.1,
    Figure 7 of the paper): apply the stencil kernel to the previous 1D
    checksum vector. When ``deltas`` (recorded by
    :func:`extract_delta_strips` during the corresponding sweep) are
    provided, the result is *exact* for closed boundary conditions; when
    they are omitted the call implements the paper's simplified
    Equations (8)-(9), which assume the α/β terms vanish (periodic
    boundaries, or clamp boundaries with mirror-symmetric weights).

    Parameters
    ----------
    cs_prev:
        Checksum at step ``t`` (interior range of the non-reduced axes).
    spec:
        The stencil operator of the protected sweep.
    boundary:
        Full-domain boundary specification (one entry per domain axis,
        including the reduced one).
    reduce_axis:
        Axis summed over by this checksum.
    n_reduce:
        Domain extent along the reduced axis (needed to scale constant
        boundaries onto checksum space).
    deltas:
        Optional mapping ``{o_d: strip vector}`` of α/β corrections.
    constant_sum:
        Pre-computed checksum of the constant term, or ``None``.
    """
    if boundary.ndim != spec.ndim:
        raise ValueError(
            f"boundary has {boundary.ndim} axes, stencil is {spec.ndim}D"
        )
    other = _other_axes(spec.ndim, reduce_axis)
    radius = spec.radius()
    radius_other = tuple(radius[a] for a in other)
    other_shape = cs_prev.shape
    dtype = cs_prev.dtype

    cs_boundary = reduced_boundary(boundary, reduce_axis, n_reduce)
    strip_boundary = reduced_boundary(boundary, reduce_axis, n_reduce, zero_constant=True)
    cs_ext = pad_array(cs_prev, radius_other, cs_boundary)

    padded_deltas: Dict[int, np.ndarray] = {}
    if deltas:
        for o_d, strip in deltas.items():
            strip = np.asarray(strip, dtype=dtype)
            if strip.shape != other_shape:
                raise ValueError(
                    f"delta strip for offset {o_d} has shape {strip.shape}, "
                    f"expected {other_shape}"
                )
            padded_deltas[int(o_d)] = pad_array(strip, radius_other, strip_boundary)

    predicted = np.zeros(other_shape, dtype=dtype)
    if constant_sum is not None:
        predicted += np.asarray(constant_sum, dtype=dtype)

    for offset, weight in spec:
        o_d = int(offset[reduce_axis])
        if o_d != 0 and o_d in padded_deltas:
            g = cs_ext + padded_deltas[o_d]
        else:
            g = cs_ext
        o_other = _other_offset(offset, reduce_axis)
        contribution = shifted_view(g, o_other, radius_other, other_shape)
        predicted += np.asarray(weight, dtype=dtype) * contribution
    return predicted
