"""Offline ABFT protector (Section 4 of the paper).

The offline variant detects errors only every Δ iterations (or once at
the end of the run). Between detections it records, for each sweep, the
tiny boundary-strip sums needed to replay the checksum interpolation;
at detection time it

1. computes the checksum of the current domain directly,
2. replays the Theorem-1 interpolation Δ times starting from the
   checksum stored with the last checkpoint (Figure 7 of the paper),
3. compares the two; on mismatch it rolls back to the last verified
   checkpoint and recomputes the whole window (Section 4.2 —
   checkpoint/rollback recovery is the correction mechanism, the
   checksums alone cannot correct offline), and
4. takes a fresh checkpoint of the now-verified state.

Deviation from the paper's reference implementation: the paper's offline
listing (Figure 7) drops the α/β boundary terms, which is exact only for
symmetric-weight stencils with bounce-back boundaries. This
implementation records the exact strips by default
(``track_strips=True``); disabling it reproduces the simplified
behaviour of Equations (8)-(9).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.backends import get_backend
from repro.backends.registry import BackendLike
from repro.checkpoint.recovery import rollback_and_recompute
from repro.checkpoint.store import Checkpoint, InMemoryCheckpointStore
from repro.core.checksums import constant_checksum
from repro.core.detection import detect_errors
from repro.core.interpolation import (
    extract_delta_strips,
    interpolate_checksum_reduced,
)
from repro.core.protector import InjectHook, Protector, RunReport, StepReport
from repro.core.thresholds import recommend_epsilon
from repro.stencil.boundary import BoundarySpec
from repro.stencil.grid import GridBase
from repro.stencil.spec import StencilSpec

__all__ = ["OfflineABFT"]


class OfflineABFT(Protector):
    """Periodic checksum detection coupled with checkpoint/rollback recovery.

    Parameters
    ----------
    spec, boundary, shape, dtype, constant:
        As for :class:`repro.core.online.OnlineABFT`.
    period:
        Detection (and checkpoint) period Δ in iterations. The paper's
        experiments use Δ = 16.
    epsilon:
        Detection threshold ε. Defaults to
        :func:`repro.core.thresholds.recommend_epsilon` with the given
        period (the replayed interpolation accumulates round-off over Δ
        steps, so the default grows slowly with Δ).
    verify_axis:
        Which checksum is verified (0 → column checksum ``b``, default).
    track_strips:
        Record exact α/β strips every sweep (default) or use the
        simplified interpolation of Eqs. (8)-(9).
    store:
        Checkpoint store; defaults to a fresh single-slot
        :class:`~repro.checkpoint.store.InMemoryCheckpointStore`.
    max_recovery_attempts:
        Upper bound on consecutive rollback attempts for one detection
        window (guards against persistent-fault livelock).
    metadata_self_check:
        Guard the protector's own state against corruption (default on).
        The working checkpoint checksum is validated against the
        independent copy stored with the checkpoint before every replay;
        on mismatch it is recomputed from the checkpoint snapshot
        instead of being trusted. Without this, a bit flip striking the
        *stored checksum* (rather than the domain) drives futile
        rollback/recompute cycles of perfectly healthy data until
        ``max_recovery_attempts`` is exhausted. Repairs are counted in
        ``total_metadata_repairs``.
    checksum_dtype:
        Accumulation dtype for checksums. Defaults to ``numpy.float64``
        so that the Δ-step replay does not itself drift past ε — a
        documented deviation from the paper's float32 checksums (see
        EXPERIMENTS.md).
    backend:
        Compute backend (registry name or instance) used for the sweeps
        and checksums. ``None`` follows the grid's backend. On the sweep
        that closes a detection window (and only there — intermediate
        sweeps need no checksum) the fused sweep+checksum primitive
        produces the verified checksum together with the sweep, unless a
        fault-injection hook is active (the hook must be able to corrupt
        the domain *before* the checksum is taken).
    block_steps:
        Temporal-blocking factor for :meth:`run`: advance the grid in
        blocked windows of up to this many fused sweeps per traversal
        (``grid.multi_step*``), folding checksums only at the window
        boundary — the natural fusion of the detection period with
        cache-resident blocking.  ``None`` (the default) blocks entire
        detection windows (``min(period, remaining)``) whenever blocking
        is applicable; ``1`` disables blocking.  Blocking requires
        ``track_strips=False`` — the exact-strip replay needs every
        intermediate padded state, which blocked windows never surface —
        so with ``track_strips=True`` the protector transparently runs
        single steps (an explicit ``block_steps > 1`` raises instead).
        Windows containing a pending fault-injection plan, hooks whose
        plans cannot be introspected, and the rollback replay always use
        the single-step path, so fault semantics are unchanged; states,
        checksums and reports are bit-identical to single stepping
        either way.
    """

    name = "offline-abft"

    def __init__(
        self,
        spec: StencilSpec,
        boundary: BoundarySpec,
        shape,
        dtype=np.float32,
        constant: Optional[np.ndarray] = None,
        period: int = 16,
        epsilon: Optional[float] = None,
        verify_axis: int = 0,
        track_strips: bool = True,
        store: Optional[InMemoryCheckpointStore] = None,
        max_recovery_attempts: int = 3,
        metadata_self_check: bool = True,
        checksum_dtype=np.float64,
        backend: BackendLike = None,
        block_steps: Optional[int] = None,
    ) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if verify_axis not in (0, 1):
            raise ValueError("verify_axis must be 0 (column) or 1 (row)")
        if block_steps is not None:
            block_steps = int(block_steps)
            if block_steps < 1:
                raise ValueError(
                    f"block_steps must be >= 1, got {block_steps}"
                )
            if block_steps > 1 and track_strips:
                raise ValueError(
                    "temporal blocking requires track_strips=False: the "
                    "exact-strip replay reads every intermediate padded "
                    "state, which blocked windows never surface"
                )
        self.block_steps = block_steps
        self.spec = spec
        self.boundary = BoundarySpec.from_any(boundary, spec.ndim)
        self.shape = tuple(int(n) for n in shape)
        if len(self.shape) != spec.ndim:
            raise ValueError(
                f"shape {self.shape} does not match stencil dimensionality {spec.ndim}"
            )
        self.dtype = np.dtype(dtype)
        self.checksum_dtype = None if checksum_dtype is None else np.dtype(checksum_dtype)
        self.period = int(period)
        self.verify_axis = verify_axis
        self.track_strips = bool(track_strips)
        self.radius = spec.radius()
        self.max_recovery_attempts = int(max_recovery_attempts)
        self.metadata_self_check = bool(metadata_self_check)
        self.backend = None if backend is None else get_backend(backend)
        self.store = store if store is not None else InMemoryCheckpointStore()
        if epsilon is None:
            # As for the online protector, the margin is governed by the
            # domain dtype; the period enters because the interpolation is
            # replayed Δ times before each comparison.
            epsilon = recommend_epsilon(
                self.shape, verify_axis, self.dtype, spec, period=self.period
            )
        self.epsilon = float(epsilon)
        cs_dtype = self.checksum_dtype or self.dtype
        self._constant_sum = constant_checksum(
            constant, verify_axis, self.shape, cs_dtype
        )
        self._n_reduce = self.shape[verify_axis]
        self._ckpt_checksum: Optional[np.ndarray] = None
        self._strips: List[Dict[int, np.ndarray]] = []
        self._since_checkpoint = 0
        self._pending_cs: Optional[np.ndarray] = None
        # Statistics exposed for the experiments.
        self.total_detections = 0
        self.total_rollbacks = 0
        self.total_recomputed_iterations = 0
        self.total_metadata_repairs = 0

    # -- construction helpers -------------------------------------------------
    @classmethod
    def for_grid(cls, grid: GridBase, **kwargs) -> "OfflineABFT":
        """Build a protector matching a grid's operator, boundary and shape."""
        return cls(
            grid.spec,
            grid.boundary,
            grid.shape,
            dtype=grid.dtype,
            constant=grid.constant,
            **kwargs,
        )

    # -- protector interface ---------------------------------------------------
    def reset(self) -> None:
        self._ckpt_checksum = None
        self._strips = []
        self._since_checkpoint = 0
        self._pending_cs = None
        self.store.clear()
        self.total_detections = 0
        self.total_rollbacks = 0
        self.total_recomputed_iterations = 0
        self.total_metadata_repairs = 0

    def _checksum(self, u: np.ndarray) -> np.ndarray:
        be = self.backend if self.backend is not None else get_backend()
        return be.checksum(u, self.verify_axis, dtype=self.checksum_dtype)

    def _checked_ckpt_checksum(self) -> Optional[np.ndarray]:
        """The working checkpoint checksum, validated against its duplicate.

        The checkpoint store keeps an independent copy of the checksum
        taken with the checkpoint; a mismatch between the two means a
        fault struck the protector's metadata, not the domain. The
        checksum is then recomputed from the checkpoint snapshot (the
        ground truth both copies were derived from) and both copies are
        repaired, so a corrupted checksum never drives futile rollbacks
        of healthy data.
        """
        cs = self._ckpt_checksum
        if not self.metadata_self_check or cs is None:
            return cs
        ckpt = self.store.latest()
        if ckpt is None:
            return cs
        dup = ckpt.checksums.get(self.verify_axis)
        if dup is None or np.array_equal(cs, dup):
            return cs
        self.total_metadata_repairs += 1
        cs = self._checksum(ckpt.snapshot.u)
        self._ckpt_checksum = cs
        ckpt.checksums[self.verify_axis] = cs.copy()
        return cs

    def _record_strips(self, grid: GridBase) -> None:
        # ``previous_padded`` is a live view into the grid's buffer pair
        # and will be overwritten by the next sweep; extract_delta_strips
        # reduces it into small freshly allocated vectors, so the strips
        # stored across the detection window never alias the buffers.
        if not self.track_strips:
            self._strips.append({})
            return
        strips = extract_delta_strips(
            grid.previous_padded, self.spec, self.radius, self.shape, self.verify_axis
        )
        self._strips.append(strips)

    def _take_checkpoint(self, grid: GridBase, cs: Optional[np.ndarray] = None) -> None:
        # ``cs`` lets a caller that just verified the domain reuse its
        # computed checksum instead of paying another reduction pass.
        if cs is None:
            cs = self._checksum(grid.u)
        self.store.save(
            Checkpoint(
                iteration=grid.iteration,
                snapshot=grid.snapshot(),
                checksums={self.verify_axis: cs.copy()},
            )
        )
        self._ckpt_checksum = cs
        self._strips = []
        self._since_checkpoint = 0

    def _replay_interpolation(self) -> np.ndarray:
        """Interpolate the checkpoint checksum forward through the window."""
        cs = self._checked_ckpt_checksum()
        for strips in self._strips:
            cs = interpolate_checksum_reduced(
                cs,
                self.spec,
                self.boundary,
                self.verify_axis,
                self._n_reduce,
                deltas=strips if self.track_strips else None,
                constant_sum=self._constant_sum,
            )
        return cs

    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        if grid.shape != self.shape:
            raise ValueError(
                f"grid shape {grid.shape} does not match protector shape {self.shape}"
            )
        if self._ckpt_checksum is None:
            # Initial verified state (t = 0 data assumed correct).
            self._take_checkpoint(grid)
        closes_window = self._since_checkpoint + 1 >= self.period
        if (
            inject is None
            and closes_window
            and hasattr(grid, "step_with_checksums")
        ):
            # The sweep that ends the detection window also produces the
            # checksum that will be verified — the fused kernel path.
            _, checksums = grid.step_with_checksums(
                (self.verify_axis,),
                checksum_dtype=self.checksum_dtype,
                backend=self.backend,
            )
            self._pending_cs = checksums[self.verify_axis]
        else:
            grid.step(backend=self.backend)
            if inject is not None:
                inject(grid, grid.iteration)
        self._record_strips(grid)
        self._since_checkpoint += 1

        if self._since_checkpoint >= self.period:
            return self._verify_and_recover(grid, inject)
        return StepReport(iteration=grid.iteration, detection_performed=False)

    # -- temporal blocking -----------------------------------------------------
    def _blocked_window(
        self, grid: GridBase, inject: Optional[InjectHook], remaining: int
    ) -> int:
        """How many steps of the current window may run as one blocked call.

        Returns 1 whenever blocking does not apply: strip tracking on,
        an explicit ``block_steps=1``, a grid without the blocked
        primitive, or an injection hook with a pending plan inside the
        candidate window (or whose plans cannot be introspected at all —
        fault semantics always win over locality).
        """
        if self.track_strips or self.block_steps == 1:
            return 1
        if not hasattr(grid, "multi_step_with_checksums"):
            return 1
        cap = self.period if self.block_steps is None else self.block_steps
        window_left = self.period - self._since_checkpoint
        k = min(cap, window_left, remaining)
        if k <= 1:
            return 1
        if inject is not None:
            plans = getattr(inject, "plans", None)
            if plans is None:
                return 1
            cur = grid.iteration
            for plan in plans:
                it = getattr(plan, "iteration", None)
                if it is None:
                    return 1
                if cur < it <= cur + k:
                    # Stop the blocked window right before the strike so
                    # the injected iteration runs the single-step path.
                    k = it - cur - 1
            if k <= 1:
                return 1
        return k

    def _blocked_step(
        self, grid: GridBase, k: int, inject: Optional[InjectHook]
    ) -> List[StepReport]:
        """One blocked window chunk of ``k`` fused sweeps (checksum carry).

        Mirrors ``k`` calls of :meth:`step` exactly: the ``k-1``
        intermediate iterations produce plain no-detection reports and
        empty strip records, the final sub-step folds the fused checksum
        iff it closes the detection window with no hook active, and the
        window-closing verification (including any rollback, which
        replays single steps) is unchanged.
        """
        if self._ckpt_checksum is None:
            self._take_checkpoint(grid)
        start = grid.iteration
        closes_window = self._since_checkpoint + k >= self.period
        if closes_window and inject is None:
            _, checksums = grid.multi_step_with_checksums(
                k,
                (self.verify_axis,),
                checksum_dtype=self.checksum_dtype,
                backend=self.backend,
            )
            self._pending_cs = checksums[self.verify_axis]
        else:
            grid.multi_step(k, backend=self.backend)
        # track_strips is False on every blocked path: k empty records.
        self._strips.extend({} for _ in range(k))
        self._since_checkpoint += k
        reports = [
            StepReport(iteration=it, detection_performed=False)
            for it in range(start + 1, start + k)
        ]
        if self._since_checkpoint >= self.period:
            reports.append(self._verify_and_recover(grid, inject))
        else:
            reports.append(
                StepReport(iteration=grid.iteration, detection_performed=False)
            )
        return reports

    def run(
        self,
        grid: GridBase,
        iterations: int,
        inject: Optional[InjectHook] = None,
    ) -> RunReport:
        """Advance ``iterations`` sweeps, temporally blocked where possible.

        Between detection boundaries the grid advances through
        ``multi_step(min(period, remaining))`` windows — one traversal
        per window instead of per step — falling back to single
        :meth:`step` calls whenever blocking does not apply (see
        ``block_steps``).  Reports are identical to the single-step loop.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        report = RunReport()
        remaining = iterations
        while remaining > 0:
            k = self._blocked_window(grid, inject, remaining)
            if k <= 1:
                report.add(self.step(grid, inject=inject))
                remaining -= 1
                continue
            for step_report in self._blocked_step(grid, k, inject):
                report.add(step_report)
            remaining -= k
        final = self.finalize(grid)
        if final is not None:
            report.add(final)
        return report

    def finalize(self, grid: GridBase) -> Optional[StepReport]:
        """Verify any partially filled detection window at the end of the run."""
        if self._since_checkpoint == 0 or self._ckpt_checksum is None:
            return None
        return self._verify_and_recover(grid, None)

    # -- detection + recovery ---------------------------------------------------
    def _verify_and_recover(
        self, grid: GridBase, inject: Optional[InjectHook]
    ) -> StepReport:
        report = StepReport(iteration=grid.iteration, detection_performed=True)
        attempts = 0
        while True:
            if self._pending_cs is not None:
                # Checksum produced by the fused window-closing sweep;
                # valid only for the domain as the sweep left it, so it
                # is consumed once and recomputed after any rollback.
                cs_comp = self._pending_cs
                self._pending_cs = None
            else:
                cs_comp = self._checksum(grid.u)
            cs_pred = self._replay_interpolation()
            detection = detect_errors(cs_comp, cs_pred, self.epsilon)
            report.max_relative_error = max(
                report.max_relative_error, detection.max_relative_error
            )
            if not detection.detected:
                break
            if attempts == 0:
                report.errors_detected = detection.n_errors
                self.total_detections += detection.n_errors
            attempts += 1
            if attempts > self.max_recovery_attempts:
                report.errors_uncorrected = detection.n_errors
                break
            checkpoint = self.store.latest()
            if checkpoint is None:
                report.errors_uncorrected = detection.n_errors
                break
            self.store.mark_restore()
            window = self._since_checkpoint
            self._strips = []
            recomputed = rollback_and_recompute(
                grid,
                checkpoint,
                window,
                inject=inject,
                on_step=self._record_strips,
                backend=self.backend,
            )
            report.rollback = True
            report.recomputed_iterations += recomputed
            self.total_rollbacks += 1
            self.total_recomputed_iterations += recomputed
            # Loop back to re-verify the recomputed window.
        report.errors_corrected = max(
            0, report.errors_detected - report.errors_uncorrected
        )
        # ``cs_comp`` matches grid.u whenever the loop exited clean; on an
        # uncorrectable exit the domain was not modified after cs_comp
        # either, so the checksum can seed the next checkpoint unchanged.
        self._take_checkpoint(grid, cs=cs_comp)
        return report
