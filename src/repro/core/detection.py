"""Silent-data-corruption detection (Theorem 2, Section 3.4 of the paper).

Because of floating-point round-off the computed and interpolated
checksums are never bit-identical, so the comparison uses the *relative*
error of each checksum entry,

.. math::

    \\left| \\frac{a'^{(t+1)}_x}{a^{(t+1)}_x} - 1 \\right| > \\varepsilon,

and an error flag is raised whenever it exceeds a detection threshold ε
(1e-5 in the paper's experiments). The indices of the flagged entries
give the row (respectively column, respectively layer) of the corrupted
point and are later consumed by the correction step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["DetectionResult", "relative_discrepancy", "detect_errors"]


@dataclass
class DetectionResult:
    """Outcome of comparing a computed checksum against an interpolated one.

    Attributes
    ----------
    mismatch_indices:
        Integer array of shape ``(m, cs_ndim)``; each row is the index of
        a checksum entry whose relative error exceeded the threshold.
        For a 2D domain the checksum is 1D so each row has one component
        (the row/column index); for a 3D domain each row is ``(x, z)`` or
        ``(y, z)``.
    relative_errors:
        Relative error of each flagged entry, shape ``(m,)``.
    max_relative_error:
        Largest relative error over the *whole* checksum (flagged or not);
        useful for threshold calibration and false-positive analysis.
    threshold:
        The ε used for this comparison.
    n_checked:
        Total number of checksum entries compared.
    """

    mismatch_indices: np.ndarray
    relative_errors: np.ndarray
    max_relative_error: float
    threshold: float
    n_checked: int

    @property
    def detected(self) -> bool:
        """``True`` iff at least one checksum entry exceeded the threshold."""
        return len(self.mismatch_indices) > 0

    @property
    def n_errors(self) -> int:
        return int(len(self.mismatch_indices))

    def indices_as_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Flagged indices as plain Python tuples."""
        return tuple(tuple(int(v) for v in row) for row in self.mismatch_indices)

    def __bool__(self) -> bool:
        return self.detected

    def __len__(self) -> int:
        return self.n_errors


def relative_discrepancy(
    computed: np.ndarray, interpolated: np.ndarray
) -> np.ndarray:
    """Element-wise relative error ``|interpolated / computed - 1|``.

    Entries where the computed checksum is exactly zero fall back to the
    absolute difference ``|interpolated - computed|`` so that a corrupted
    zero still registers a non-zero discrepancy instead of a division by
    zero.
    """
    computed = np.asarray(computed)
    interpolated = np.asarray(interpolated)
    if computed.shape != interpolated.shape:
        raise ValueError(
            f"checksum shapes differ: {computed.shape} vs {interpolated.shape}"
        )
    diff = np.abs(interpolated.astype(np.float64) - computed.astype(np.float64))
    denom = np.abs(computed.astype(np.float64))
    out = np.where(denom > 0.0, diff / np.where(denom > 0.0, denom, 1.0), diff)
    return out


def detect_errors(
    computed: np.ndarray,
    interpolated: np.ndarray,
    threshold: float,
) -> DetectionResult:
    """Compare a computed checksum against its interpolated prediction.

    Parameters
    ----------
    computed:
        Checksum computed directly from the step-``t+1`` domain
        (Eqs. 2-3).
    interpolated:
        Checksum predicted from the step-``t`` checksum via Theorem 1.
    threshold:
        Detection threshold ε (relative).

    Returns
    -------
    DetectionResult
    """
    if threshold <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    rel = relative_discrepancy(computed, interpolated)
    flagged = rel > threshold
    idx = np.argwhere(flagged)
    errors = rel[flagged]
    max_rel = float(rel.max()) if rel.size else 0.0
    return DetectionResult(
        mismatch_indices=idx,
        relative_errors=np.asarray(errors, dtype=np.float64),
        max_relative_error=max_rel,
        threshold=float(threshold),
        n_checked=int(rel.size),
    )
