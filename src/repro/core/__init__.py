"""ABFT core: the paper's primary contribution.

This subpackage implements the algorithm-based fault-tolerance scheme of
Cavelan & Ciorba (CLUSTER 2019) for arbitrary stencil computations:

``checksums``
    Row/column checksum vectors of the stencil domain (Eqs. 2-3).
``interpolation``
    Checksum interpolation (Theorem 1): predicting the step-``t+1``
    checksums from the step-``t`` checksums, including the exact α/β
    boundary-correction terms for every boundary condition, the
    simplified variant (Eqs. 8-9), and the strip-based variant used by
    the offline protector.
``detection``
    Relative-error comparison of computed vs. interpolated checksums
    (Theorem 2, Section 3.4).
``correction``
    Error localisation from the row/column mismatch pattern and value
    recovery (Eq. 10, Section 3.5).
``online``
    :class:`OnlineABFT` — detect and correct after every sweep.
``offline``
    :class:`OfflineABFT` — periodic detection with checkpoint/rollback
    recovery (Section 4).
``protector``
    The common protector interface, :class:`NoProtection` baseline and
    :class:`StepReport` bookkeeping.
``thresholds``
    Detection-threshold (ε) selection helpers.
``layered``
    Helpers for locating errors in 3D (per-layer) domains.
"""

from repro.core.checksums import (
    checksum,
    row_checksum,
    column_checksum,
    both_checksums,
    constant_checksum,
)
from repro.core.interpolation import (
    interpolate_checksum,
    interpolate_checksum_padded,
    interpolate_checksum_reduced,
    extract_delta_strips,
    reduced_boundary,
)
from repro.core.detection import DetectionResult, detect_errors, relative_discrepancy
from repro.core.correction import CorrectionRecord, correct_errors, match_detections
from repro.core.protector import Protector, NoProtection, StepReport
from repro.core.online import OnlineABFT
from repro.core.offline import OfflineABFT
from repro.core.thresholds import PAPER_EPSILON, recommend_epsilon

__all__ = [
    "checksum",
    "row_checksum",
    "column_checksum",
    "both_checksums",
    "constant_checksum",
    "interpolate_checksum",
    "interpolate_checksum_padded",
    "interpolate_checksum_reduced",
    "extract_delta_strips",
    "reduced_boundary",
    "DetectionResult",
    "detect_errors",
    "relative_discrepancy",
    "CorrectionRecord",
    "correct_errors",
    "match_detections",
    "Protector",
    "NoProtection",
    "StepReport",
    "OnlineABFT",
    "OfflineABFT",
    "PAPER_EPSILON",
    "recommend_epsilon",
]
