"""Checksum vectors of the stencil domain (Eqs. 2-3 of the paper).

For a 2D domain ``u`` of shape ``(nx, ny)`` indexed ``u[x, y]``:

* the **row checksum** ``a`` has one entry per row:
  ``a[x] = sum_y u[x, y]`` (reduction along axis 1);
* the **column checksum** ``b`` has one entry per column:
  ``b[y] = sum_x u[x, y]`` (reduction along axis 0).

For a 3D domain of shape ``(nx, ny, nz)`` the same reductions are applied
per layer, producing ``a`` of shape ``(nx, nz)`` and ``b`` of shape
``(ny, nz)`` — each z-layer keeps its own independent pair of checksum
vectors, which is exactly the paper's per-layer parallel application
(Section 5.1: "each layer uses its own independent checksums").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "checksum",
    "row_checksum",
    "column_checksum",
    "both_checksums",
    "constant_checksum",
    "patch_checksum",
]

#: Axis reduced by the row checksum (sum over y).
ROW_REDUCE_AXIS = 1
#: Axis reduced by the column checksum (sum over x).
COLUMN_REDUCE_AXIS = 0


def checksum(
    u: np.ndarray, reduce_axis: int, dtype: Optional[np.dtype] = None
) -> np.ndarray:
    """Checksum of ``u`` along ``reduce_axis``.

    Parameters
    ----------
    u:
        Domain array (2D or 3D).
    reduce_axis:
        Axis summed over (0 for the column checksum, 1 for the row
        checksum).
    dtype:
        Optional accumulation dtype. The default accumulates in the
        domain dtype, which reproduces the paper's float32 behaviour;
        passing ``numpy.float64`` gives a higher-precision variant
        (used by the ablation benchmarks).
    """
    if reduce_axis not in (0, 1):
        raise ValueError(
            f"reduce_axis must be 0 (column) or 1 (row), got {reduce_axis}"
        )
    if u.ndim not in (2, 3):
        raise ValueError(f"checksums are defined for 2D/3D domains, got {u.ndim}D")
    return u.sum(axis=reduce_axis, dtype=dtype)


def row_checksum(u: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Row checksum ``a`` (Eq. 2): ``a[x] = sum_y u[x, y]``."""
    return checksum(u, ROW_REDUCE_AXIS, dtype=dtype)


def column_checksum(u: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Column checksum ``b`` (Eq. 3): ``b[y] = sum_x u[x, y]``."""
    return checksum(u, COLUMN_REDUCE_AXIS, dtype=dtype)


def both_checksums(
    u: np.ndarray, dtype: Optional[np.dtype] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Row and column checksums as a ``(a, b)`` pair."""
    return row_checksum(u, dtype=dtype), column_checksum(u, dtype=dtype)


def constant_checksum(
    constant: Optional[np.ndarray], reduce_axis: int, shape, dtype
) -> Optional[np.ndarray]:
    """Checksum of the constant term ``C`` (the ``c_x`` / ``c_y`` of Theorem 1).

    Returns ``None`` when there is no constant term. The result is
    pre-computable once per run because ``C`` does not change between
    iterations (paper, proof of Theorem 1: "c_x ... is constant and can
    be pre-computed").
    """
    if constant is None:
        return None
    constant = np.asarray(constant)
    if constant.shape != tuple(shape):
        raise ValueError(
            f"constant term has shape {constant.shape}, expected {tuple(shape)}"
        )
    return constant.sum(axis=reduce_axis).astype(dtype, copy=False)


def patch_checksum(
    cs: np.ndarray, index, old_value: float, new_value: float
) -> None:
    """Update a checksum in place after a domain point changed value.

    Used after error correction so that the (corrected) computed
    checksums remain consistent with the (corrected) domain and can be
    carried into the next iteration ("checksums also need to be updated
    with the correct value to maintain the correctness of subsequent
    stencil iterations", Section 3.5).
    """
    cs[index] += np.asarray(new_value - old_value, dtype=cs.dtype)
