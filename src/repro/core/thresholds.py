"""Detection-threshold (ε) selection.

The detection threshold trades false positives against detection
sensitivity: it must sit above the floating-point discrepancy between
the two checksum computation orders (which grows with the reduction
length and with the stencil's weight magnitudes) yet below the relative
perturbation caused by the silent errors one wants to catch.

The paper uses ε = 1e-5 for both tile sizes (64x64x8 and 512x512x8) and
reports no false positives while detecting every error above the fifth
decimal (Section 5.1). :func:`recommend_epsilon` reproduces that choice
for float32 domains of comparable size and scales it for other dtypes,
domain sizes and detection periods.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.stencil.spec import StencilSpec

__all__ = ["PAPER_EPSILON", "recommend_epsilon"]

#: The detection threshold used throughout the paper's evaluation.
PAPER_EPSILON = 1e-5


def recommend_epsilon(
    shape: Sequence[int],
    reduce_axis: int,
    dtype=np.float32,
    spec: StencilSpec | None = None,
    period: int = 1,
    safety: float = 64.0,
    floor: float = 1e-14,
) -> float:
    """Suggest a detection threshold for a given configuration.

    The estimate models the relative round-off discrepancy between the
    directly computed checksum (a length-``n`` pairwise summation) and
    the interpolated checksum (a ``k``-term weighted accumulation of the
    previous checksum), compounded over ``period`` interpolation steps
    for the offline variant:

    ``eps ≈ safety * machine_eps * sqrt(n) * max(1, sum|w|) * period``

    The result is clamped from below by ``floor`` and never returned
    smaller than the paper's 1e-5 for float32 domains of the paper's
    scale, so default configurations reproduce the published setting.

    Parameters
    ----------
    shape:
        Domain shape.
    reduce_axis:
        Axis summed over by the verified checksum.
    dtype:
        Domain dtype.
    spec:
        Optional stencil (its absolute weight sum bounds the per-step
        amplification).
    period:
        Detection period Δ (1 for the online protector).
    safety:
        Multiplicative safety margin.
    floor:
        Hard lower bound on the returned threshold.
    """
    shape = tuple(int(n) for n in shape)
    if reduce_axis < 0 or reduce_axis >= len(shape):
        raise ValueError(f"reduce_axis {reduce_axis} out of range for shape {shape}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    n = shape[reduce_axis]
    machine_eps = float(np.finfo(dtype).eps)
    amplification = 1.0
    if spec is not None:
        amplification = max(1.0, spec.abs_weight_sum())
    estimate = safety * machine_eps * math.sqrt(max(n, 1)) * amplification * period
    estimate = max(estimate, floor)
    if np.dtype(dtype) == np.dtype(np.float32):
        # Keep the paper's published operating point for float32 domains.
        estimate = max(estimate, PAPER_EPSILON)
    return float(estimate)
