"""Error localisation and correction (Section 3.5, Eq. 10 of the paper).

Once a mismatch is detected in one checksum vector, the other checksum
vector is computed and compared too; the cross product of the flagged
row index and the flagged column index gives the exact location of the
corrupted point. The correct value is recovered by subtracting the
corrupted value from either checksum residual:

.. math::

    \\mathrm{correct}^{(t+1)}_{e_x,e_y}
        = a'^{(t+1)}_{e_x} - (a^{(t+1)}_{e_x} - u^{(t+1)}_{e_x,e_y})
        = b'^{(t+1)}_{e_y} - (b^{(t+1)}_{e_y} - u^{(t+1)}_{e_x,e_y})

Both estimates should agree; the implementation averages them by
default (as the paper's reference listing in Figure 6 does) or can use
either one alone. The computed checksums are patched afterwards so that
they remain consistent with the corrected domain.

When several errors are present the row/column flags no longer pair up
uniquely; :func:`match_detections` pairs them by matching residual
magnitudes (each error adds the *same* residual to its row and to its
column checksum), and gives up on ambiguous leftovers, which are
reported as uncorrected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.checksums import patch_checksum
from repro.core.detection import DetectionResult

__all__ = ["CorrectionRecord", "match_detections", "correct_errors"]


@dataclass
class CorrectionRecord:
    """Bookkeeping for a single corrected domain point."""

    index: Tuple[int, ...]
    old_value: float
    corrected_value: float
    row_estimate: float
    column_estimate: float

    @property
    def applied_change(self) -> float:
        return self.corrected_value - self.old_value


def _group_by_layer(indices: np.ndarray) -> Dict[int, List[int]]:
    """Group 3D checksum mismatch indices ``(pos, z)`` by layer ``z``."""
    groups: Dict[int, List[int]] = {}
    for row in indices:
        pos, z = int(row[0]), int(row[1])
        groups.setdefault(z, []).append(pos)
    return groups


def _pair_by_residual(
    rows: Sequence[int],
    cols: Sequence[int],
    row_residual,
    col_residual,
) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
    """Greedy pairing of flagged rows and columns by residual similarity.

    Each corrupted point contributes the same residual
    (``computed - interpolated``) to its row and to its column checksum,
    so matching residual values pairs rows with columns. Returns the
    list of pairs plus the unpaired leftovers.
    """
    rows = list(rows)
    cols = list(cols)
    if len(rows) == 1 and len(cols) == 1:
        return [(rows[0], cols[0])], [], []
    # Massive flag counts (e.g. a corrupted value that propagated across a
    # whole detection window) would make the greedy quadratic pairing
    # below prohibitively slow; sort both sides by residual and pair in
    # order instead — residual-sorted order is exactly what the greedy
    # pass would produce when every row/column holds one error.
    if len(rows) * len(cols) > 4096 and len(rows) == len(cols):
        rows_sorted = sorted(rows, key=lambda r: float(row_residual(r)))
        cols_sorted = sorted(cols, key=lambda c: float(col_residual(c)))
        return list(zip(rows_sorted, cols_sorted)), [], []
    pairs: List[Tuple[int, int]] = []
    remaining_cols = list(cols)
    unpaired_rows: List[int] = []
    for r in rows:
        if not remaining_cols:
            unpaired_rows.append(r)
            continue
        rres = float(row_residual(r))
        # Pick the column whose residual is closest (relative) to the row's.
        best = min(
            remaining_cols,
            key=lambda c: abs(float(col_residual(c)) - rres),
        )
        scale = max(abs(rres), abs(float(col_residual(best))), 1e-30)
        if abs(float(col_residual(best)) - rres) <= 1e-3 * scale or len(rows) == len(cols):
            pairs.append((r, best))
            remaining_cols.remove(best)
        else:
            unpaired_rows.append(r)
    return pairs, unpaired_rows, remaining_cols


def match_detections(
    row_detection: DetectionResult,
    column_detection: DetectionResult,
    a_computed: np.ndarray,
    a_interpolated: np.ndarray,
    b_computed: np.ndarray,
    b_interpolated: np.ndarray,
    domain_ndim: int,
) -> Tuple[List[Tuple[int, ...]], int]:
    """Locate corrupted domain points from row/column checksum mismatches.

    Parameters
    ----------
    row_detection, column_detection:
        Detection results for the row checksum ``a`` and the column
        checksum ``b``.
    a_computed, a_interpolated, b_computed, b_interpolated:
        The four checksum arrays (used for residual-based pairing when
        several errors are present).
    domain_ndim:
        2 for a 2D domain, 3 for a per-layer-protected 3D domain.

    Returns
    -------
    (locations, unresolved):
        ``locations`` is a list of full domain indices ``(x, y)`` or
        ``(x, y, z)``; ``unresolved`` counts flagged checksum entries
        that could not be paired.
    """
    if domain_ndim == 2:
        rows = [int(i[0]) for i in row_detection.mismatch_indices]
        cols = [int(i[0]) for i in column_detection.mismatch_indices]
        pairs, ur, uc = _pair_by_residual(
            rows,
            cols,
            lambda r: a_computed[r] - a_interpolated[r],
            lambda c: b_computed[c] - b_interpolated[c],
        )
        locations = [(r, c) for r, c in pairs]
        return locations, len(ur) + len(uc)

    if domain_ndim == 3:
        row_groups = _group_by_layer(row_detection.mismatch_indices)
        col_groups = _group_by_layer(column_detection.mismatch_indices)
        locations: List[Tuple[int, ...]] = []
        unresolved = 0
        for z in sorted(set(row_groups) | set(col_groups)):
            rows = row_groups.get(z, [])
            cols = col_groups.get(z, [])
            if not rows or not cols:
                unresolved += len(rows) + len(cols)
                continue
            pairs, ur, uc = _pair_by_residual(
                rows,
                cols,
                lambda r, z=z: a_computed[r, z] - a_interpolated[r, z],
                lambda c, z=z: b_computed[c, z] - b_interpolated[c, z],
            )
            locations.extend((r, c, z) for r, c in pairs)
            unresolved += len(ur) + len(uc)
        return locations, unresolved

    raise ValueError(f"domain_ndim must be 2 or 3, got {domain_ndim}")


def correct_errors(
    u: np.ndarray,
    locations: Sequence[Tuple[int, ...]],
    a_computed: np.ndarray,
    a_interpolated: np.ndarray,
    b_computed: np.ndarray,
    b_interpolated: np.ndarray,
    strategy: str = "average",
) -> List[CorrectionRecord]:
    """Correct corrupted domain points in place (Eq. 10).

    Parameters
    ----------
    u:
        The step-``t+1`` domain (modified in place).
    locations:
        Full domain indices of the corrupted points, as produced by
        :func:`match_detections`.
    a_computed, a_interpolated:
        Row checksum computed from the corrupted domain and its
        interpolated prediction. ``a_computed`` is patched in place after
        each correction so it remains consistent with the repaired domain.
    b_computed, b_interpolated:
        Same for the column checksum.
    strategy:
        ``"average"`` (paper's Figure 6), ``"row"`` or ``"column"`` —
        which checksum estimate to write back.

    Returns
    -------
    list of CorrectionRecord
    """
    if strategy not in ("average", "row", "column"):
        raise ValueError(f"unknown correction strategy {strategy!r}")
    records: List[CorrectionRecord] = []
    ndim = u.ndim
    for loc in locations:
        loc = tuple(int(v) for v in loc)
        if len(loc) != ndim:
            raise ValueError(
                f"location {loc} does not match domain dimensionality {ndim}"
            )
        x, y = loc[0], loc[1]
        if ndim == 2:
            a_idx: Tuple[int, ...] = (x,)
            b_idx: Tuple[int, ...] = (y,)
        else:
            z = loc[2]
            a_idx = (x, z)
            b_idx = (y, z)
        old = float(u[loc])
        # Subtract the erroneous value from each computed checksum and use
        # the interpolated checksum to solve for the correct value.
        row_estimate = float(a_interpolated[a_idx] - (a_computed[a_idx] - old))
        col_estimate = float(b_interpolated[b_idx] - (b_computed[b_idx] - old))
        if strategy == "average":
            corrected = 0.5 * (row_estimate + col_estimate)
        elif strategy == "row":
            corrected = row_estimate
        else:
            corrected = col_estimate
        u[loc] = corrected
        patch_checksum(a_computed, a_idx, old, corrected)
        patch_checksum(b_computed, b_idx, old, corrected)
        records.append(
            CorrectionRecord(
                index=loc,
                old_value=old,
                corrected_value=float(corrected),
                row_estimate=row_estimate,
                column_estimate=col_estimate,
            )
        )
    return records
