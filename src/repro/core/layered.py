"""Per-layer helpers for 3D (layered) ABFT application.

The paper applies the 2D ABFT scheme independently to every z-layer of a
3D domain (Section 3, Section 5.1). The vectorised implementation in
:mod:`repro.core.interpolation` already processes all layers in one call
(the layer axis is simply one of the non-reduced axes), so these helpers
only provide the per-layer views and statistics used by tests, examples
and the parallel runner.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.checksums import column_checksum, row_checksum

__all__ = [
    "layer_view",
    "layer_checksums",
    "split_checksum_by_layer",
    "group_locations_by_layer",
]


def layer_view(u: np.ndarray, z: int) -> np.ndarray:
    """View of layer ``z`` of a 3D domain ``(nx, ny, nz)``."""
    if u.ndim != 3:
        raise ValueError(f"layer_view expects a 3D domain, got {u.ndim}D")
    return u[:, :, z]


def layer_checksums(u: np.ndarray, z: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row and column checksum of a single layer (``(a, b)`` pair)."""
    layer = layer_view(u, z)
    return row_checksum(layer), column_checksum(layer)


def split_checksum_by_layer(cs: np.ndarray) -> List[np.ndarray]:
    """Split a 3D-domain checksum ``(n, nz)`` into per-layer 1D vectors.

    The full-domain checksum of a 3D array (e.g. ``u.sum(axis=0)`` of
    shape ``(ny, nz)``) holds one column per layer; this returns the
    per-layer vectors in layer order, demonstrating the equivalence
    between the vectorised all-layer computation and the paper's
    per-layer formulation.
    """
    if cs.ndim != 2:
        raise ValueError(f"expected a 2D layered checksum, got {cs.ndim}D")
    return [np.ascontiguousarray(cs[:, z]) for z in range(cs.shape[1])]


def group_locations_by_layer(
    locations: List[Tuple[int, int, int]]
) -> Dict[int, List[Tuple[int, int]]]:
    """Group 3D error locations ``(x, y, z)`` by layer ``z``."""
    grouped: Dict[int, List[Tuple[int, int]]] = {}
    for x, y, z in locations:
        grouped.setdefault(int(z), []).append((int(x), int(y)))
    return grouped
