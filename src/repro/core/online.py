"""Online ABFT protector (Section 3 of the paper).

After every stencil sweep the online protector

1. computes **one** checksum vector of the new domain (the column
   checksum ``b`` by default, as in the paper's Figure 2 listing),
2. interpolates the same checksum from the previous step's checksum
   using Theorem 1,
3. compares the two element-wise (Section 3.4); and, only if a mismatch
   is found,
4. lazily computes the *other* checksum pair (from the still-alive
   previous domain and from the corrupted new domain), locates the
   corrupted point(s) from the row/column mismatch pattern and corrects
   them in place using Eq. 10 (Section 3.5), patching the checksums so
   that the next iteration starts from a consistent state.

The "only one checksum per iteration" recommendation of Section 3.2 is
the default; ``eager_row_checksum=True`` computes both every iteration
(the ablation benchmark compares the two).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends import ChecksumMap, get_backend
from repro.backends.registry import BackendLike
from repro.core.checksums import constant_checksum
from repro.core.correction import correct_errors, match_detections
from repro.core.detection import detect_errors
from repro.core.interpolation import interpolate_checksum_padded
from repro.core.protector import InjectHook, Protector, StepReport
from repro.core.thresholds import recommend_epsilon
from repro.stencil.boundary import BoundarySpec
from repro.stencil.grid import GridBase
from repro.stencil.spec import StencilSpec

__all__ = ["OnlineABFT"]

_ROW_AXIS = 1     # row checksum a reduces over y
_COLUMN_AXIS = 0  # column checksum b reduces over x


class OnlineABFT(Protector):
    """Detect and correct silent data corruptions after every sweep.

    Parameters
    ----------
    spec:
        The stencil operator of the protected computation.
    boundary:
        Boundary specification of the protected domain.
    shape:
        Domain shape (2D ``(nx, ny)`` or 3D ``(nx, ny, nz)``).
    dtype:
        Domain dtype.
    constant:
        Optional constant term ``C`` of the sweep (its checksums are
        pre-computed once, as in the proof of Theorem 1).
    epsilon:
        Detection threshold ε. Defaults to
        :func:`repro.core.thresholds.recommend_epsilon` for the given
        configuration (1e-5 for paper-scale float32 domains).
    verify_axis:
        Which checksum is computed and verified every iteration:
        0 → column checksum ``b`` (paper default), 1 → row checksum ``a``.
    correction_strategy:
        ``"average"`` (paper default), ``"row"`` or ``"column"``.
    eager_row_checksum:
        Compute both checksums every iteration instead of lazily on
        detection (ablation switch).
    checksum_dtype:
        Accumulation dtype for checksums. Defaults to ``numpy.float64``:
        accumulating the float32 domain in double precision keeps the
        round-off discrepancy between the computed and the interpolated
        checksum orders of magnitude below the paper's ε = 1e-5, which
        removes the false-positive risk the paper manages by tuning tile
        sizes (Section 5.1). Pass ``None`` to accumulate in the domain
        dtype exactly as the paper's fused float32 kernel does (the
        ablation benchmark compares the two).
    refresh_checksums:
        After correcting a point, recompute the affected checksum entries
        directly from the repaired domain instead of only patching them
        (the paper's Figure 6 patches). Patching a checksum that briefly
        held a huge corrupted value leaves a large cancellation residue
        in float32, which can trigger spurious detections on later
        iterations; the refresh costs one row/column sum per corrected
        point and avoids that. Set to ``False`` to reproduce the paper's
        listing exactly.
    metadata_self_check:
        Guard the protector's own state against corruption (default on).
        Every stored previous-step checksum is kept twice; before it is
        used for interpolation the two copies are compared, and on
        mismatch the checksum is recomputed from the still-alive
        previous domain instead of being trusted. Without this, a bit
        flip striking the *stored checksum* (rather than the domain)
        triggers a one-sided detection and a bogus correction of healthy
        data. Repairs are counted in ``total_metadata_repairs``.
    backend:
        Compute backend (registry name or instance) used for the fused
        sweep+checksum step and for any checksum the protector computes
        itself. ``None`` follows the grid's backend (which in turn
        defaults to the process-wide selection).

    Notes
    -----
    When :meth:`step` is called without a fault-injection hook the sweep
    and the verified checksum come from the backend's *fused*
    ``sweep_with_checksums`` primitive — the checksum is produced by the
    sweep itself, as in the paper's fused float32 kernel. With an
    ``inject`` hook the checksum is recomputed from the (possibly
    corrupted) domain after the hook runs, preserving the paper's
    injection semantics ("after the stencil point ... has been updated");
    a checksum fused into the sweep would otherwise be blind to a fault
    landing between the sweep and the verification.

    Both paths are compatible with the grids' in-place buffer pair: the
    verified checksum always reflects the buffer contents at verification
    time (fused checksums are produced *by* the write into the buffer;
    the injection path re-reduces the buffer after the hook mutated it),
    and corrections write back through ``grid.u`` into the same buffer
    the next sweep's ghost refresh re-reads.
    """

    name = "online-abft"

    def __init__(
        self,
        spec: StencilSpec,
        boundary: BoundarySpec,
        shape,
        dtype=np.float32,
        constant: Optional[np.ndarray] = None,
        epsilon: Optional[float] = None,
        verify_axis: int = _COLUMN_AXIS,
        correction_strategy: str = "average",
        eager_row_checksum: bool = False,
        checksum_dtype=np.float64,
        refresh_checksums: bool = True,
        metadata_self_check: bool = True,
        backend: BackendLike = None,
    ) -> None:
        if verify_axis not in (0, 1):
            raise ValueError("verify_axis must be 0 (column) or 1 (row)")
        self.spec = spec
        self.boundary = BoundarySpec.from_any(boundary, spec.ndim)
        self.shape = tuple(int(n) for n in shape)
        if len(self.shape) != spec.ndim:
            raise ValueError(
                f"shape {self.shape} does not match stencil dimensionality {spec.ndim}"
            )
        self.dtype = np.dtype(dtype)
        self.checksum_dtype = None if checksum_dtype is None else np.dtype(checksum_dtype)
        self.verify_axis = verify_axis
        self.other_axis = 1 - verify_axis
        self.correction_strategy = correction_strategy
        self.eager_row_checksum = bool(eager_row_checksum)
        self.refresh_checksums = bool(refresh_checksums)
        self.metadata_self_check = bool(metadata_self_check)
        self.backend = None if backend is None else get_backend(backend)
        self.radius = spec.radius()
        if epsilon is None:
            # The detection margin is governed by the *domain* dtype (the
            # sweep rounds every point in that precision); the checksum
            # accumulation dtype only tightens it further.
            epsilon = recommend_epsilon(self.shape, verify_axis, self.dtype, spec)
        self.epsilon = float(epsilon)
        cs_dtype = self.checksum_dtype or self.dtype
        self._constant_sums = {
            axis: constant_checksum(constant, axis, self.shape, cs_dtype)
            for axis in (0, 1)
        }
        self._prev_cs = {0: None, 1: None}
        self._prev_cs_dup = {0: None, 1: None}
        # Statistics exposed for the experiments.
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0
        self.total_metadata_repairs = 0

    # -- construction helpers -------------------------------------------------
    @classmethod
    def for_grid(cls, grid: GridBase, **kwargs) -> "OnlineABFT":
        """Build a protector matching a grid's operator, boundary and shape."""
        return cls(
            grid.spec,
            grid.boundary,
            grid.shape,
            dtype=grid.dtype,
            constant=grid.constant,
            **kwargs,
        )

    # -- protector interface ---------------------------------------------------
    def reset(self) -> None:
        self._prev_cs = {0: None, 1: None}
        self._prev_cs_dup = {0: None, 1: None}
        self.total_detections = 0
        self.total_corrections = 0
        self.total_uncorrected = 0
        self.total_metadata_repairs = 0

    def state_snapshot(self) -> dict:
        """Checkpointable protector state (buddy checkpointing).

        Captures the stored previous-step checksum vectors and the four
        running counters — everything :meth:`state_restore` needs to
        resume verification bit-for-bit from a rolled-back domain.  The
        self-check duplicates are not shipped: restore re-derives them
        through :meth:`_store_prev_cs`, so a checkpointed protector is
        always internally consistent.
        """
        return {
            "prev_cs": {
                axis: (None if cs is None else cs.copy())
                for axis, cs in self._prev_cs.items()
            },
            "counters": (
                self.total_detections,
                self.total_corrections,
                self.total_uncorrected,
                self.total_metadata_repairs,
            ),
        }

    def state_restore(self, state: dict) -> None:
        """Restore :meth:`state_snapshot` state (rollback recovery)."""
        for axis in (0, 1):
            cs = state["prev_cs"].get(axis)
            self._store_prev_cs(axis, None if cs is None else cs.copy())
        (
            self.total_detections,
            self.total_corrections,
            self.total_uncorrected,
            self.total_metadata_repairs,
        ) = (int(c) for c in state["counters"])

    def _checksum(self, u: np.ndarray, axis: int) -> np.ndarray:
        be = self.backend if self.backend is not None else get_backend()
        return be.checksum(u, axis, dtype=self.checksum_dtype)

    def _store_prev_cs(self, axis: int, cs: Optional[np.ndarray]) -> None:
        """Store a previous-step checksum (plus its self-check duplicate).

        Every write to the stored checksum state must go through here —
        the duplicate is what lets :meth:`_checked_prev_cs` notice that a
        fault struck the metadata itself.
        """
        self._prev_cs[axis] = cs
        if cs is None or not self.metadata_self_check:
            self._prev_cs_dup[axis] = None
        else:
            self._prev_cs_dup[axis] = cs.copy()

    def _checked_prev_cs(self, axis: int, prev_u: np.ndarray) -> np.ndarray:
        """The stored previous-step checksum, validated against its duplicate.

        On mismatch (a fault hit the stored metadata, not the domain) the
        checksum is recomputed from the still-alive previous domain and
        re-stored, so a corrupted checksum never drives a bogus
        detection/correction of healthy data.
        """
        cs = self._prev_cs[axis]
        dup = self._prev_cs_dup[axis]
        if (
            self.metadata_self_check
            and cs is not None
            and dup is not None
            and not np.array_equal(cs, dup)
        ):
            self.total_metadata_repairs += 1
            cs = self._checksum(prev_u, axis)
            self._store_prev_cs(axis, cs)
        return cs

    def verify_axes(self):
        """Axes whose checksums each sweep must produce for this protector."""
        if self.eager_row_checksum:
            return (self.verify_axis, self.other_axis)
        return (self.verify_axis,)

    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        if grid.shape != self.shape:
            raise ValueError(
                f"grid shape {grid.shape} does not match protector shape {self.shape}"
            )
        verify, other = self.verify_axis, self.other_axis
        # Initial checksums (step t=0 data assumed correct, as in Theorem 2).
        if self._prev_cs[verify] is None:
            self._store_prev_cs(verify, self._checksum(grid.u, verify))
            if self.eager_row_checksum:
                self._store_prev_cs(other, self._checksum(grid.u, other))

        if inject is None and hasattr(grid, "step_with_checksums"):
            # Fault-free fast path: the sweep produces the verified
            # checksum itself (the paper's fused kernel).
            _, checksums = grid.step_with_checksums(
                self.verify_axes(),
                checksum_dtype=self.checksum_dtype,
                backend=self.backend,
            )
            return self.process(
                grid.u,
                grid.previous_padded,
                grid.iteration,
                precomputed_checksums=checksums,
            )

        grid.step(backend=self.backend)
        if inject is not None:
            inject(grid, grid.iteration)
        return self.process(grid.u, grid.previous_padded, grid.iteration)

    def process(
        self,
        u_new: np.ndarray,
        padded_prev: np.ndarray,
        iteration: int,
        precomputed_checksums: Optional[ChecksumMap] = None,
    ) -> StepReport:
        """Verify (and correct) a freshly swept domain.

        This is the grid-independent core of the protector: ``u_new`` is
        the interior produced by the sweep, ``padded_prev`` is the
        ghost-padded step-``t`` domain the sweep read (its ghost cells may
        come from a closed boundary condition *or* from halo exchange with
        neighbouring tiles/ranks — the interpolation handles both
        identically).  The parallel tile runner calls this directly, one
        call per tile, and so does the distributed runner, one call per
        rank with the rank's pre-swap front buffer as ``padded_prev`` and
        the fused per-rank checksums as ``precomputed_checksums``.

        ``precomputed_checksums`` carries checksums of ``u_new`` already
        produced by a fused sweep (``{axis: vector}``); any axis present
        is trusted instead of being recomputed here, so callers must only
        pass checksums that reflect ``u_new``'s current contents.

        With the double-buffered grids both arguments are live views into
        the persistent buffer pair: ``u_new`` into the front buffer the
        sweep just filled, ``padded_prev`` into the buffer the *next*
        sweep will overwrite.  They therefore must be read (and ``u_new``
        corrected) before the next step — which is exactly when the
        protectors run — and must never alias each other; the guard below
        rejects a caller that hands the same buffer for both.
        """
        from repro.stencil.shift import interior_view

        if np.may_share_memory(u_new, padded_prev):
            raise ValueError(
                "u_new aliases padded_prev: the new step must live in a "
                "different buffer than the padded previous step (did the "
                "double-buffer swap go missing?)"
            )
        verify, other = self.verify_axis, self.other_axis
        if self._prev_cs[verify] is None:
            self._store_prev_cs(
                verify,
                self._checksum(interior_view(padded_prev, self.radius), verify),
            )
            if self.eager_row_checksum:
                self._store_prev_cs(
                    other,
                    self._checksum(interior_view(padded_prev, self.radius), other),
                )
        prev_u = interior_view(padded_prev, self.radius)
        grid_u = u_new
        grid_ndim = u_new.ndim

        if precomputed_checksums is not None and verify in precomputed_checksums:
            cs_comp = precomputed_checksums[verify]
        else:
            cs_comp = self._checksum(grid_u, verify)
        cs_interp = interpolate_checksum_padded(
            self._checked_prev_cs(verify, prev_u),
            padded_prev,
            self.spec,
            self.radius,
            self.shape,
            verify,
            constant_sum=self._constant_sums[verify],
        )
        detection = detect_errors(cs_comp, cs_interp, self.epsilon)

        report = StepReport(
            iteration=iteration,
            detection_performed=True,
            errors_detected=detection.n_errors,
            max_relative_error=detection.max_relative_error,
        )

        other_comp = None
        if self.eager_row_checksum:
            if precomputed_checksums is not None and other in precomputed_checksums:
                other_comp = precomputed_checksums[other]
            else:
                other_comp = self._checksum(grid_u, other)

        if detection.detected:
            self.total_detections += detection.n_errors
            # Lazily build the second checksum pair: previous-step checksum
            # from the still-alive previous domain, current from the new one.
            other_prev = (
                self._checked_prev_cs(other, prev_u)
                if self._prev_cs[other] is not None
                else None
            )
            if other_prev is None:
                other_prev = self._checksum(prev_u, other)
            if other_comp is None:
                other_comp = self._checksum(grid_u, other)
            other_interp = interpolate_checksum_padded(
                other_prev,
                padded_prev,
                self.spec,
                self.radius,
                self.shape,
                other,
                constant_sum=self._constant_sums[other],
            )
            other_detection = detect_errors(other_comp, other_interp, self.epsilon)

            if verify == _COLUMN_AXIS:
                det_a, det_b = other_detection, detection
                a_comp, a_interp = other_comp, other_interp
                b_comp, b_interp = cs_comp, cs_interp
            else:
                det_a, det_b = detection, other_detection
                a_comp, a_interp = cs_comp, cs_interp
                b_comp, b_interp = other_comp, other_interp

            locations, unresolved = match_detections(
                det_a, det_b, a_comp, a_interp, b_comp, b_interp, grid_ndim
            )
            records = correct_errors(
                grid_u,
                locations,
                a_comp,
                a_interp,
                b_comp,
                b_interp,
                strategy=self.correction_strategy,
            )
            report.errors_corrected = len(records)
            report.errors_uncorrected = unresolved
            report.corrections = records
            self.total_corrections += len(records)
            self.total_uncorrected += unresolved
            # correct_errors patched a_comp/b_comp in place, so cs_comp and
            # other_comp are already consistent with the repaired domain.
            if self.refresh_checksums and records:
                self._refresh_entries(grid_u, records, a_comp, b_comp)

        self._store_prev_cs(verify, cs_comp)
        self._store_prev_cs(other, other_comp if self.eager_row_checksum else None)
        return report

    def _refresh_entries(self, u: np.ndarray, records, a_comp, b_comp) -> None:
        """Recompute the checksum entries touched by corrections from ``u``."""
        cs_dtype = self.checksum_dtype
        for rec in records:
            if u.ndim == 2:
                x, y = rec.index
                a_comp[x] = u[x, :].sum(dtype=cs_dtype)
                b_comp[y] = u[:, y].sum(dtype=cs_dtype)
            else:
                x, y, z = rec.index
                a_comp[x, z] = u[x, :, z].sum(dtype=cs_dtype)
                b_comp[y, z] = u[:, y, z].sum(dtype=cs_dtype)
