"""Common protector interface and the unprotected baseline.

A *protector* wraps the iteration loop of a stencil application: it
advances the grid one sweep at a time and applies (or does not apply)
the ABFT machinery around each sweep. The three protectors compared in
the paper's evaluation are

* :class:`NoProtection` (this module) — the unprotected "No-ABFT" run,
* :class:`repro.core.online.OnlineABFT` — detect + correct every sweep,
* :class:`repro.core.offline.OfflineABFT` — periodic detection with
  checkpoint/rollback recovery.

All three expose the same ``step(grid, inject=...)`` / ``run(...)`` /
``finalize(grid)`` interface so that the experiment harness can swap
them freely. Protectors also surface the pluggable compute-backend
choice (:mod:`repro.backends`): the ABFT protectors accept a
``backend=`` keyword and route their sweeps and checksum reductions —
including the fused sweep+checksum kernel — through it. The optional ``inject`` callable models the paper's fault
injection point: it is invoked *after* the sweep has produced the new
domain and *before* any checksum is computed from it (Section 5.1: the
bit-flip is injected "after the stencil point targeted for data
corruption has been updated and before it is stored into the domain").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.stencil.grid import GridBase

__all__ = ["StepReport", "RunReport", "Protector", "NoProtection"]

#: Signature of a fault-injection hook: ``inject(grid, iteration)``.
InjectHook = Callable[[GridBase, int], None]


@dataclass
class StepReport:
    """What happened during one protected (or unprotected) sweep."""

    iteration: int
    detection_performed: bool = False
    errors_detected: int = 0
    errors_corrected: int = 0
    errors_uncorrected: int = 0
    rollback: bool = False
    recomputed_iterations: int = 0
    max_relative_error: float = 0.0
    corrections: List = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """``True`` iff no error was detected during this step."""
        return self.errors_detected == 0


@dataclass
class RunReport:
    """Aggregate of the step reports of a whole run."""

    steps: List[StepReport] = field(default_factory=list)

    def add(self, report: StepReport) -> None:
        self.steps.append(report)

    @property
    def iterations(self) -> int:
        return len(self.steps)

    @property
    def total_detected(self) -> int:
        return sum(s.errors_detected for s in self.steps)

    @property
    def total_corrected(self) -> int:
        return sum(s.errors_corrected for s in self.steps)

    @property
    def total_uncorrected(self) -> int:
        return sum(s.errors_uncorrected for s in self.steps)

    @property
    def total_rollbacks(self) -> int:
        return sum(1 for s in self.steps if s.rollback)

    @property
    def total_recomputed_iterations(self) -> int:
        return sum(s.recomputed_iterations for s in self.steps)

    @property
    def detections(self) -> List[StepReport]:
        """Only the steps during which at least one error was detected."""
        return [s for s in self.steps if s.errors_detected > 0]


class Protector(ABC):
    """Interface shared by all protection schemes."""

    #: Human-readable name used by the experiment reports.
    name: str = "protector"

    #: Resolved compute backend driving this protector's numerics, or
    #: ``None`` to follow the grid's backend (which itself defaults to
    #: the process-wide selection — see :mod:`repro.backends`).
    backend = None

    @abstractmethod
    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        """Advance the grid one sweep under this protection scheme."""

    def finalize(self, grid: GridBase) -> Optional[StepReport]:
        """Run any end-of-execution verification (offline detection).

        Returns a report when a final check was performed, else ``None``.
        """
        return None

    def reset(self) -> None:
        """Forget internal state so the protector can start a fresh run."""

    def run(
        self,
        grid: GridBase,
        iterations: int,
        inject: Optional[InjectHook] = None,
    ) -> RunReport:
        """Advance ``iterations`` sweeps and collect all step reports."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        report = RunReport()
        for _ in range(iterations):
            report.add(self.step(grid, inject=inject))
        final = self.finalize(grid)
        if final is not None:
            report.add(final)
        return report


class NoProtection(Protector):
    """The unprotected baseline ("No ABFT" in the paper's figures)."""

    name = "no-abft"

    def step(self, grid: GridBase, inject: Optional[InjectHook] = None) -> StepReport:
        grid.step()
        if inject is not None:
            inject(grid, grid.iteration)
        return StepReport(iteration=grid.iteration, detection_performed=False)
