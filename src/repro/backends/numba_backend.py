"""The ``numba`` backend: generated, JIT-compiled fused kernels.

The interpreted backends can only fuse at *call* granularity — the
``fused`` backend's docstring records that a per-stencil-point
incremental checksum was measured slower in NumPy, because each stencil
point would pay an extra full reduction pass.  Once the loop is
compiled that trade-off inverts: a single traversal of the buffer pair
can refresh the ghost cells, apply the stencil and accumulate both
checksum vectors *per point*, touching every domain value exactly once
per protected iteration.

This backend no longer ships hand-written kernels.  Every kernel it
runs is **generated** by the stencil kernel compiler
(:mod:`repro.backends.codegen`) from the spec's offset table plus the
grid layout — per-axis ghost width, boundary kind and external-axis
set.  Because the halo plan lowers each boundary kind into an explicit
index mapping (periodic as exact modular tiling, valid for degenerate
``r > n`` wraps too; external axes as "span me like interior"), there
is no layout this backend declines: arbitrary boundary mixes, every
external-axis ordering and degenerate periodic halos all run the
compiled path.  Aliasing buffer pairs are handled *inside* the backend
by staging through a cached scratch buffer — still the compiled kernel,
never an interpreted fallback.

* ``sweep_padded`` / ``sweep_into`` — generated sweeps (2D and 3D,
  offsets unrolled, weights as a pre-cast runtime vector, optional
  constant term), accumulating in the domain dtype in the same order as
  the ``numpy`` reference — the swept interior is bit-identical to it.
* ``sweep_with_checksums`` / ``sweep_into_with_checksums`` — the same
  traversal also folds each freshly computed value into its row and
  column partials (``cs1`` indexed by the parallel loop variable,
  ``cs0`` merged by a parfor array reduction over thread-private
  partials).
* ``step_into`` / ``step_into_with_checksums`` — the backend *owns the
  ghost refresh* (see :meth:`~repro.backends.base.Backend.supports_fused_step`):
  one compiled call re-fills the source halo (bit-identical to
  :func:`repro.stencil.shift.refresh_ghosts`, corners owned by the
  highest axis), sweeps into the back buffer and accumulates the
  checksums — the whole protected iteration without returning to the
  interpreter, for **every** layout.

Checksums are accumulated sequentially per row/column in the requested
dtype, whereas ``numpy.sum`` reduces pairwise — the results differ by a
few ULPs, orders of magnitude below ``recommend_epsilon``, which is the
contract every backend is held to (see ``tests/test_backends.py``).

The module is importable without ``numba``: :data:`NUMBA_AVAILABLE`
reports the import gate, and ``repro.backends`` registers the backend
only when the import succeeds (otherwise it is listed as unavailable —
the *only* reason this backend is ever absent).  Generated modules are
compiled with ``cache=True`` against real on-disk source files, so the
compilation cost is paid once per machine, not once per process —
worker processes of the
:class:`~repro.parallel.executor.ProcessPoolTileExecutor` load the
on-disk artifact instead of recompiling; :meth:`NumbaBackend.warmup`
triggers (or loads) every kernel an operator's layout needs up front so
no compile lands inside a timed loop.
"""

from __future__ import annotations

import importlib.util
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend, ChecksumMap
from repro.backends.codegen import CompiledKernels, KernelCompiler, get_compiler
from repro.stencil.boundary import BoundarySpec
from repro.stencil.doublebuffer import GridLayout
from repro.stencil.shift import interior_view, padded_shape
from repro.stencil.spec import StencilSpec

__all__ = ["NUMBA_AVAILABLE", "UNAVAILABLE_REASON", "NumbaBackend"]

#: Whether the optional ``numba`` dependency is importable in this process.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

#: Why the backend is absent when :data:`NUMBA_AVAILABLE` is false.  The
#: import gate is the *only* availability condition: the generated
#: kernels accept every layout, so there is no runtime decline to report.
UNAVAILABLE_REASON = (
    "requires the optional 'numba' package (pip install numba)"
)

#: Per-spec weight-vector cache entries kept before the cache resets.
_MAX_CACHED_SPECS = 16

#: Staging-buffer cache entries (aliasing pairs) kept before resetting.
_MAX_CACHED_STAGING = 8


class NumbaBackend(Backend):
    """JIT backend: generated per-point fusion of refresh + sweep + checksums.

    Parameters
    ----------
    compiler:
        The :class:`~repro.backends.codegen.KernelCompiler` to obtain
        kernels from.  ``None`` (the default) uses the process-wide
        compiler and requires ``numba`` to be importable; tests inject a
        private ``jit=False`` compiler to execute the generated source
        as plain Python on machines without the dependency.
    """

    name = "numba"
    compiles_kernels = True

    def __init__(self, compiler: Optional[KernelCompiler] = None) -> None:
        if compiler is None and not NUMBA_AVAILABLE:
            raise RuntimeError(f"the numba backend {UNAVAILABLE_REASON}")
        self._compiler = compiler if compiler is not None else get_compiler()
        self._spec_cache: Dict = {}
        self._staging: Dict = {}

    # -- kernel / argument marshalling ---------------------------------------
    def _kernels(
        self,
        spec: StencilSpec,
        constant: Optional[np.ndarray],
        layout: Optional[GridLayout] = None,
        block_steps: int = 1,
        batch: bool = False,
    ) -> CompiledKernels:
        return self._compiler.kernels_for(
            spec,
            has_const=constant is not None,
            layout=layout,
            block_steps=block_steps,
            batch=batch,
        )

    def _weights_arg(self, spec: StencilSpec, dtype: np.dtype) -> np.ndarray:
        """The spec's weight vector pre-cast to the domain dtype.

        Pre-casting keeps the compiled accumulation in the domain dtype
        (numba would otherwise promote float32*float64 to float64,
        changing the rounding relative to the reference).
        """
        key = (spec, np.dtype(dtype).str)
        cached = self._spec_cache.get(key)
        if cached is None:
            if len(self._spec_cache) >= _MAX_CACHED_SPECS:
                self._spec_cache.clear()
            cached = self._spec_cache[key] = np.ascontiguousarray(
                spec.weights, dtype=dtype
            )
        return cached

    @staticmethod
    def _const_arg(
        constant: Optional[np.ndarray], dtype: np.dtype, ndim: int
    ) -> np.ndarray:
        """The constant-term argument (a dummy keeps signatures stable)."""
        if constant is None:
            return np.zeros((1,) * ndim, dtype=dtype)
        return np.asarray(constant, dtype=dtype)

    @staticmethod
    def _fills_arg(layout: GridLayout) -> np.ndarray:
        """Per-axis ghost fill values for the generated refresh."""
        return np.asarray(layout.fills, dtype=np.float64)

    @staticmethod
    def _checksum_like(checksum_dtype, dtype: np.dtype) -> np.ndarray:
        """Zero-length dtype carrier for the checksum accumulators."""
        cs_dtype = dtype if checksum_dtype is None else np.dtype(checksum_dtype)
        return np.empty(0, dtype=cs_dtype)

    @staticmethod
    def _select_axes(
        cs0: np.ndarray, cs1: np.ndarray, axes: Sequence[int]
    ) -> ChecksumMap:
        both = {0: cs0, 1: cs1}
        out: ChecksumMap = {}
        for axis in axes:
            axis = int(axis)
            if axis not in both:
                raise ValueError(
                    f"checksum axes must be a subset of (0, 1), got {axis}"
                )
            out[axis] = both[axis]
        return out

    def _staging_buffer(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Cached padded-shape scratch for aliasing ``step_into`` pairs."""
        key = (tuple(int(n) for n in shape), np.dtype(dtype).str)
        buf = self._staging.get(key)
        if buf is None:
            if len(self._staging) >= _MAX_CACHED_STAGING:
                self._staging.clear()
            buf = self._staging[key] = np.empty(key[0], dtype=dtype)
        return buf

    # -- sweeps over trusted ghosts -----------------------------------------
    def sweep_padded(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        if out is None:
            out = np.empty(interior_shape, dtype=dtype)
        kernels = self._kernels(spec, constant)
        wts = self._weights_arg(spec, dtype)
        const = self._const_arg(constant, dtype, padded.ndim)
        kernels.sweep(
            padded, out, wts, *radius, *(0,) * padded.ndim,
            *interior_shape, const,
        )
        return out

    def sweep_with_checksums(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        if out is None:
            out = np.empty(interior_shape, dtype=dtype)
        kernels = self._kernels(spec, constant)
        wts = self._weights_arg(spec, dtype)
        const = self._const_arg(constant, dtype, padded.ndim)
        cs_like = self._checksum_like(checksum_dtype, dtype)
        cs0, cs1 = kernels.sweep_cs(
            padded, out, wts, *radius, *(0,) * padded.ndim,
            *interior_shape, const, cs_like,
        )
        return out, self._select_axes(cs0, cs1, axes)

    # -- zero-copy forms -----------------------------------------------------
    def sweep_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            # Writing the interior while the sweep still reads the source
            # would corrupt the result; run the compiled sweep into a
            # fresh buffer and copy it over afterwards.
            interior[...] = self.sweep_padded(
                src_padded, spec, radius, interior_shape, constant=constant
            )
            return interior
        return self.sweep_padded(
            src_padded, spec, radius, interior_shape, constant=constant,
            out=interior,
        )

    def sweep_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            new, checksums = self.sweep_with_checksums(
                src_padded, spec, radius, interior_shape, axes,
                constant=constant, checksum_dtype=checksum_dtype,
            )
            interior[...] = new
            return interior, checksums
        return self.sweep_with_checksums(
            src_padded, spec, radius, interior_shape, axes,
            constant=constant, out=interior, checksum_dtype=checksum_dtype,
        )

    # -- backend-owned fused steps -------------------------------------------
    def supports_fused_step(
        self, spec: StencilSpec, boundary, radius, interior_shape: Sequence[int]
    ) -> bool:
        """True for every layout: the halo plan compiles them all.

        Degenerate periodic halos lower to the modular-tiling index
        mapping, external axes to full-extent spans, and aliasing pairs
        stage through a scratch buffer — none of the former decline
        conditions exist anymore.
        """
        return spec.ndim == len(tuple(interior_shape))

    def _step_args(
        self, src_padded, dst_padded, spec, radius, interior_shape, boundary,
        constant, refresh_axes,
    ):
        """Marshalled arguments for the generated ``step`` kernels."""
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        interior_shape, radius = self._normalize_sweep_args(
            src_padded, radius, interior_shape, constant, None
        )
        expected = padded_shape(interior_shape, radius)
        if src_padded.shape != expected:
            raise ValueError(
                f"src_padded has shape {src_padded.shape}, expected "
                f"{expected} (interior {interior_shape}, radius {radius})"
            )
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        layout = GridLayout.from_args(
            radius, bspec, spec.ndim, refresh_axes=refresh_axes
        )
        kernels = self._kernels(spec, constant, layout=layout)
        dtype = src_padded.dtype
        wts = self._weights_arg(spec, dtype)
        const = self._const_arg(constant, dtype, src_padded.ndim)
        fills = self._fills_arg(layout)
        return interior_shape, radius, interior, kernels, wts, const, fills

    def step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        shape, radius, interior, kernels, wts, const, fills = self._step_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        if np.may_share_memory(src_padded, dst_padded):
            # Aliasing pair: run the compiled step against a staging
            # destination, then copy the interior over (the refresh part
            # is in-place on the source either way).
            stage = self._staging_buffer(src_padded.shape, src_padded.dtype)
            kernels.step(src_padded, stage, wts, *shape, const, fills)
            interior[...] = interior_view(stage, radius)
            return interior
        kernels.step(src_padded, dst_padded, wts, *shape, const, fills)
        return interior

    def step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        shape, radius, interior, kernels, wts, const, fills = self._step_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        cs_like = self._checksum_like(checksum_dtype, src_padded.dtype)
        if np.may_share_memory(src_padded, dst_padded):
            stage = self._staging_buffer(src_padded.shape, src_padded.dtype)
            cs0, cs1 = kernels.step_cs(
                src_padded, stage, wts, *shape, const, fills, cs_like
            )
            interior[...] = interior_view(stage, radius)
            return interior, self._select_axes(cs0, cs1, axes)
        cs0, cs1 = kernels.step_cs(
            src_padded, dst_padded, wts, *shape, const, fills, cs_like
        )
        return interior, self._select_axes(cs0, cs1, axes)

    # -- batched campaign steps: compiled bstep kernels -----------------------
    def _batch_args(
        self, src_padded, dst_padded, spec, radius, interior_shape, boundary,
        constant, refresh_axes,
    ):
        """Marshalled arguments for the generated ``bstep`` kernels.

        The layout is the *domain* layout — the trailing run axis never
        appears in the plan; the kernels take the batch width ``nb`` as
        a runtime argument instead, so every batch width shares one
        compiled module per layout.
        """
        radius, interior_shape, nb = self._batch_geometry(
            src_padded, dst_padded, radius, interior_shape, constant
        )
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        layout = GridLayout.from_args(
            radius, bspec, spec.ndim, refresh_axes=refresh_axes
        )
        kernels = self._kernels(spec, constant, layout=layout, batch=True)
        dtype = src_padded.dtype
        wts = self._weights_arg(spec, dtype)
        const = self._const_arg(constant, dtype, spec.ndim)
        fills = self._fills_arg(layout)
        return interior_shape, radius, nb, kernels, wts, const, fills

    def batch_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        if np.may_share_memory(src_padded, dst_padded):
            # Aliasing batched pair: the base loop-over-slots delegates
            # to this backend's own step_into, which stages internally —
            # every slot still runs a compiled kernel.
            return super().batch_step_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, constant=constant, refresh_axes=refresh_axes,
            )
        shape, radius, nb, kernels, wts, const, fills = self._batch_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        kernels.bstep(src_padded, dst_padded, wts, *shape, nb, const, fills)
        return interior_view(dst_padded, radius + (0,))

    def batch_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        if np.may_share_memory(src_padded, dst_padded):
            return super().batch_step_into_with_checksums(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, axes, constant=constant,
                checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
            )
        shape, radius, nb, kernels, wts, const, fills = self._batch_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        cs_like = self._checksum_like(checksum_dtype, src_padded.dtype)
        cs0, cs1 = kernels.bstep_cs(
            src_padded, dst_padded, wts, *shape, nb, const, fills, cs_like
        )
        return (
            interior_view(dst_padded, radius + (0,)),
            self._select_axes(cs0, cs1, axes),
        )

    # -- temporal blocking: compiled k-step kernels ---------------------------
    def _multi_step_args(
        self, src_padded, dst_padded, k, spec, radius, interior_shape,
        boundary, constant, refresh_axes,
    ):
        """Marshalled arguments for the generated ``step_k`` kernels.

        ``kernels_for`` (via ``plan_kernel``) enforces the blocked-plan
        constraints — external ghost width ``>= k * stencil_radius``, no
        per-point constant alongside external axes — so invalid windows
        fail loudly before any kernel runs.  The final interior lands in
        ``dst_padded`` for odd ``k`` and back in ``src_padded`` for even
        ``k`` (the ping-pong parity).
        """
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        interior_shape, radius = self._normalize_sweep_args(
            src_padded, radius, interior_shape, constant, None
        )
        expected = padded_shape(interior_shape, radius)
        for label, buf in (("src_padded", src_padded), ("dst_padded", dst_padded)):
            if buf.shape != expected:
                raise ValueError(
                    f"{label} has shape {buf.shape}, expected {expected} "
                    f"(interior {interior_shape}, radius {radius})"
                )
        layout = GridLayout.from_args(
            radius, bspec, spec.ndim, refresh_axes=refresh_axes
        )
        kernels = self._kernels(spec, constant, layout=layout, block_steps=k)
        dtype = src_padded.dtype
        wts = self._weights_arg(spec, dtype)
        const = self._const_arg(constant, dtype, src_padded.ndim)
        fills = self._fills_arg(layout)
        final = dst_padded if k % 2 == 1 else src_padded
        interior = interior_view(final, radius)
        return interior_shape, radius, interior, kernels, wts, const, fills

    def multi_step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        k: int,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        k = int(k)
        if k == 1:
            return self.step_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, constant=constant, refresh_axes=refresh_axes,
            )
        if k < 1:
            raise ValueError(f"block steps must be >= 1, got {k}")
        if np.may_share_memory(src_padded, dst_padded):
            # The ping-pong needs two distinct planes; an aliasing pair
            # runs the compiled single-step path per sub-step instead
            # (step_into stages internally — still never interpreted).
            return super().multi_step_into(
                src_padded, dst_padded, k, spec, radius, interior_shape,
                boundary, constant=constant, refresh_axes=refresh_axes,
            )
        shape, radius, interior, kernels, wts, const, fills = (
            self._multi_step_args(
                src_padded, dst_padded, k, spec, radius, interior_shape,
                boundary, constant, refresh_axes,
            )
        )
        kernels.step_k(src_padded, dst_padded, wts, *shape, const, fills)
        return interior

    def multi_step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        k: int,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        k = int(k)
        if k == 1:
            return self.step_into_with_checksums(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, axes, constant=constant,
                checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
            )
        if k < 1:
            raise ValueError(f"block steps must be >= 1, got {k}")
        if np.may_share_memory(src_padded, dst_padded):
            return super().multi_step_into_with_checksums(
                src_padded, dst_padded, k, spec, radius, interior_shape,
                boundary, axes, constant=constant,
                checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
            )
        shape, radius, interior, kernels, wts, const, fills = (
            self._multi_step_args(
                src_padded, dst_padded, k, spec, radius, interior_shape,
                boundary, constant, refresh_axes,
            )
        )
        cs_like = self._checksum_like(checksum_dtype, src_padded.dtype)
        cs0, cs1 = kernels.step_k_cs(
            src_padded, dst_padded, wts, *shape, const, fills, cs_like
        )
        return interior, self._select_axes(cs0, cs1, axes)

    # -- compiled-kernel introspection ----------------------------------------
    @property
    def compiler(self) -> KernelCompiler:
        """The kernel compiler this backend draws from."""
        return self._compiler

    def compiled_kernels(self) -> Tuple[Dict, ...]:
        """Stats for every kernel this backend's compiler has built."""
        return self._compiler.stats()

    # -- warmup ---------------------------------------------------------------
    def warmup(
        self,
        spec: StencilSpec,
        boundary=None,
        dtype=np.float32,
        checksum_dtype=np.float64,
        radius=None,
        external_axes: Sequence[int] = (),
        block_steps: int = 1,
        batch_width: int = 0,
    ) -> None:
        """Generate + compile (or load from disk) the layout's kernels.

        Runs each primitive once on a ghost-width-scaled toy domain, so
        the one-off codegen + JIT cost is paid here rather than inside a
        benchmark loop or a worker's first tile.  ``radius`` and
        ``external_axes`` describe the buffer layout to specialize for
        (defaults: the stencil's own radius, no external axes) — the
        runners pass their grids' layouts so the exact step kernels are
        ready.  Numba specializes per array *layout* as well as dtype,
        so the sweeps are also exercised on strided views (the tile
        executors sweep ``padded_tile_view`` slices of the global pair
        into strided interior slices).  Thanks to ``cache=True`` the
        compiled artifacts persist on disk: process-pool workers (and
        later runs) load them instead of recompiling.  First-call
        compile time is attributed to each kernel's cache entry
        (``repro backends --kernels``).
        """
        from repro.stencil.boundary import BoundaryCondition
        from repro.stencil.shift import normalize_radius, pad_array

        dtype = np.dtype(dtype)
        radius = (
            spec.radius()
            if radius is None
            else normalize_radius(radius, spec.ndim)
        )
        if boundary is None:
            boundary = BoundaryCondition.clamp()
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        external = tuple(sorted({int(a) for a in external_axes}))
        refresh_axes = (
            tuple(a for a in range(spec.ndim) if a not in external)
            if external
            else None
        )
        layout = GridLayout.from_args(
            radius, bspec, spec.ndim, refresh_axes=refresh_axes
        )
        shape = tuple(2 * r + 3 for r in radius)
        u = np.arange(int(np.prod(shape)), dtype=dtype).reshape(shape)
        # pad_array also fills external-axis slabs, standing in for the
        # halo data a distributed rank would have ingested before a step.
        padded = pad_array(u, radius, bspec)
        const = np.zeros(shape, dtype=dtype)

        def timed(entry: CompiledKernels, call) -> None:
            t0 = time.perf_counter()
            call()
            self._compiler.record_warmup(
                entry, (time.perf_counter() - t0) * 1e3
            )

        sweep_entry = self._kernels(spec, None)
        timed(sweep_entry, lambda: self.sweep_padded(
            padded, spec, radius, shape
        ))
        timed(sweep_entry, lambda: self.sweep_with_checksums(
            padded, spec, radius, shape, (0, 1), checksum_dtype=checksum_dtype
        ))
        step_entry = self._kernels(spec, None, layout=layout)
        dst = np.zeros(padded.shape, dtype=dtype)
        timed(step_entry, lambda: self.step_into(
            padded.copy(), dst, spec, radius, shape, bspec,
            refresh_axes=refresh_axes,
        ))
        timed(step_entry, lambda: self.step_into_with_checksums(
            padded.copy(), dst, spec, radius, shape, bspec, (0, 1),
            checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
        ))
        step_const_entry = self._kernels(spec, const, layout=layout)
        timed(step_const_entry, lambda: self.step_into(
            padded.copy(), dst, spec, radius, shape, bspec, constant=const,
            refresh_axes=refresh_axes,
        ))
        timed(step_const_entry, lambda: self.step_into_with_checksums(
            padded.copy(), dst, spec, radius, shape, bspec, (0, 1),
            constant=const, checksum_dtype=checksum_dtype,
            refresh_axes=refresh_axes,
        ))
        # Strided ('A'-layout) specializations: a halo-extended view of a
        # larger padded array swept into a strided output slice, plus a
        # strided constant — the exact signatures the tile executors use.
        big = pad_array(
            np.arange(
                int(np.prod(tuple(n + 1 for n in shape))), dtype=dtype
            ).reshape(tuple(n + 1 for n in shape)),
            radius,
            bspec,
        )
        trim = tuple(slice(0, n + 2 * r) for n, r in zip(shape, radius))
        ptile = big[trim]
        out_store = np.zeros(tuple(n + 1 for n in shape), dtype=dtype)
        out_view = out_store[tuple(slice(0, n) for n in shape)]
        const_view = big[tuple(slice(0, n) for n in shape)]
        sweep_const_entry = self._kernels(spec, const_view)
        timed(sweep_const_entry, lambda: self.sweep_padded(
            ptile, spec, radius, shape, constant=const_view, out=out_view
        ))
        timed(sweep_const_entry, lambda: self.sweep_with_checksums(
            ptile, spec, radius, shape, (0, 1), constant=const_view,
            out=out_view, checksum_dtype=checksum_dtype,
        ))
        # Temporal-blocking kernels for the requested block factor —
        # only when the layout's ghost budget actually admits a blocked
        # window (external ghost width >= k * stencil radius).
        block_steps = int(block_steps)
        spec_r = spec.radius()
        if block_steps > 1 and all(
            radius[a] >= block_steps * spec_r[a] for a in external
        ):
            blocked_entry = self._kernels(
                spec, None, layout=layout, block_steps=block_steps
            )
            pair = (pad_array(u, radius, bspec), np.zeros(padded.shape, dtype))
            timed(blocked_entry, lambda: self.multi_step_into(
                pair[0], pair[1], block_steps, spec, radius, shape, bspec,
                refresh_axes=refresh_axes,
            ))
            pair = (pad_array(u, radius, bspec), np.zeros(padded.shape, dtype))
            timed(blocked_entry, lambda: self.multi_step_into_with_checksums(
                pair[0], pair[1], block_steps, spec, radius, shape, bspec,
                (0, 1), checksum_dtype=checksum_dtype,
                refresh_axes=refresh_axes,
            ))
        # Batched campaign kernels at the requested run-axis width: both
        # the full-width C-contiguous pair the engine allocates and (for
        # widths > 1) a narrower trailing-axis slice — numba specializes
        # per array layout, and the engine's final partial batch steps
        # exactly such a strided view.
        batch_width = int(batch_width)
        if batch_width > 0:
            bsrc = np.stack([pad_array(u, radius, bspec)] * batch_width, axis=-1)
            bdst = np.zeros(bsrc.shape, dtype=dtype)
            views = [(bsrc, bdst)]
            if batch_width > 1:
                views.append(
                    (bsrc[..., : batch_width - 1], bdst[..., : batch_width - 1])
                )
            batch_entry = self._kernels(spec, None, layout=layout, batch=True)
            batch_const_entry = self._kernels(
                spec, const, layout=layout, batch=True
            )
            for bs, bd in views:
                timed(batch_entry, lambda: self.batch_step_into(
                    bs, bd, spec, radius, shape, bspec,
                    refresh_axes=refresh_axes,
                ))
                timed(batch_entry, lambda: self.batch_step_into_with_checksums(
                    bs, bd, spec, radius, shape, bspec, (0, 1),
                    checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
                ))
                timed(batch_const_entry, lambda: self.batch_step_into(
                    bs, bd, spec, radius, shape, bspec, constant=const,
                    refresh_axes=refresh_axes,
                ))
                timed(
                    batch_const_entry,
                    lambda: self.batch_step_into_with_checksums(
                        bs, bd, spec, radius, shape, bspec, (0, 1),
                        constant=const, checksum_dtype=checksum_dtype,
                        refresh_axes=refresh_axes,
                    ),
                )
