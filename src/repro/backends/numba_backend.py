"""The ``numba`` backend: JIT-compiled per-point fusion of the hot loop.

The interpreted backends can only fuse at *call* granularity — the
``fused`` backend's docstring records that a per-stencil-point
incremental checksum was measured slower in NumPy, because each stencil
point would pay an extra full reduction pass.  Once the loop is
compiled that trade-off inverts: a single traversal of the buffer pair
can refresh the ghost cells, apply the stencil and accumulate both
checksum vectors *per point*, touching every domain value exactly once
per protected iteration.  That is what this backend provides:

* ``sweep_padded`` / ``sweep_into`` — ``@njit(cache=True,
  parallel=True)`` stencil kernels (2D and 3D, arbitrary offsets and
  weights, optional constant term), accumulating in the domain dtype in
  the same offset order as the ``numpy`` reference.
* ``sweep_with_checksums`` / ``sweep_into_with_checksums`` — the same
  traversal also accumulates the row and column checksums per point:
  each freshly computed value is added to its row partial and its
  column partial before the loop moves on, instead of re-reading the
  result in a post-hoc reduction pass.  Column partials are per-``x``
  thread-private buffers merged by a parfor array reduction, so the
  parallel loop stays race-free.
* ``step_into`` / ``step_into_with_checksums`` — the backend *owns the
  ghost refresh* (see :meth:`~repro.backends.base.Backend.supports_fused_step`):
  one compiled call re-fills the source halo from the boundary
  condition (bit-identical to
  :func:`repro.stencil.shift.refresh_ghosts`, corners owned by the
  highest axis), sweeps into the back buffer and accumulates the
  checksums — the whole protected iteration without returning to the
  interpreter.  Degenerate periodic halos (ghost wider than the
  interior) fall back to the base refresh-then-sweep path.

Checksums are accumulated sequentially per row/column in the requested
dtype, whereas ``numpy.sum`` reduces pairwise — the results differ by a
few ULPs, orders of magnitude below ``recommend_epsilon``, which is the
contract every backend is held to (see ``tests/test_backends.py``).

The module is importable without ``numba``: :data:`NUMBA_AVAILABLE`
reports the gate, and ``repro.backends`` registers the backend only
when the import succeeds (otherwise it is listed as unavailable).  All
kernels are compiled with ``cache=True`` so the compilation cost is
paid once per machine, not once per process — worker processes of the
:class:`~repro.parallel.executor.ProcessPoolTileExecutor` load the
on-disk artifact instead of recompiling; :meth:`NumbaBackend.warmup`
triggers (or loads) every kernel an operator needs up front so no
compile lands inside a timed loop.
"""

from __future__ import annotations

import importlib.util
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend, ChecksumMap
from repro.stencil.boundary import BoundarySpec
from repro.stencil.spec import StencilSpec

__all__ = ["NUMBA_AVAILABLE", "UNAVAILABLE_REASON", "NumbaBackend"]

#: Whether the optional ``numba`` dependency is importable in this process.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

#: Why the backend is absent when :data:`NUMBA_AVAILABLE` is false.
UNAVAILABLE_REASON = (
    "requires the optional 'numba' package (pip install numba)"
)

#: Per-spec kernel-argument cache entries kept before the cache resets.
_MAX_CACHED_SPECS = 16

#: Boundary-kind codes shared between Python and the compiled kernels.
#: ``_BC_EXTERNAL`` marks an axis whose ghost slabs are managed outside
#: the backend (halo ingestion in the distributed runner): the compiled
#: refresh leaves them untouched and later axes span them like interior.
_BC_CLAMP, _BC_PERIODIC, _BC_FILL, _BC_EXTERNAL = 0, 1, 2, 3


if NUMBA_AVAILABLE:  # pragma: no branch - gate evaluated once at import
    from numba import njit, prange

    # -- plain sweeps (ghost cells trusted as given) ------------------------
    #
    # ``dst`` is written at offset (drx, dry[, drz]): 0 for an
    # interior-shaped output array, ``radius`` for a padded back buffer.
    # Accumulation runs in the domain dtype (weights are pre-cast) in the
    # stencil's deterministic offset order.

    @njit(cache=True, parallel=True)
    def _sweep_2d(src, dst, offs, wts, srx, sry, drx, dry, nx, ny,
                  const, has_const):
        k = offs.shape[0]
        for x in prange(nx):
            for y in range(ny):
                acc = wts[0] * src[x + srx + offs[0, 0], y + sry + offs[0, 1]]
                for p in range(1, k):
                    acc += wts[p] * src[
                        x + srx + offs[p, 0], y + sry + offs[p, 1]
                    ]
                if has_const:
                    acc += const[x, y]
                dst[x + drx, y + dry] = acc

    @njit(cache=True, parallel=True)
    def _sweep_3d(src, dst, offs, wts, srx, sry, srz, drx, dry, drz,
                  nx, ny, nz, const, has_const):
        k = offs.shape[0]
        for x in prange(nx):
            for y in range(ny):
                for z in range(nz):
                    acc = wts[0] * src[
                        x + srx + offs[0, 0],
                        y + sry + offs[0, 1],
                        z + srz + offs[0, 2],
                    ]
                    for p in range(1, k):
                        acc += wts[p] * src[
                            x + srx + offs[p, 0],
                            y + sry + offs[p, 1],
                            z + srz + offs[p, 2],
                        ]
                    if has_const:
                        acc += const[x, y, z]
                    dst[x + drx, y + dry, z + drz] = acc

    # -- fused sweep + per-point checksum accumulation ----------------------
    #
    # Every computed point is folded into its row partial and its column
    # partial immediately after it is written — no post-hoc reduction
    # pass over the result.  ``cs0`` (reduce over x) would race across
    # the parallel x-loop, so each x-iteration accumulates into a
    # thread-private partial that a parfor array reduction merges;
    # ``cs1`` (reduce over y) is indexed by the parallel loop variable
    # and needs no reduction.  ``cs_like`` only carries the requested
    # checksum accumulation dtype.
    #
    # Both axes are accumulated even when the caller requests only one
    # (the protector's default verifies a single axis): the marginal
    # cost is ~1-2 accumulate ops against the k >= 5 multiply-adds per
    # point, gating the ``cs0`` parfor *reduction* behind a runtime
    # flag is not a construct parfors reliably supports, and eager
    # row-checksum callers get the second vector for free.

    @njit(cache=True, parallel=True)
    def _sweep_2d_cs(src, dst, offs, wts, srx, sry, drx, dry, nx, ny,
                     const, has_const, cs_like):
        k = offs.shape[0]
        cs0 = np.zeros(ny, cs_like.dtype)
        cs1 = np.zeros(nx, cs_like.dtype)
        for x in prange(nx):
            row = np.zeros(ny, cs_like.dtype)
            s = row[0]  # zero in the checksum dtype
            for y in range(ny):
                acc = wts[0] * src[x + srx + offs[0, 0], y + sry + offs[0, 1]]
                for p in range(1, k):
                    acc += wts[p] * src[
                        x + srx + offs[p, 0], y + sry + offs[p, 1]
                    ]
                if has_const:
                    acc += const[x, y]
                dst[x + drx, y + dry] = acc
                row[y] = acc
                s += row[y]
            cs1[x] = s
            cs0 += row
        return cs0, cs1

    @njit(cache=True, parallel=True)
    def _sweep_3d_cs(src, dst, offs, wts, srx, sry, srz, drx, dry, drz,
                     nx, ny, nz, const, has_const, cs_like):
        k = offs.shape[0]
        cs0 = np.zeros((ny, nz), cs_like.dtype)
        cs1 = np.zeros((nx, nz), cs_like.dtype)
        for x in prange(nx):
            part = np.zeros((ny, nz), cs_like.dtype)
            for y in range(ny):
                for z in range(nz):
                    acc = wts[0] * src[
                        x + srx + offs[0, 0],
                        y + sry + offs[0, 1],
                        z + srz + offs[0, 2],
                    ]
                    for p in range(1, k):
                        acc += wts[p] * src[
                            x + srx + offs[p, 0],
                            y + sry + offs[p, 1],
                            z + srz + offs[p, 2],
                        ]
                    if has_const:
                        acc += const[x, y, z]
                    dst[x + drx, y + dry, z + drz] = acc
                    part[y, z] = acc
                    cs1[x, z] += part[y, z]
            cs0 += part
        return cs0, cs1

    # -- compiled ghost refresh ---------------------------------------------
    #
    # Mirrors repro.stencil.shift.refresh_ghosts exactly: axis by axis,
    # where axis k's slabs span the already-refreshed ghost range of
    # axes < k but only the interior range of axes > k (corners owned by
    # the highest axis).  Pure copies/fills, so the result is
    # bit-identical to the interpreted refresh.

    @njit(cache=True)
    def _refresh_2d(p, rx, ry, nx, ny, kinds, fills):
        if rx > 0 and kinds[0] != 3:
            k0 = kinds[0]
            for j in range(ry, ry + ny):
                for g in range(rx):
                    if k0 == 0:
                        p[g, j] = p[rx, j]
                        p[rx + nx + g, j] = p[rx + nx - 1, j]
                    elif k0 == 1:
                        p[g, j] = p[nx + g, j]
                        p[rx + nx + g, j] = p[rx + g, j]
                    else:
                        p[g, j] = fills[0]
                        p[rx + nx + g, j] = fills[0]
        if ry > 0 and kinds[1] != 3:
            k1 = kinds[1]
            for i in range(nx + 2 * rx):
                for g in range(ry):
                    if k1 == 0:
                        p[i, g] = p[i, ry]
                        p[i, ry + ny + g] = p[i, ry + ny - 1]
                    elif k1 == 1:
                        p[i, g] = p[i, ny + g]
                        p[i, ry + ny + g] = p[i, ry + g]
                    else:
                        p[i, g] = fills[1]
                        p[i, ry + ny + g] = fills[1]

    @njit(cache=True)
    def _refresh_3d(p, rx, ry, rz, nx, ny, nz, kinds, fills):
        if rx > 0 and kinds[0] != 3:
            k0 = kinds[0]
            for j in range(ry, ry + ny):
                for z in range(rz, rz + nz):
                    for g in range(rx):
                        if k0 == 0:
                            p[g, j, z] = p[rx, j, z]
                            p[rx + nx + g, j, z] = p[rx + nx - 1, j, z]
                        elif k0 == 1:
                            p[g, j, z] = p[nx + g, j, z]
                            p[rx + nx + g, j, z] = p[rx + g, j, z]
                        else:
                            p[g, j, z] = fills[0]
                            p[rx + nx + g, j, z] = fills[0]
        if ry > 0 and kinds[1] != 3:
            k1 = kinds[1]
            for i in range(nx + 2 * rx):
                for z in range(rz, rz + nz):
                    for g in range(ry):
                        if k1 == 0:
                            p[i, g, z] = p[i, ry, z]
                            p[i, ry + ny + g, z] = p[i, ry + ny - 1, z]
                        elif k1 == 1:
                            p[i, g, z] = p[i, ny + g, z]
                            p[i, ry + ny + g, z] = p[i, ry + g, z]
                        else:
                            p[i, g, z] = fills[1]
                            p[i, ry + ny + g, z] = fills[1]
        if rz > 0 and kinds[2] != 3:
            k2 = kinds[2]
            for i in range(nx + 2 * rx):
                for j in range(ny + 2 * ry):
                    for g in range(rz):
                        if k2 == 0:
                            p[i, j, g] = p[i, j, rz]
                            p[i, j, rz + nz + g] = p[i, j, rz + nz - 1]
                        elif k2 == 1:
                            p[i, j, g] = p[i, j, nz + g]
                            p[i, j, rz + nz + g] = p[i, j, rz + g]
                        else:
                            p[i, j, g] = fills[2]
                            p[i, j, rz + nz + g] = fills[2]

    # -- whole protected step in one compiled call --------------------------

    @njit(cache=True)
    def _step_2d(src, dst, offs, wts, rx, ry, nx, ny, const, has_const,
                 kinds, fills):
        _refresh_2d(src, rx, ry, nx, ny, kinds, fills)
        _sweep_2d(src, dst, offs, wts, rx, ry, rx, ry, nx, ny,
                  const, has_const)

    @njit(cache=True)
    def _step_2d_cs(src, dst, offs, wts, rx, ry, nx, ny, const, has_const,
                    cs_like, kinds, fills):
        _refresh_2d(src, rx, ry, nx, ny, kinds, fills)
        return _sweep_2d_cs(src, dst, offs, wts, rx, ry, rx, ry, nx, ny,
                            const, has_const, cs_like)

    @njit(cache=True)
    def _step_3d(src, dst, offs, wts, rx, ry, rz, nx, ny, nz, const,
                 has_const, kinds, fills):
        _refresh_3d(src, rx, ry, rz, nx, ny, nz, kinds, fills)
        _sweep_3d(src, dst, offs, wts, rx, ry, rz, rx, ry, rz, nx, ny, nz,
                  const, has_const)

    @njit(cache=True)
    def _step_3d_cs(src, dst, offs, wts, rx, ry, rz, nx, ny, nz, const,
                    has_const, cs_like, kinds, fills):
        _refresh_3d(src, rx, ry, rz, nx, ny, nz, kinds, fills)
        return _sweep_3d_cs(src, dst, offs, wts, rx, ry, rz, rx, ry, rz,
                            nx, ny, nz, const, has_const, cs_like)


class NumbaBackend(Backend):
    """JIT backend: compiled per-point fusion of refresh + sweep + checksums."""

    name = "numba"

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise RuntimeError(f"the numba backend {UNAVAILABLE_REASON}")
        self._spec_cache: Dict = {}

    # -- kernel-argument marshalling ----------------------------------------
    def _spec_arrays(
        self, spec: StencilSpec, dtype: np.dtype
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(offsets, weights)`` with weights in the domain dtype.

        Pre-casting the weights keeps the compiled accumulation in the
        domain dtype (numba would otherwise promote float32*float64 to
        float64, changing the rounding relative to the reference).
        """
        key = (spec, np.dtype(dtype).str)
        cached = self._spec_cache.get(key)
        if cached is None:
            if len(self._spec_cache) >= _MAX_CACHED_SPECS:
                self._spec_cache.clear()
            offs = np.ascontiguousarray(spec.offsets, dtype=np.int64)
            wts = np.ascontiguousarray(spec.weights, dtype=dtype)
            cached = self._spec_cache[key] = (offs, wts)
        return cached

    @staticmethod
    def _const_arg(
        constant: Optional[np.ndarray], dtype: np.dtype, ndim: int
    ) -> Tuple[np.ndarray, bool]:
        """``(array, has_const)`` — a dummy keeps the kernel signature stable."""
        if constant is None:
            return np.zeros((1,) * ndim, dtype=dtype), False
        return np.asarray(constant, dtype=dtype), True

    @staticmethod
    def _boundary_arrays(
        bspec: BoundarySpec,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-axis ``(kind codes, fill values)`` for the compiled refresh.

        Axes outside ``refresh_axes`` (``None`` → all) are marked
        ``_BC_EXTERNAL``: the compiled refresh skips their slabs — the
        distributed runner has already ingested halo data there.
        """
        keep = None if refresh_axes is None else {int(a) for a in refresh_axes}
        kinds = np.empty(bspec.ndim, dtype=np.int64)
        fills = np.zeros(bspec.ndim, dtype=np.float64)
        for axis, bc in enumerate(bspec):
            if keep is not None and axis not in keep:
                kinds[axis] = _BC_EXTERNAL
            elif bc.is_clamp:
                kinds[axis] = _BC_CLAMP
            elif bc.is_periodic:
                kinds[axis] = _BC_PERIODIC
            else:
                kinds[axis] = _BC_FILL
                fills[axis] = bc.fill_value()
        return kinds, fills

    @staticmethod
    def _checksum_like(checksum_dtype, dtype: np.dtype) -> np.ndarray:
        """Zero-length dtype carrier for the checksum accumulators."""
        cs_dtype = dtype if checksum_dtype is None else np.dtype(checksum_dtype)
        return np.empty(0, dtype=cs_dtype)

    @staticmethod
    def _select_axes(
        cs0: np.ndarray, cs1: np.ndarray, axes: Sequence[int]
    ) -> ChecksumMap:
        both = {0: cs0, 1: cs1}
        out: ChecksumMap = {}
        for axis in axes:
            axis = int(axis)
            if axis not in both:
                raise ValueError(
                    f"checksum axes must be a subset of (0, 1), got {axis}"
                )
            out[axis] = both[axis]
        return out

    # -- sweeps over trusted ghosts -----------------------------------------
    def sweep_padded(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        if out is None:
            out = np.empty(interior_shape, dtype=dtype)
        offs, wts = self._spec_arrays(spec, dtype)
        const, has_const = self._const_arg(constant, dtype, padded.ndim)
        if padded.ndim == 2:
            _sweep_2d(
                padded, out, offs, wts, radius[0], radius[1], 0, 0,
                interior_shape[0], interior_shape[1], const, has_const,
            )
        else:
            _sweep_3d(
                padded, out, offs, wts, radius[0], radius[1], radius[2],
                0, 0, 0, interior_shape[0], interior_shape[1],
                interior_shape[2], const, has_const,
            )
        return out

    def sweep_with_checksums(
        self,
        padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        interior_shape, radius = self._normalize_sweep_args(
            padded, radius, interior_shape, constant, out
        )
        dtype = padded.dtype
        if out is None:
            out = np.empty(interior_shape, dtype=dtype)
        offs, wts = self._spec_arrays(spec, dtype)
        const, has_const = self._const_arg(constant, dtype, padded.ndim)
        cs_like = self._checksum_like(checksum_dtype, dtype)
        if padded.ndim == 2:
            cs0, cs1 = _sweep_2d_cs(
                padded, out, offs, wts, radius[0], radius[1], 0, 0,
                interior_shape[0], interior_shape[1], const, has_const,
                cs_like,
            )
        else:
            cs0, cs1 = _sweep_3d_cs(
                padded, out, offs, wts, radius[0], radius[1], radius[2],
                0, 0, 0, interior_shape[0], interior_shape[1],
                interior_shape[2], const, has_const, cs_like,
            )
        return out, self._select_axes(cs0, cs1, axes)

    # -- zero-copy forms -----------------------------------------------------
    def sweep_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        constant: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            # Writing the interior while the sweep still reads the source
            # would corrupt the result; take the copy-based route.
            return super().sweep_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                constant=constant,
            )
        return self.sweep_padded(
            src_padded, spec, radius, interior_shape, constant=constant,
            out=interior,
        )

    def sweep_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        if np.may_share_memory(src_padded, dst_padded):
            return super().sweep_into_with_checksums(
                src_padded, dst_padded, spec, radius, interior_shape, axes,
                constant=constant, checksum_dtype=checksum_dtype,
            )
        return self.sweep_with_checksums(
            src_padded, spec, radius, interior_shape, axes,
            constant=constant, out=interior, checksum_dtype=checksum_dtype,
        )

    # -- backend-owned fused steps -------------------------------------------
    def supports_fused_step(
        self, spec: StencilSpec, boundary, radius, interior_shape: Sequence[int]
    ) -> bool:
        """True unless a periodic halo is wider than the interior.

        The in-place compiled refresh needs disjoint wrap source/ghost
        ranges (the same condition the interpreted ``refresh_ghosts``
        special-cases); the degenerate configuration falls back to the
        base refresh-then-sweep step.
        """
        from repro.stencil.shift import normalize_radius

        interior_shape = tuple(int(n) for n in interior_shape)
        if spec.ndim != len(interior_shape) or spec.ndim not in (2, 3):
            return False
        radius = normalize_radius(radius, spec.ndim)
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        return not any(
            bc.is_periodic and r > n
            for bc, r, n in zip(bspec, radius, interior_shape)
        )

    def _fused_step_args(
        self, src_padded, dst_padded, spec, radius, interior_shape, boundary,
        constant, refresh_axes=None,
    ):
        """Marshalled kernel arguments, or ``None`` when the fast path
        cannot run (degenerate periodic halo, aliasing pair, a source
        whose shape does not match ``interior + 2*radius`` exactly, or a
        partial refresh whose external axes do not all precede the
        refreshed ones)."""
        from repro.stencil.shift import padded_shape

        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        if refresh_axes is not None:
            # The compiled refresh fills axis k's slabs over the *interior*
            # range of axes > k; the interpreted partial refresh treats an
            # external axis as zero-radius (full extent).  The two agree
            # only when every externally managed axis comes before every
            # refreshed axis — the distributed layout (external axis 0).
            keep = {int(a) for a in refresh_axes}
            external = [a for a in range(spec.ndim) if a not in keep]
            if external and keep and max(external) > min(keep):
                return None
        if not self.supports_fused_step(spec, bspec, radius, interior_shape):
            return None
        interior_shape, radius = self._normalize_sweep_args(
            src_padded, radius, interior_shape, constant, None
        )
        if src_padded.shape != padded_shape(interior_shape, radius):
            return None
        if np.may_share_memory(src_padded, dst_padded):
            return None
        interior = self._dst_interior(dst_padded, radius, interior_shape)
        dtype = src_padded.dtype
        offs, wts = self._spec_arrays(spec, dtype)
        const, has_const = self._const_arg(constant, dtype, src_padded.ndim)
        kinds, fills = self._boundary_arrays(bspec, refresh_axes)
        return (
            interior_shape, radius, interior, offs, wts, const, has_const,
            kinds, fills,
        )

    def step_into(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        constant: Optional[np.ndarray] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        args = self._fused_step_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        if args is None:
            return super().step_into(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, constant=constant, refresh_axes=refresh_axes,
            )
        shape, radius, interior, offs, wts, const, has_const, kinds, fills = args
        if src_padded.ndim == 2:
            _step_2d(
                src_padded, dst_padded, offs, wts, radius[0], radius[1],
                shape[0], shape[1], const, has_const, kinds, fills,
            )
        else:
            _step_3d(
                src_padded, dst_padded, offs, wts, radius[0], radius[1],
                radius[2], shape[0], shape[1], shape[2], const, has_const,
                kinds, fills,
            )
        return interior

    def step_into_with_checksums(
        self,
        src_padded: np.ndarray,
        dst_padded: np.ndarray,
        spec: StencilSpec,
        radius,
        interior_shape: Sequence[int],
        boundary,
        axes: Sequence[int],
        constant: Optional[np.ndarray] = None,
        checksum_dtype: Optional[np.dtype] = None,
        refresh_axes: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, ChecksumMap]:
        args = self._fused_step_args(
            src_padded, dst_padded, spec, radius, interior_shape, boundary,
            constant, refresh_axes,
        )
        if args is None:
            return super().step_into_with_checksums(
                src_padded, dst_padded, spec, radius, interior_shape,
                boundary, axes, constant=constant,
                checksum_dtype=checksum_dtype, refresh_axes=refresh_axes,
            )
        shape, radius, interior, offs, wts, const, has_const, kinds, fills = args
        cs_like = self._checksum_like(checksum_dtype, src_padded.dtype)
        if src_padded.ndim == 2:
            cs0, cs1 = _step_2d_cs(
                src_padded, dst_padded, offs, wts, radius[0], radius[1],
                shape[0], shape[1], const, has_const, cs_like, kinds, fills,
            )
        else:
            cs0, cs1 = _step_3d_cs(
                src_padded, dst_padded, offs, wts, radius[0], radius[1],
                radius[2], shape[0], shape[1], shape[2], const, has_const,
                cs_like, kinds, fills,
            )
        return interior, self._select_axes(cs0, cs1, axes)

    # -- warmup ---------------------------------------------------------------
    def warmup(
        self,
        spec: StencilSpec,
        boundary=None,
        dtype=np.float32,
        checksum_dtype=np.float64,
    ) -> None:
        """Compile (or load from the on-disk cache) every kernel for ``spec``.

        Runs each primitive once on a ghost-width-scaled toy domain, so
        the one-off JIT cost is paid here rather than inside a benchmark
        loop or a worker's first tile.  Numba specializes per array
        *layout* as well as dtype, so every primitive is exercised twice:
        on contiguous arrays (the whole-grid pipeline) and on strided
        views (the tile executors sweep ``padded_tile_view`` slices of
        the global pair into strided interior slices).  Thanks to
        ``cache=True`` the compiled artifacts persist on disk:
        process-pool workers (and later runs) load them instead of
        recompiling.
        """
        from repro.stencil.boundary import BoundaryCondition
        from repro.stencil.shift import pad_array, padded_shape

        radius = spec.radius()
        shape = tuple(2 * r + 3 for r in radius)
        dtype = np.dtype(dtype)
        if boundary is None:
            boundary = BoundaryCondition.clamp()
        bspec = BoundarySpec.from_any(boundary, spec.ndim)
        u = np.arange(int(np.prod(shape)), dtype=dtype).reshape(shape)
        padded = pad_array(u, radius, bspec)
        self.sweep_padded(padded, spec, radius, shape)
        self.sweep_with_checksums(
            padded, spec, radius, shape, (0, 1), checksum_dtype=checksum_dtype
        )
        dst = np.zeros(padded_shape(shape, radius), dtype=dtype)
        self.step_into(padded, dst, spec, radius, shape, bspec)
        self.step_into_with_checksums(
            padded, dst, spec, radius, shape, bspec, (0, 1),
            checksum_dtype=checksum_dtype,
        )
        # Strided ('A'-layout) specializations: a halo-extended view of a
        # larger padded array swept into a strided output slice, plus a
        # strided constant — the exact signatures the tile executors use.
        big = pad_array(
            np.arange(
                int(np.prod(tuple(n + 1 for n in shape))), dtype=dtype
            ).reshape(tuple(n + 1 for n in shape)),
            radius,
            bspec,
        )
        trim = tuple(slice(0, n + 2 * r) for n, r in zip(shape, radius))
        ptile = big[trim]
        out_store = np.zeros(tuple(n + 1 for n in shape), dtype=dtype)
        out_view = out_store[tuple(slice(0, n) for n in shape)]
        const_view = big[tuple(slice(0, n) for n in shape)]
        self.sweep_padded(
            ptile, spec, radius, shape, constant=const_view, out=out_view
        )
        self.sweep_with_checksums(
            ptile, spec, radius, shape, (0, 1), constant=const_view,
            out=out_view, checksum_dtype=checksum_dtype,
        )
