"""Backend registry and selection.

Resolution order of :func:`get_backend` when no explicit choice is
given:

1. the process-wide default installed with :func:`set_default_backend`
   (what the ``--backend`` CLI flag sets),
2. the ``REPRO_BACKEND`` environment variable,
3. the built-in default, ``"fused"`` (numerically bitwise-identical to
   the ``"numpy"`` reference, just faster).

Backends are singletons: ``get_backend("fused")`` always returns the
same instance, so per-backend caches (e.g. the fused backend's scratch
buffers) are shared across the process.

The process-pool tile executor resolves backends **by name inside each
worker process** (see :mod:`repro.parallel.shm`): instances cannot cross
the process boundary, so a custom backend must be registered at import
time — module level of an imported package — for worker processes to
find it.  Unregistered instances still work everywhere in-process.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

from repro.backends.base import Backend

__all__ = [
    "ENV_VAR",
    "BUILTIN_DEFAULT",
    "register_backend",
    "register_unavailable_backend",
    "available_backends",
    "unavailable_backends",
    "get_backend",
    "set_default_backend",
    "default_backend_name",
]

#: Environment variable consulted for the default backend name.
ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither the process default nor the env var is set.
BUILTIN_DEFAULT = "fused"

_REGISTRY: Dict[str, Backend] = {}
#: Known backend names whose optional dependency is missing: name -> reason.
_UNAVAILABLE: Dict[str, str] = {}
_DEFAULT_OVERRIDE: Optional[str] = None

#: Anything accepted where a backend is expected: a registry name, a
#: :class:`Backend` instance, or ``None`` for the active default.
BackendLike = Union[None, str, Backend]


def register_backend(backend: Backend, aliases: Tuple[str, ...] = ()) -> Backend:
    """Register a backend instance under its ``name`` (plus ``aliases``).

    Re-registering a name replaces the previous instance, so tests and
    downstream packages can swap in instrumented implementations.
    """
    for name in (backend.name, *aliases):
        _REGISTRY[str(name)] = backend
        _UNAVAILABLE.pop(str(name), None)
    return backend


def register_unavailable_backend(name: str, reason: str) -> None:
    """Record a *known* backend whose optional dependency is missing.

    Optional backends (JIT, GPU) call this instead of
    :func:`register_backend` when their import gate fails, so the CLI
    can list them as unavailable (with the reason) and
    :func:`get_backend` can raise a message that says how to enable
    them rather than pretending the name does not exist.  A later
    successful :func:`register_backend` of the same name clears the
    entry.
    """
    name = str(name)
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = str(reason)


def available_backends() -> Tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def unavailable_backends() -> Dict[str, str]:
    """Known-but-unavailable backend names mapped to the reason."""
    return dict(sorted(_UNAVAILABLE.items()))


def default_backend_name() -> str:
    """The name the current process resolves ``backend=None`` to."""
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    return os.environ.get(ENV_VAR, BUILTIN_DEFAULT)


def set_default_backend(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide default backend.

    Takes precedence over the ``REPRO_BACKEND`` environment variable;
    the name is validated against the registry immediately.
    """
    global _DEFAULT_OVERRIDE
    if name is not None and name not in _REGISTRY:
        raise KeyError(
            f"unknown backend {name!r}; available: {list(available_backends())}"
        )
    _DEFAULT_OVERRIDE = name


def get_backend(spec: BackendLike = None) -> Backend:
    """Resolve a backend name/instance/``None`` to a :class:`Backend`.

    ``None`` resolves through the default chain documented in the module
    docstring; an instance is returned unchanged (so callers can inject
    unregistered custom backends).
    """
    if isinstance(spec, Backend):
        return spec
    name = default_backend_name() if spec is None else str(spec)
    try:
        return _REGISTRY[name]
    except KeyError:
        if name in _UNAVAILABLE:
            raise KeyError(
                f"backend {name!r} is unavailable: {_UNAVAILABLE[name]}"
            ) from None
        raise KeyError(
            f"unknown backend {name!r}; available: {list(available_backends())}"
        ) from None
